//! Cross-crate integration tests: simulate → build dataset → train → locate →
//! (attack), exercising the public API the way a downstream user would.
//!
//! The scenarios are deliberately small (Simon-128, few COs, scaled CNN) so
//! the whole file runs in tens of seconds; the full-scale experiments live in
//! the `sca-bench` binaries.

use sca_locate::attack::{CpaAttack, CpaConfig};
use sca_locate::ciphers::{cipher_by_id, CipherId, RecordingCipher};
use sca_locate::locator::{
    hit_rate, Aligner, CipherProfile, CnnConfig, LocatorBuilder, TrainingConfig,
};
use sca_locate::soc::{Scenario, SocSimulator, SocSimulatorConfig};
use sca_locate::trace::Trace;

/// Trains a small locator for the given cipher / RD setting and returns it
/// together with the profile that was used.
fn small_locator(
    cipher: CipherId,
    rd: usize,
    seed: u64,
) -> (sca_locate::locator::CoLocator, CipherProfile, SocSimulator) {
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(rd), seed);
    let mean_co = sim.mean_co_samples(cipher, 4);
    let mut profile = CipherProfile::scaled(cipher, mean_co.round() as usize);
    // Shrink further for test speed.
    profile.cnn = CnnConfig { base_filters: 4, kernel_size: 5, seed: 3 };
    profile.training = TrainingConfig { epochs: 3, batch_size: 16, learning_rate: 2e-3, seed: 3 };
    profile.cipher_start_windows = 96;
    profile.cipher_rest_windows = 96;
    profile.noise_windows = 64;

    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut cipher_traces: Vec<Trace> = Vec::new();
    for _ in 0..48 {
        let pt = sim.trng_mut().next_block();
        let (trace, _ct) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        cipher_traces.push(trace);
    }
    let noise_trace = sim.capture_noise_trace(6_000);
    let (locator, report) =
        LocatorBuilder::from_profile(&profile).seed(seed).fit(&cipher_traces, &noise_trace);
    assert!(report.best_validation_accuracy() > 0.7, "CNN failed to learn ({:?})", report);
    (locator, profile, sim)
}

#[test]
fn locator_finds_most_cos_in_consecutive_scenario() {
    let (locator, _profile, mut sim) = small_locator(CipherId::Simon128, 2, 101);
    let result = sim.run_scenario(&Scenario::consecutive(CipherId::Simon128, 8));
    let located = locator.locate(&result.trace);
    let hits = hit_rate(&located, &result.co_starts(), (result.mean_co_len() / 2.0) as usize);
    assert!(
        hits.percentage() >= 75.0,
        "expected at least 75% hits, got {:.1}% (located {:?}, truth {:?})",
        hits.percentage(),
        located,
        result.co_starts()
    );
}

#[test]
fn locator_generalises_to_noise_interleaved_scenario() {
    let (locator, _profile, mut sim) = small_locator(CipherId::Simon128, 2, 202);
    let result = sim.run_scenario(&Scenario::interleaved(CipherId::Simon128, 6));
    let located = locator.locate(&result.trace);
    let hits = hit_rate(&located, &result.co_starts(), (result.mean_co_len() / 2.0) as usize);
    assert!(
        hits.percentage() >= 66.0,
        "expected at least 66% hits, got {:.1}% (located {:?}, truth {:?})",
        hits.percentage(),
        located,
        result.co_starts()
    );
}

#[test]
fn trained_engine_roundtrips_and_batches_identically() {
    // The serving workflow of the engine API: train once, convert to a
    // `LocatorEngine`, persist it, reload it, and score a fleet of traces —
    // every route must agree with the plain per-trace `CoLocator::locate`.
    let (locator, _profile, mut sim) = small_locator(CipherId::Simon128, 2, 303);
    let traces: Vec<Trace> = (0..4)
        .map(|i| sim.run_scenario(&Scenario::consecutive(CipherId::Simon128, 3 + i % 2)).trace)
        .collect();
    let expected: Vec<Vec<usize>> = traces.iter().map(|t| locator.locate(t)).collect();
    assert!(expected.iter().any(|starts| !starts.is_empty()), "locator found nothing at all");

    let engine = locator.into_engine();
    assert_eq!(engine.locate_batch(&traces), expected, "locate_batch must match per-trace locate");

    let path = std::env::temp_dir().join(format!("e2e_engine_{}.model", std::process::id()));
    engine.save(&path).expect("save trained engine");
    let restored = sca_locate::locator::LocatorEngine::load(&path).expect("load trained engine");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        restored.locate_batch(&traces),
        expected,
        "a save/load roundtrip must reproduce the located starts exactly"
    );
}

#[test]
fn quantised_engine_matches_f32_engine_on_consecutive_aes() {
    // The quantised serving path end to end: train a tiny f32 locator on
    // AES, derive the i8 engine, and check the full parity contract on the
    // consecutive-AES scenario — bounded per-window score divergence,
    // identical predicted CO starts, a bit-exact v2 save/load roundtrip,
    // and locate_batch invariant under the thread count.
    let (locator, _profile, mut sim) = small_locator(CipherId::Aes128, 2, 42);
    let result = sim.run_scenario(&Scenario::consecutive(CipherId::Aes128, 6));
    let engine = locator.into_engine();
    let qengine = engine.quantize();
    assert!(qengine.is_quantized());

    // Parity on the reference scenario: the class-1 score signal of the
    // quantised engine tracks the f32 engine within 1e-2 per window and
    // yields the same CO start locations.
    let (f32_scores, f32_starts) = engine.locate_detailed(&result.trace);
    let (q_scores, q_starts) = qengine.locate_detailed(&result.trace);
    assert_eq!(q_scores.len(), f32_scores.len());
    let mut max_div = 0.0f32;
    for (a, b) in q_scores.iter().zip(f32_scores.iter()) {
        max_div = max_div.max((a - b).abs());
    }
    assert!(max_div <= 1e-2, "quantised score divergence {max_div} exceeds 1e-2");
    assert_eq!(q_starts, f32_starts, "quantised engine must locate the same CO starts");
    assert!(!f32_starts.is_empty(), "scenario produced no locatable COs at all");

    // v2 roundtrip: save → load reproduces the quantised scores bit-exactly.
    let path = std::env::temp_dir().join(format!("e2e_qengine_{}.model", std::process::id()));
    qengine.save(&path).expect("save quantised engine");
    let restored = sca_locate::locator::LocatorEngine::load(&path).expect("load quantised engine");
    std::fs::remove_file(&path).ok();
    assert!(restored.is_quantized());
    let (r_scores, r_starts) = restored.locate_detailed(&result.trace);
    assert_eq!(r_starts, q_starts);
    for (a, b) in r_scores.iter().zip(q_scores.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "v2 roundtrip must reproduce scores bit-exactly");
    }

    // locate_batch across 1/2/4 threads must be bit-identical to itself
    // (per-window scores are independent of sharding and batching).
    let traces: Vec<Trace> = (0..3)
        .map(|i| sim.run_scenario(&Scenario::consecutive(CipherId::Aes128, 3 + i % 2)).trace)
        .collect();
    let base = restored.locate_batch(&traces);
    for threads in [1usize, 2, 4] {
        let engine_t = restored.clone().with_threads(threads);
        assert_eq!(engine_t.locate_batch(&traces), base, "threads = {threads}");
        for (trace, expected) in traces.iter().zip(base.iter()) {
            let (scores_a, starts_a) = engine_t.locate_detailed(trace);
            let (scores_b, _) = restored.locate_detailed(trace);
            assert_eq!(&starts_a, expected);
            for (a, b) in scores_a.iter().zip(scores_b.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}: scores must not drift");
            }
        }
    }
}

#[test]
fn ground_truth_alignment_lets_cpa_recover_key_bytes() {
    // Independently of the locator, the simulated leakage must be strong
    // enough for CPA once traces are aligned: align on the ground truth and
    // attack 2 key bytes. Random delay is disabled here so few traces suffice
    // (with RD enabled the leakage sample jitters and far more COs are needed,
    // which is exactly the Table II experiment in the bench harness).
    let cipher = CipherId::Aes128;
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(0), 77);
    let result = sim.run_scenario(&Scenario::consecutive(cipher, 40));
    let co_len = result.mean_co_len().round() as usize;
    let aligner = Aligner::new(co_len);
    let truth: Vec<usize> = result.co_starts();
    let (aligned, dropped) = aligner.align(&result.trace, &truth);
    assert!(dropped.len() <= 1);
    let plaintexts: Vec<[u8; 16]> = result
        .cos
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, c)| c.plaintext)
        .collect();
    let config = CpaConfig { num_key_bytes: 2, aggregation_window: 4, ..CpaConfig::default() };
    let (attack, _progress) = CpaAttack::run(&aligned, &plaintexts, &result.key, config, 10);
    let report = attack.rank_report(&result.key);
    assert!(
        report.ranks[0] <= 4 && report.ranks[1] <= 4,
        "CPA ranks too poor: {:?}",
        &report.ranks[..2]
    );
}

#[test]
fn misaligned_traces_defeat_cpa() {
    // The motivation for the whole paper: without localisation/alignment,
    // the same number of traces does NOT recover the key. Use random cut
    // points instead of the true CO starts.
    let cipher = CipherId::Aes128;
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(2), 78);
    let result = sim.run_scenario(&Scenario::consecutive(cipher, 40));
    let co_len = result.mean_co_len().round() as usize;
    // Shift every start by a different pseudo-random offset comparable to the
    // CO length, destroying alignment.
    let misaligned: Vec<usize> = result
        .co_starts()
        .iter()
        .enumerate()
        .map(|(i, &s)| s.saturating_sub((i * striding(co_len, i)) % co_len))
        .collect();
    let (aligned, dropped) = Aligner::new(co_len).align(&result.trace, &misaligned);
    let plaintexts: Vec<[u8; 16]> = result
        .cos
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, c)| c.plaintext)
        .collect();
    let config = CpaConfig { num_key_bytes: 1, aggregation_window: 4, ..CpaConfig::default() };
    let (attack, _) = CpaAttack::run(&aligned, &plaintexts, &result.key, config, 20);
    let report = attack.rank_report(&result.key);
    assert!(report.ranks[0] > 1, "misaligned CPA should not recover the key byte at rank 1");
}

fn striding(co_len: usize, i: usize) -> usize {
    (co_len / 3).max(1) + 7 * i
}

#[test]
fn masked_aes_traces_are_more_variable_than_plain_aes() {
    // Section IV-B notes that masked AES traces show much greater variability.
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(0), 9);
    let key = Scenario::DEFAULT_KEY;
    let plain = cipher_by_id(CipherId::Aes128);
    let masked = cipher_by_id(CipherId::MaskedAes128);
    let pt = [0x42u8; 16];
    let variability = |cipher: &dyn RecordingCipher, sim: &mut SocSimulator| {
        let (a, _) = sim.capture_cipher_trace(cipher, &key, &pt);
        let (b, _) = sim.capture_cipher_trace(cipher, &key, &pt);
        let n = a.len().min(b.len());
        let diff: f64 = a.samples()[..n]
            .iter()
            .zip(&b.samples()[..n])
            .map(|(x, y)| (x - y).abs() as f64)
            .sum::<f64>()
            / n as f64;
        diff
    };
    let plain_var = variability(plain.as_ref(), &mut sim);
    let masked_var = variability(masked.as_ref(), &mut sim);
    assert!(
        masked_var > plain_var,
        "masked AES should vary more between executions: {masked_var} vs {plain_var}"
    );
}

#[test]
fn baseline_locators_fail_under_random_delay_on_simulated_traces() {
    use sca_locate::baselines::{BaselineLocator, MatchedFilterLocator};
    // Build a clean template on an unprotected clone.
    let cipher = CipherId::Camellia128;
    let mut clean = SocSimulator::new(SocSimulatorConfig::rd(0), 3);
    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut refs = Vec::new();
    let mut min_len = usize::MAX;
    for _ in 0..4 {
        let pt = clean.trng_mut().next_block();
        let (t, _) = clean.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        let co = t.samples()[t.meta().co_starts[0]..t.meta().co_ends[0]].to_vec();
        min_len = min_len.min(co.len());
        refs.push(co);
    }
    refs.iter_mut().for_each(|r| r.truncate(min_len));
    let template = MatchedFilterLocator::template_from_references(&refs);
    let locator = MatchedFilterLocator::new(template.clone(), 0.85, template.len() / 2);

    // Protected target trace (RD-4).
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(4), 4);
    let result = sim.run_scenario(&Scenario::consecutive(cipher, 6));
    let located = locator.locate(&result.trace);
    let hits = hit_rate(&located, &result.co_starts(), (result.mean_co_len() / 4.0) as usize);
    assert!(
        hits.percentage() < 50.0,
        "matched filter unexpectedly survived RD-4: {:.1}%",
        hits.percentage()
    );
}
