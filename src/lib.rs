//! # sca-locate
//!
//! Umbrella crate of the reproduction of *"A Deep-Learning Technique to Locate
//! Cryptographic Operations in Side-Channel Traces"* (DATE 2024).
//!
//! It re-exports every workspace crate under a stable path so applications can
//! depend on a single crate:
//!
//! * [`trace`] — side-channel trace containers, DSP and dataset utilities;
//! * [`ciphers`] — AES-128, masked AES-128 and the other workload ciphers with
//!   operation recording;
//! * [`soc`] — the instruction-level power simulator (random delay, TRNG,
//!   oscilloscope, scenarios);
//! * [`nn`] — the from-scratch neural-network library;
//! * [`locator`] — the paper's contribution: dataset creation, the 1-D ResNet
//!   CNN, sliding-window classification, segmentation, alignment;
//! * [`attack`] — the CPA attack used to validate the alignment quality;
//! * [`baselines`] — the matched-filter and SAD template-matching locators the
//!   paper compares against;
//! * [`service`] — the concurrent locate service: cross-request window
//!   batching, bounded queues, non-seekable ingest and the TCP frame
//!   protocol.
//!
//! ## Quick start
//!
//! See `examples/quickstart.rs` for a complete simulate → train → locate →
//! evaluate round trip, and `EXPERIMENTS.md` for how to regenerate every table
//! and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use locsvc as service;
pub use sca_attack as attack;
pub use sca_baselines as baselines;
pub use sca_ciphers as ciphers;
pub use sca_locator as locator;
pub use sca_trace as trace;
pub use soc_sim as soc;
pub use tinynn as nn;

/// Version of the reproduction library.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
