//! Regenerates **Figure 3** of the paper: the test confusion matrices of the
//! per-cipher CNN classifiers under the RD-4 random-delay configuration.
//!
//! For every cipher a dedicated dataset is acquired on the simulated clone
//! device, a CNN is trained, and the confusion matrix over the held-out test
//! split is printed (rows = true class, columns = predicted class, as in the
//! paper).
//!
//! Run with: `cargo run -p sca-bench --bin fig3_confusion --release`

use sca_bench::{train_locator, ExperimentConfig};
use sca_ciphers::CipherId;

fn main() {
    let cfg = ExperimentConfig { rd_max: 4, ..ExperimentConfig::default() };
    println!("== Figure 3: test confusion matrices (RD-4) ==");
    println!("(class 0 = not beginning of CO, class 1 = beginning of CO)\n");
    for cipher in CipherId::ALL {
        let start = std::time::Instant::now();
        let setup = train_locator(cipher, &cfg);
        println!("--- {} ---", cipher.label());
        println!(
            "mean CO length: {:.0} samples | N_train = {} | best val. accuracy = {:.2}%",
            setup.mean_co_len,
            setup.profile.n_train,
            100.0 * setup.report.best_validation_accuracy()
        );
        println!("{}", setup.confusion);
        println!(
            "test accuracy: {:.2}%  ({} test windows, trained in {:.1}s)\n",
            100.0 * setup.confusion.accuracy(),
            setup.confusion.total(),
            start.elapsed().as_secs_f64()
        );
    }
    println!("Paper reference (RD-4 diagonal percentages): AES 99.56/97.3, AES mask 99.87/99.93,");
    println!("Camellia 99.92/100, Clefia 88.08/99.97, Simon 94.3/92.1.");
}
