//! Concurrent serving benchmark for the `locsvc` locate service.
//!
//! Eight (configurable) closed-loop clients hammer one `LocatorService`
//! with in-memory locate requests; the coalescing scheduler packs windows
//! from all of them into shared GEMM batches. The aggregate windows/s is
//! compared against `locate_batch` over the identical trace fleet — the
//! best non-serving throughput this tree has — and the run fails if the
//! service cannot sustain at least 0.9× of it (minus the measured rep
//! noise): request scheduling, demuxing and latency tracking must stay a
//! thin veneer over the same kernels. Every served result is asserted
//! bit-identical to the per-trace `locate`, and a deterministic burst
//! against a one-slot queue checks that backpressure rejects with the typed
//! `QueueFull` error. Latency quantiles (p50/p99) and the batch fill ratio
//! come from the service's own metrics and land in `BENCH_service.json` so
//! the serving path is guarded per commit alongside the kernel benches.
//!
//! Usage: `service_bench [--clients N] [--requests-per-client N]
//! [--trace-len N] [--out PATH]`
//! (defaults: 8 clients x 3 requests of 250,000 samples).

use locsvc::{LocatorService, Rejected, RequestOptions, ServiceConfig};
use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// Window length of the scorer (matches the engine/stream benches).
const WINDOW_LEN: usize = 128;
/// Stride between windows.
const STRIDE: usize = 32;

struct Args {
    clients: usize,
    requests_per_client: usize,
    trace_len: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        requests_per_client: 3,
        trace_len: 250_000,
        out: "BENCH_service.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--clients" => args.clients = value("--clients").parse().expect("client count"),
            "--requests-per-client" => {
                args.requests_per_client =
                    value("--requests-per-client").parse().expect("request count")
            }
            "--trace-len" => args.trace_len = value("--trace-len").parse().expect("trace len"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.clients > 0, "need at least one client");
    assert!(args.requests_per_client > 0, "need at least one request per client");
    args
}

/// Synthetic "SoC-like" trace, seeded per request (same generator as the
/// engine bench so the workloads are comparable).
fn synthetic_trace(len: usize, seed: u64) -> Trace {
    let mut state = 0x0123_4567_89AB_CDEF_u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let samples = (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
            let t = i as f32;
            (t * 0.013).sin() + 0.4 * (t * 0.11).sin() + 0.25 * noise
        })
        .collect();
    Trace::from_samples(samples)
}

fn build_engine() -> LocatorEngine {
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig::scaled()),
        SlidingWindowClassifier::new(WINDOW_LEN, STRIDE).with_batch_size(64),
        Segmenter::default(),
    )
}

/// One serving rep: fresh service, N closed-loop client threads, wall-clock
/// over all requests. Returns the elapsed time and the service metrics.
fn run_service_rep(
    traces: &[Trace],
    clients: usize,
    expected: &[Vec<usize>],
) -> (std::time::Duration, locsvc::MetricsSnapshot) {
    let service = Arc::new(LocatorService::start(
        vec![build_engine()],
        ServiceConfig { queue_capacity: traces.len() + clients, ..ServiceConfig::default() },
    ));
    let model = "model-0";
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                // Closed loop: each client keeps exactly one request in
                // flight, so `clients` requests contend at any moment.
                for req in (client..traces.len()).step_by(clients) {
                    let ticket = service
                        .submit_trace(model, traces[req].clone(), RequestOptions::default())
                        .expect("benchmark queue is sized for the full fleet");
                    let got = ticket.wait().expect("request failed");
                    assert_eq!(
                        got.starts, expected[req],
                        "request {req}: service result diverged from locate"
                    );
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let metrics = service.metrics();
    service.shutdown();
    (elapsed, metrics)
}

/// Deterministic backpressure check: the only worker is blocked on an empty
/// pipe, so a burst against a capacity-2 queue must reject all but one
/// follow-up with the typed error.
fn queue_full_burst(trace_len: usize) -> u64 {
    let (reader, mut writer) = std::io::pipe().expect("pipe");
    let service = LocatorService::start(
        vec![build_engine()],
        ServiceConfig { workers: 1, queue_capacity: 2, ..ServiceConfig::default() },
    );
    let model = "model-0";
    let feed = synthetic_trace(WINDOW_LEN * 4, 99);
    let blocked = service
        .submit_reader(model, reader, feed.len(), RequestOptions::default())
        .expect("first submission fits");
    let queued = service
        .submit_trace(model, synthetic_trace(trace_len, 1), RequestOptions::default())
        .expect("second submission fits");
    let burst = 8usize;
    let mut rejected = 0u64;
    for i in 0..burst {
        match service.submit_trace(
            model,
            synthetic_trace(trace_len, i as u64 + 2),
            RequestOptions::default(),
        ) {
            Err(Rejected::QueueFull { capacity: 2 }) => rejected += 1,
            Err(other) => panic!("expected QueueFull, got {other:?}"),
            Ok(_) => panic!("queue admitted past its capacity"),
        }
    }
    assert_eq!(rejected, burst as u64, "every burst submission must bounce");
    // Release the worker and drain.
    let mut bytes = Vec::new();
    for s in feed.samples() {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    writer.write_all(&bytes).expect("feed pipe");
    drop(writer);
    blocked.wait().expect("blocked request completes");
    queued.wait().expect("queued request completes");
    assert_eq!(service.metrics().rejected_queue_full, rejected);
    service.shutdown();
    rejected
}

fn main() {
    let args = parse_args();
    let engine = build_engine();
    let total_requests = args.clients * args.requests_per_client;
    let traces: Vec<Trace> =
        (0..total_requests).map(|i| synthetic_trace(args.trace_len, i as u64)).collect();
    let total_windows: usize = traces.iter().map(|t| engine.sliding().output_len(t.len())).sum();
    println!(
        "serving fleet: {} clients x {} requests x {} samples = {total_windows} windows",
        args.clients, args.requests_per_client, args.trace_len
    );

    // Ground truth (and warm-up): per-trace serial locate.
    let expected: Vec<Vec<usize>> = traces.iter().map(|t| engine.locate(t)).collect();

    // Interleaved measurement (B, S, B, S, …) so machine-speed drift hits
    // both sides of each rep pair equally and cancels in the ratio.
    const REPS: usize = 3;
    let mut batch_reps = [std::time::Duration::ZERO; REPS];
    let mut service_reps = [std::time::Duration::ZERO; REPS];
    let mut metrics = None;
    for rep in 0..REPS {
        let t0 = Instant::now();
        let batched = engine.locate_batch(&traces);
        batch_reps[rep] = t0.elapsed();
        assert_eq!(batched, expected, "locate_batch diverged from locate");
        let (elapsed, m) = run_service_rep(&traces, args.clients, &expected);
        service_reps[rep] = elapsed;
        metrics = Some(m);
    }
    let metrics = metrics.expect("REPS > 0");

    // Median rep pair (same estimator as the other benches): every reported
    // number comes from one pair, so throughputs and the speedup agree.
    let mut pair_order: Vec<usize> = (0..REPS).collect();
    pair_order.sort_by(|&a, &b| {
        let ra = batch_reps[a].as_secs_f64() / service_reps[a].as_secs_f64();
        let rb = batch_reps[b].as_secs_f64() / service_reps[b].as_secs_f64();
        ra.partial_cmp(&rb).expect("finite ratios")
    });
    let median_pair = pair_order[REPS / 2];
    let batch_elapsed = batch_reps[median_pair];
    let service_elapsed = service_reps[median_pair];
    let batch_wps = total_windows as f64 / batch_elapsed.as_secs_f64();
    let service_wps = total_windows as f64 / service_elapsed.as_secs_f64();
    println!("locate_batch:  {batch_elapsed:>8.2?}  ({batch_wps:>10.1} windows/s)");
    println!("service:       {service_elapsed:>8.2?}  ({service_wps:>10.1} windows/s)");

    let p50_ms = metrics.p50_latency.as_secs_f64() * 1e3;
    let p99_ms = metrics.p99_latency.as_secs_f64() * 1e3;
    println!(
        "latency: p50 {p50_ms:.1} ms, p99 {p99_ms:.1} ms | batch fill {:.2} ({} batches)",
        metrics.batch_fill_ratio, metrics.batches
    );
    assert!(metrics.p50_latency <= metrics.p99_latency, "quantiles must be ordered");
    assert!(
        metrics.batch_fill_ratio > 0.0 && metrics.batch_fill_ratio <= 1.0,
        "fill ratio out of range: {}",
        metrics.batch_fill_ratio
    );

    // Acceptance: the service must sustain >= 0.9x of locate_batch on the
    // same fleet. The noise floor is calibrated from the worst rep-to-rep
    // spread this run showed (capped at 10%), like the engine bench.
    let spread = |reps: &[std::time::Duration; REPS]| {
        let min = reps.iter().min().expect("REPS > 0").as_secs_f64();
        let max = reps.iter().max().expect("REPS > 0").as_secs_f64();
        (max - min) / min
    };
    let noise = spread(&batch_reps).max(spread(&service_reps)).min(0.10);
    let speedup =
        (batch_elapsed.as_secs_f64() / service_elapsed.as_secs_f64() * 100.0).round() / 100.0;
    println!("speedup service vs locate_batch: {speedup:.2}x");
    assert!(
        speedup >= 0.9 * (1.0 - noise),
        "service throughput regressed below 0.9x locate_batch: {speedup:.2} \
         (measured rep noise {:.1}%)",
        noise * 100.0
    );

    let rejected_burst = queue_full_burst(args.trace_len.min(50_000));
    println!("backpressure burst: {rejected_burst} typed QueueFull rejections");

    let json = format!(
        "{{\n  \"bench\": \"locator_service\",\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \"trace_len\": {},\n  \"window_len\": {WINDOW_LEN},\n  \"stride\": {STRIDE},\n  \"total_windows\": {total_windows},\n  \"windows_per_sec_batch_ref\": {batch_wps:.2},\n  \"windows_per_sec_service\": {service_wps:.2},\n  \"speedup_service_vs_batch\": {speedup:.2},\n  \"batch_fill_ratio\": {:.3},\n  \"scheduler_batches\": {},\n  \"p50_latency_ms\": {p50_ms:.3},\n  \"p99_latency_ms\": {p99_ms:.3},\n  \"queue_full_rejections\": {rejected_burst}\n}}\n",
        args.clients,
        args.requests_per_client,
        args.trace_len,
        metrics.batch_fill_ratio,
        metrics.batches,
    );
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write benchmark json");
    println!("wrote {}", args.out);
}
