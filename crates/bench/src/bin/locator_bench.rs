//! Sliding-window inference throughput benchmark.
//!
//! Scores a long synthetic trace with the scaled CO-locator CNN through
//! three paths and writes the results to `BENCH_locator.json` so the perf
//! trajectory of the inference core is tracked per commit:
//!
//! * `naive` — the seed-equivalent baseline: per-window `Vec` staging and
//!   scalar convolution loops (measured on a window subset, reported
//!   per-window);
//! * `staged` — GEMM kernels but the old `Vec<Vec<f32>>` staging;
//! * `optimized` — the zero-copy im2col/GEMM path used by the pipeline.
//!
//! Usage: `locator_bench [--trace-len N] [--naive-windows N] [--out PATH]`.

use sca_locator::{CnnConfig, CoLocatorCnn, SlidingWindowClassifier};
use sca_trace::Trace;
use std::io::Write;
use std::time::Instant;

/// Window length of the scorer (the scaled profiles use this order of size).
const WINDOW_LEN: usize = 128;
/// Stride between windows.
const STRIDE: usize = 32;

struct Args {
    trace_len: usize,
    naive_windows: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { trace_len: 1_000_000, naive_windows: 192, out: "BENCH_locator.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--trace-len" => args.trace_len = value("--trace-len").parse().expect("trace len"),
            "--naive-windows" => {
                args.naive_windows = value("--naive-windows").parse().expect("window count")
            }
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Synthetic "SoC-like" trace: a few superposed oscillations plus a
/// deterministic pseudo-noise term, so windows are not degenerate constants.
fn synthetic_trace(len: usize) -> Trace {
    let mut state = 0x0123_4567_89AB_CDEF_u64;
    let samples = (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
            let t = i as f32;
            (t * 0.013).sin() + 0.4 * (t * 0.11).sin() + 0.25 * noise
        })
        .collect();
    Trace::from_samples(samples)
}

fn scorer() -> SlidingWindowClassifier {
    SlidingWindowClassifier::new(WINDOW_LEN, STRIDE).with_batch_size(64)
}

fn cnn() -> CoLocatorCnn {
    CoLocatorCnn::new(CnnConfig::scaled())
}

fn main() {
    let args = parse_args();
    let trace = synthetic_trace(args.trace_len);
    let swc = scorer();
    let total_windows = swc.output_len(trace.len());
    assert!(total_windows > 0, "trace too short for the configured window");
    println!(
        "trace: {} samples → {} windows (N={WINDOW_LEN}, stride={STRIDE})",
        trace.len(),
        total_windows
    );

    // Naive baseline on a subset of windows (the scalar loops are orders of
    // magnitude slower; running all windows through them would take minutes).
    let naive_len = WINDOW_LEN + STRIDE * args.naive_windows.saturating_sub(1);
    let naive_trace = trace.extract(0, naive_len.min(trace.len())).expect("within bounds");
    let naive_windows = swc.output_len(naive_trace.len());
    let net = cnn();
    let t0 = Instant::now();
    let naive_scores = swc.classify_naive(&net, &naive_trace);
    let naive_elapsed = t0.elapsed();
    let naive_wps = naive_scores.len() as f64 / naive_elapsed.as_secs_f64();
    println!("naive:     {naive_windows:>7} windows in {naive_elapsed:>8.2?}  ({naive_wps:>10.1} windows/s)");

    // GEMM kernels, old Vec-staging.
    let net = cnn();
    let t0 = Instant::now();
    let staged_scores = swc.classify_reference(&net, &trace);
    let staged_elapsed = t0.elapsed();
    let staged_wps = staged_scores.len() as f64 / staged_elapsed.as_secs_f64();
    println!("staged:    {total_windows:>7} windows in {staged_elapsed:>8.2?}  ({staged_wps:>10.1} windows/s)");

    // Full optimized zero-copy path: one shared `&net`, per-thread
    // workspaces, zero weight clones.
    let net = cnn();
    let t0 = Instant::now();
    let opt_scores = swc.classify(&net, &trace);
    let opt_elapsed = t0.elapsed();
    let opt_wps = opt_scores.len() as f64 / opt_elapsed.as_secs_f64();
    println!(
        "optimized: {total_windows:>7} windows in {opt_elapsed:>8.2?}  ({opt_wps:>10.1} windows/s)"
    );

    // Sanity: the three paths agree on the overlapping prefix.
    for (i, (a, b)) in opt_scores.iter().zip(naive_scores.iter()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
            "score divergence at window {i}: optimized {a} vs naive {b}"
        );
    }
    for (a, b) in opt_scores.iter().zip(staged_scores.iter()) {
        assert!((a - b).abs() <= 1e-6, "zero-copy staging changed scores: {a} vs {b}");
    }

    // Single-window forward latency (batch of 1, the latency floor).
    let net = cnn();
    let mut ws = tinynn::Workspace::new();
    let one = CoLocatorCnn::stack_windows(&[trace.samples()[..WINDOW_LEN].to_vec()]);
    let _ = net.class1_scores(&one, &mut ws); // warm-up
    let reps = 50u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(net.class1_scores(std::hint::black_box(&one), &mut ws));
    }
    let fwd_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("forward(batch=1): {fwd_us:.1} us/window");

    let speedup = opt_wps / naive_wps;
    println!("speedup optimized vs naive: {speedup:.1}x");

    let json = format!(
        "{{\n  \"bench\": \"locator_sliding_window\",\n  \"trace_len\": {},\n  \"window_len\": {WINDOW_LEN},\n  \"stride\": {STRIDE},\n  \"total_windows\": {total_windows},\n  \"naive_windows_measured\": {},\n  \"windows_per_sec_naive\": {naive_wps:.2},\n  \"windows_per_sec_staged\": {staged_wps:.2},\n  \"windows_per_sec_optimized\": {opt_wps:.2},\n  \"speedup_optimized_vs_naive\": {speedup:.2},\n  \"forward_batch1_us\": {fwd_us:.2}\n}}\n",
        trace.len(),
        naive_scores.len(),
    );
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write benchmark json");
    println!("wrote {}", args.out);
}
