//! Regenerates the Section IV-B segmentation sweep: hit-rate of the CNN
//! locator for **every cipher**, both random-delay configurations (RD-2 and
//! RD-4), consecutive and noise-interleaved scenarios. The paper reports
//! 100 % hits in all of these cells.
//!
//! Also doubles as the ablation harness for the design choices discussed in
//! DESIGN.md (pass `--ablation` to sweep the median-filter size and to compare
//! the linear-score output against the softmax probability output).
//!
//! Run with: `cargo run -p sca-bench --bin hits_sweep --release`

use sca_bench::{score_hits, simulate_scenario, train_locator, ExperimentConfig};
use sca_ciphers::CipherId;

fn main() {
    let ablation = std::env::args().any(|a| a == "--ablation");
    // A smaller CO count keeps the 5-cipher x 2-RD x 2-scenario sweep tractable.
    let base = ExperimentConfig { scenario_cos: 16, ..ExperimentConfig::default() };

    println!("== Section IV-B: segmentation hit-rate sweep ==");
    println!(
        "{:<10} {:>6} {:>14} {:>10} {:>10} {:>8}",
        "Cipher", "RD", "Noise apps", "Hits", "Total", "Hits (%)"
    );
    println!("{}", "-".repeat(64));

    let ciphers: &[CipherId] = if ablation { &[CipherId::Aes128] } else { &CipherId::ALL };

    for &cipher in ciphers {
        for rd in [2usize, 4] {
            let cfg = ExperimentConfig { rd_max: rd, ..base };
            let setup = train_locator(cipher, &cfg);
            for noise in [false, true] {
                let result = simulate_scenario(cipher, noise, &cfg);
                let located = setup.locator.locate(&result.trace);
                let hits = score_hits(&located, &result);
                println!(
                    "{:<10} {:>6} {:>14} {:>10} {:>10} {:>8.2}",
                    cipher.label(),
                    format!("RD-{rd}"),
                    if noise { "yes" } else { "no" },
                    hits.hits,
                    hits.total,
                    hits.percentage()
                );
            }
        }
    }

    if ablation {
        println!();
        println!("== Ablation: median-filter size k (AES, RD-4, consecutive) ==");
        let cfg = ExperimentConfig { rd_max: 4, ..base };
        let setup = train_locator(CipherId::Aes128, &cfg);
        let result = simulate_scenario(CipherId::Aes128, false, &cfg);
        for k in [1usize, 3, 5, 9, 15] {
            let mut profile = setup.profile.clone();
            profile.segmentation.median_filter_k = k;
            let locator = sca_locator::CoLocator::from_parts(
                setup.locator.cnn().clone(),
                *setup.locator.sliding(),
                sca_locator::Segmenter::new(profile.segmentation),
            );
            let located = locator.locate(&result.trace);
            let hits = score_hits(&located, &result);
            println!(
                "k = {k:>2}  ->  hits {:>5.1}%  ({} located)",
                hits.percentage(),
                located.len()
            );
        }
    }

    println!();
    println!("Paper reference: 100% hits for every cipher, both RD settings, both scenarios.");
}
