//! Regenerates **Table I** of the paper: per-cipher pipeline parameters
//! (mean CO length, N_train, N_inf, stride) and dataset sizes.
//!
//! Two tables are printed: the paper's original values (for reference) and the
//! values measured/derived on the simulated platform used by this
//! reproduction (RD-4, the harder configuration).
//!
//! Run with: `cargo run -p sca-bench --bin table1 --release`

use sca_bench::ExperimentConfig;
use sca_ciphers::CipherId;
use sca_locator::CipherProfile;
use soc_sim::{SocSimulator, SocSimulatorConfig};

fn print_profile_row(p: &CipherProfile) {
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>7} {:>12} {:>12} {:>10}",
        p.cipher.label(),
        p.mean_co_len,
        p.n_train,
        p.n_inf,
        p.stride,
        p.cipher_start_windows,
        p.cipher_rest_windows,
        p.noise_windows
    );
}

fn header() {
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>7} {:>12} {:>12} {:>10}",
        "Cipher", "Mean len", "Ntrain", "Ninf", "s", "CipherStart", "CipherRest", "Noise"
    );
    println!("{}", "-".repeat(84));
}

fn main() {
    println!("== Table I (paper values, FPGA platform @ 125 Ms/s) ==");
    header();
    for p in CipherProfile::paper_all() {
        print_profile_row(&p);
    }

    let cfg = ExperimentConfig::default();
    println!();
    println!("== Table I (this reproduction, simulated platform, RD-{}) ==", cfg.rd_max);
    header();
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(cfg.rd_max), cfg.seed);
    for cipher in CipherId::ALL {
        let mean = sim.mean_co_samples(cipher, 16);
        let profile = CipherProfile::scaled(cipher, mean.round() as usize);
        print_profile_row(&profile);
    }
    println!();
    println!("Window sizes/strides are derived from the measured mean CO length with the");
    println!("same ratios as the paper (N_train ~ 10% of the CO, stride ~ N_train/16).");
}
