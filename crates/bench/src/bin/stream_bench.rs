//! Out-of-core streaming locate benchmark.
//!
//! Measures the chunked scoring path introduced with
//! [`sca_locator::LocatorEngine::locate_streamed`]: a synthetic trace at
//! least 8× larger than the chunk size is written to disk **chunk by chunk**
//! (the benchmark process never materialises it), then located straight from
//! the file through a [`sca_trace::FileTraceSource`]. In the default mode
//! the trace is afterwards loaded fully and located in memory, and the two
//! routes are verified to agree — bit-identical `swc` scores, identical CO
//! starts. Peak RSS (`VmHWM` from `/proc/self/status`, Linux) is snapshotted
//! right after the streamed run, before the in-memory path inflates it, so
//! the JSON records what the out-of-core path actually costs.
//!
//! `--streamed-only` skips the in-memory pass entirely; CI runs that mode
//! under `/usr/bin/time -v` as a peak-RSS guard proving the streamed locate
//! stays within a fixed memory budget far below the trace size.
//!
//! Usage: `stream_bench [--trace-len N] [--chunk-len N] [--streamed-only]
//! [--out PATH]` (defaults: 4,194,304-sample trace, 262,144-sample chunks).

use sca_locator::{
    CnnConfig, CoLocatorCnn, LocatorEngine, SegmentationConfig, Segmenter, SlidingWindowClassifier,
    ThresholdStrategy,
};
use sca_trace::FileTraceSource;
use sca_trace::TraceSource;
use std::io::Write;
use std::time::Instant;

/// Window length of the scorer (the scaled profiles use this order of size).
const WINDOW_LEN: usize = 128;
/// Stride between windows.
const STRIDE: usize = 32;

struct Args {
    trace_len: usize,
    chunk_len: usize,
    streamed_only: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        trace_len: 4 * 1024 * 1024,
        chunk_len: 256 * 1024,
        streamed_only: false,
        out: "BENCH_stream.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--trace-len" => args.trace_len = value("--trace-len").parse().expect("trace len"),
            "--chunk-len" => args.chunk_len = value("--chunk-len").parse().expect("chunk len"),
            "--streamed-only" => args.streamed_only = true,
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.chunk_len > 0, "chunk length must be non-zero");
    assert!(
        args.trace_len >= 8 * args.chunk_len,
        "the out-of-core scenario needs a trace at least 8x the chunk size \
         ({} < 8 * {})",
        args.trace_len,
        args.chunk_len
    );
    args
}

/// Deterministic synthetic sample: superposed oscillations plus LCG noise,
/// generated positionally so the trace can be written in bounded pieces.
struct SampleGen {
    state: u64,
}

impl SampleGen {
    fn new(seed: u64) -> Self {
        Self { state: 0x0123_4567_89AB_CDEF_u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    fn next_sample(&mut self, i: usize) -> f32 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let noise = ((self.state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        let t = i as f32;
        (t * 0.013).sin() + 0.4 * (t * 0.11).sin() + 0.25 * noise
    }
}

/// Writes the synthetic trace to `path` in raw-f32 format without ever
/// holding more than one bounded piece of it in memory.
fn write_trace_file(path: &std::path::Path, trace_len: usize) -> u64 {
    const PIECE: usize = 64 * 1024;
    let mut gen = SampleGen::new(1);
    let file = std::fs::File::create(path).expect("create trace file");
    let mut w = std::io::BufWriter::new(file);
    let mut piece = Vec::with_capacity(PIECE);
    let mut written = 0usize;
    while written < trace_len {
        piece.clear();
        let n = PIECE.min(trace_len - written);
        piece.extend((0..n).map(|j| gen.next_sample(written + j)));
        sca_trace::io::write_samples_binary(&mut w, &piece).expect("write trace piece");
        written += n;
    }
    w.flush().expect("flush trace file");
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Peak resident set size of this process in KiB (`VmHWM`), or 0 where
/// `/proc/self/status` is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let args = parse_args();
    let cnn = CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 42 });
    let sliding = SlidingWindowClassifier::new(WINDOW_LEN, STRIDE).with_batch_size(64);

    let trace_path = std::env::temp_dir().join(format!("stream_bench_{}.bin", std::process::id()));
    let trace_file_bytes = write_trace_file(&trace_path, args.trace_len);
    let source = FileTraceSource::open_raw_f32(&trace_path).expect("open trace source");

    // A fixed threshold keeps the streaming segmentation truly incremental
    // (O(median filter size) state — see `StreamingSegmenter`), which is the
    // configuration the peak-RSS guard is about. Derive it from the score
    // midrange of one bounded prefix so the untrained network still yields
    // edges to segment.
    let prefix_len = args.chunk_len.min(source.len());
    let mut prefix = vec![0.0f32; prefix_len];
    source.fill(0, &mut prefix).expect("read prefix");
    let prefix_scores = sliding.classify(&cnn, &sca_trace::Trace::from_samples(prefix));
    let threshold = Segmenter::new(SegmentationConfig {
        threshold: ThresholdStrategy::MidRange,
        ..Default::default()
    })
    .resolve_threshold(&prefix_scores);
    let engine = LocatorEngine::new(
        cnn,
        sliding,
        Segmenter::new(SegmentationConfig {
            threshold: ThresholdStrategy::Fixed(threshold),
            median_filter_k: 5,
            min_distance_windows: 4,
        }),
    );
    let windows = engine.sliding().output_len(source.len());
    // Peak transient sample buffer of the chunked path (stride-aligned).
    let windows_per_chunk = (args.chunk_len.saturating_sub(WINDOW_LEN) / STRIDE + 1).max(1);
    let chunk_peak_samples = (windows_per_chunk - 1) * STRIDE + WINDOW_LEN;
    println!(
        "trace: {} samples ({} MiB on disk), chunk: {} samples ({} windows/chunk), {} windows",
        args.trace_len,
        trace_file_bytes / (1024 * 1024),
        args.chunk_len,
        windows_per_chunk,
        windows
    );

    // Streamed locate straight from disk.
    let t0 = Instant::now();
    let streamed_starts = engine.locate_streamed(&source, args.chunk_len).expect("streamed locate");
    let streamed_elapsed = t0.elapsed();
    let streamed_wps = windows as f64 / streamed_elapsed.as_secs_f64();
    let rss_after_stream_kb = peak_rss_kb();
    println!(
        "locate_streamed: {streamed_elapsed:>8.2?}  ({streamed_wps:>10.1} windows/s, \
         {} starts, peak RSS {rss_after_stream_kb} KiB)",
        streamed_starts.len()
    );

    let mut in_memory_ms = 0.0f64;
    let mut in_memory_wps = 0.0f64;
    if args.streamed_only {
        println!("--streamed-only: skipping the in-memory pass (peak-RSS guard mode)");
    } else {
        // The in-memory reference: load everything, locate, compare.
        let trace = source.read_all().expect("read trace fully");
        let t0 = Instant::now();
        let (swc_mem, starts_mem) = engine.locate_detailed(&trace);
        let in_memory_elapsed = t0.elapsed();
        in_memory_ms = in_memory_elapsed.as_secs_f64() * 1e3;
        in_memory_wps = windows as f64 / in_memory_elapsed.as_secs_f64();
        println!("in-memory locate: {in_memory_elapsed:>8.2?}  ({in_memory_wps:>10.1} windows/s)");

        // Acceptance: identical starts, bit-identical swc scores.
        assert_eq!(streamed_starts, starts_mem, "streamed starts must match in-memory locate");
        let swc_stream =
            engine.sliding().classify_source(engine.model(), &source, args.chunk_len).unwrap();
        assert_eq!(swc_stream.len(), swc_mem.len());
        for (i, (a, b)) in swc_stream.iter().zip(swc_mem.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "score {i}: streamed {a} must be bit-identical to in-memory {b}"
            );
        }
        println!(
            "parity: {} scores bit-identical, {} starts equal",
            swc_mem.len(),
            starts_mem.len()
        );
    }

    let rss_final_kb = peak_rss_kb();
    std::fs::remove_file(&trace_path).ok();

    let json = format!(
        "{{\n  \"bench\": \"locator_stream_out_of_core\",\n  \"trace_len\": {},\n  \"trace_file_bytes\": {trace_file_bytes},\n  \"chunk_len\": {},\n  \"chunk_peak_samples\": {chunk_peak_samples},\n  \"window_len\": {WINDOW_LEN},\n  \"stride\": {STRIDE},\n  \"total_windows\": {windows},\n  \"located_starts\": {},\n  \"streamed_locate_ms\": {:.3},\n  \"windows_per_sec_streamed\": {streamed_wps:.2},\n  \"in_memory_locate_ms\": {in_memory_ms:.3},\n  \"windows_per_sec_in_memory\": {in_memory_wps:.2},\n  \"parity_checked\": {},\n  \"peak_rss_after_stream_kb\": {rss_after_stream_kb},\n  \"peak_rss_final_kb\": {rss_final_kb}\n}}\n",
        args.trace_len,
        args.chunk_len,
        streamed_starts.len(),
        streamed_elapsed.as_secs_f64() * 1e3,
        !args.streamed_only,
    );
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write benchmark json");
    println!("wrote {}", args.out);
}
