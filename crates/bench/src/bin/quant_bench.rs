//! Quantised-inference throughput and parity benchmark.
//!
//! Builds the scaled f32 engine, derives its quantised (`i8` weights,
//! per-channel scales) counterpart with [`LocatorEngine::quantize`], and
//! streams the same synthetic multi-trace workload through both:
//!
//! * `locate_batch` wall time → windows/s for each engine and the i8:f32
//!   throughput ratio;
//! * per-window class-1 score divergence (max over every window of every
//!   trace) — the accuracy envelope of the quantised path;
//! * model-file sizes and save/load timings of format v1 vs v3.
//!
//! The benchmark model is untrained (its noise scores hover at the
//! segmentation threshold), so start agreement is *measured and reported*
//! rather than asserted here — the trained-model parity contract
//! (identical starts, divergence ≤ 1e-2) is enforced by the end-to-end
//! tests. Results go to `BENCH_quant.json` so the quantised-path
//! trajectory is tracked per commit.
//!
//! Usage: `quant_bench [--traces N] [--trace-len N] [--out PATH]`
//! (defaults: 8 traces of 1,000,000 samples).

use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;
use std::io::Write;
use std::time::Instant;

/// Window length of the scorer (the scaled profiles use this order of size).
const WINDOW_LEN: usize = 128;
/// Stride between windows.
const STRIDE: usize = 32;

struct Args {
    traces: usize,
    trace_len: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args { traces: 8, trace_len: 1_000_000, out: "BENCH_quant.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--traces" => args.traces = value("--traces").parse().expect("trace count"),
            "--trace-len" => args.trace_len = value("--trace-len").parse().expect("trace len"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.traces > 0, "need at least one trace");
    args
}

/// Synthetic "SoC-like" trace: superposed oscillations plus a deterministic
/// pseudo-noise term, seeded per trace (same generator as `engine_bench`).
fn synthetic_trace(len: usize, seed: u64) -> Trace {
    let mut state = 0x0123_4567_89AB_CDEF_u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let samples = (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
            let t = i as f32;
            (t * 0.013).sin() + 0.4 * (t * 0.11).sin() + 0.25 * noise
        })
        .collect();
    Trace::from_samples(samples)
}

fn main() {
    let args = parse_args();
    let engine = LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig::scaled()),
        SlidingWindowClassifier::new(WINDOW_LEN, STRIDE).with_batch_size(64),
        Segmenter::default(),
    );
    // Calibrate the fixed-point chain on held-out traces from the same
    // generator (seeds disjoint from the benchmark fleet): representative
    // sample windows pin both the activation grids and the head alignment
    // to the deployment distribution, exactly as a practitioner would.
    let calib_windows: Vec<Vec<f32>> = (0..2u64)
        .flat_map(|i| {
            let t = synthetic_trace(64 * WINDOW_LEN, 10_000 + i);
            t.samples().chunks_exact(WINDOW_LEN).map(<[f32]>::to_vec).collect::<Vec<_>>()
        })
        .collect();
    let qengine = engine.quantize_with_samples(&calib_windows);
    let traces: Vec<Trace> =
        (0..args.traces).map(|i| synthetic_trace(args.trace_len, i as u64)).collect();
    let total_windows: usize = traces.iter().map(|t| engine.sliding().output_len(t.len())).sum();
    println!(
        "fleet: {} traces x {} samples = {} windows (N={WINDOW_LEN}, stride={STRIDE})",
        traces.len(),
        args.trace_len,
        total_windows
    );

    // Warm-up both paths: fault in code and scratch buffers.
    let _ = engine.locate(&traces[0]);
    let _ = qengine.locate(&traces[0]);

    let t0 = Instant::now();
    let f32_starts = engine.locate_batch(&traces);
    let f32_elapsed = t0.elapsed();
    let f32_wps = total_windows as f64 / f32_elapsed.as_secs_f64();
    println!("f32 locate_batch: {f32_elapsed:>8.2?}  ({f32_wps:>10.1} windows/s)");

    let t0 = Instant::now();
    let q_starts = qengine.locate_batch(&traces);
    let q_elapsed = t0.elapsed();
    let q_wps = total_windows as f64 / q_elapsed.as_secs_f64();
    println!("i8  locate_batch: {q_elapsed:>8.2?}  ({q_wps:>10.1} windows/s)");

    // Parity: bounded score divergence and start agreement. The benchmark
    // model is untrained, so its noise scores hover at the segmentation
    // threshold and marginal windows may flip — the trained-model contract
    // (identical starts, divergence ≤ 1e-2) is enforced by the end-to-end
    // tests; here the envelope is measured and reported.
    let mut max_divergence = 0.0f32;
    for trace in &traces {
        let (f32_scores, _) = engine.locate_detailed(trace);
        let (q_scores, _) = qengine.locate_detailed(trace);
        for (a, b) in q_scores.iter().zip(f32_scores.iter()) {
            max_divergence = max_divergence.max((a - b).abs());
        }
    }
    let matching: usize = f32_starts
        .iter()
        .zip(q_starts.iter())
        .map(|(a, b)| a.iter().filter(|s| b.contains(s)).count())
        .sum();
    let total_starts: usize = f32_starts.iter().map(|s| s.len()).sum();
    let start_agreement =
        if total_starts == 0 { 1.0 } else { matching as f64 / total_starts as f64 };
    println!("max per-window class-1 score divergence: {max_divergence:.2e}");
    println!("start agreement (untrained model, noise input): {:.1}%", 100.0 * start_agreement);

    // Model persistence: v1 vs v3 size and timing.
    let pid = std::process::id();
    let v1_path = std::env::temp_dir().join(format!("quant_bench_{pid}.v1"));
    let v3_path = std::env::temp_dir().join(format!("quant_bench_{pid}.v3"));
    let t0 = Instant::now();
    engine.save(&v1_path).expect("save f32 engine");
    let v1_save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    qengine.save(&v3_path).expect("save quantised engine");
    let v3_save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let v1_bytes = std::fs::metadata(&v1_path).map(|m| m.len()).unwrap_or(0);
    let v3_bytes = std::fs::metadata(&v3_path).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let restored = LocatorEngine::load(&v3_path).expect("load quantised engine");
    let v3_load_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(restored.is_quantized());
    assert_eq!(
        restored.locate(&traces[0]),
        q_starts[0],
        "restored v3 engine must reproduce the quantised starts"
    );
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v3_path).ok();
    println!(
        "model files: v1 {v1_bytes} bytes, v3 {v3_bytes} bytes ({:.2}x smaller)",
        v1_bytes as f64 / v3_bytes.max(1) as f64
    );

    let speedup = q_wps / f32_wps;
    println!("throughput i8 vs f32: {speedup:.2}x");
    // The fixed-point chain exists to make i8 *faster* than f32; a ratio
    // below parity is a regression worth failing the bench run over.
    assert!(
        speedup >= 1.0,
        "quantised path regressed below f32 parity: {speedup:.3}x (f32 {f32_wps:.0} w/s, i8 {q_wps:.0} w/s)"
    );

    let json = format!(
        "{{\n  \"bench\": \"locator_engine_quantized\",\n  \"traces\": {},\n  \"trace_len\": {},\n  \"window_len\": {WINDOW_LEN},\n  \"stride\": {STRIDE},\n  \"total_windows\": {total_windows},\n  \"windows_per_sec_f32\": {f32_wps:.2},\n  \"windows_per_sec_i8\": {q_wps:.2},\n  \"speedup_i8_vs_f32\": {speedup:.3},\n  \"max_score_divergence\": {max_divergence:.6e},\n  \"start_agreement\": {start_agreement:.4},\n  \"model_bytes_v1\": {v1_bytes},\n  \"model_bytes_v3\": {v3_bytes},\n  \"model_save_ms_v1\": {v1_save_ms:.3},\n  \"model_save_ms_v3\": {v3_save_ms:.3},\n  \"model_load_ms_v3\": {v3_load_ms:.3}\n}}\n",
        traces.len(),
        args.trace_len,
    );
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write benchmark json");
    println!("wrote {}", args.out);
}
