//! Regenerates **Table II** of the paper: segmentation hit-rate and CPA
//! result for AES-128 under RD-2 and RD-4, with and without interleaved noise
//! applications, comparing the CNN-based locator against the matched-filter
//! baseline [10] and the SAD template-matching baseline [11].
//!
//! For every scenario the harness reports:
//! * Hits (%) — fraction of COs whose beginning was located;
//! * CPA (N. COs) — number of located-and-aligned COs needed for every
//!   attacked key byte to reach rank 1 (✗ if the key is not recovered with
//!   the available COs).
//!
//! The attacked key bytes default to 4 (instead of all 16) to keep the runtime
//! of the scaled-down experiment reasonable; pass `--bytes 16` for the full key.
//!
//! Run with: `cargo run -p sca-bench --bin table2_attack --release`

use sca_attack::{CpaAttack, CpaConfig};
use sca_baselines::{BaselineLocator, MatchedFilterLocator, SadTemplateLocator};
use sca_bench::{
    baseline_template, score_hits, simulate_scenario, train_locator, ExperimentConfig,
};
use sca_ciphers::CipherId;
use sca_locator::Aligner;
use soc_sim::ScenarioResult;

struct Row {
    method: &'static str,
    rd: usize,
    noise: bool,
    hits_pct: f64,
    cpa_cos: Option<usize>,
}

fn cpa_on_alignment(
    located: &[usize],
    result: &ScenarioResult,
    num_key_bytes: usize,
) -> Option<usize> {
    if located.is_empty() {
        return None;
    }
    let co_len = result.mean_co_len().round() as usize;
    let aligner = Aligner::new(co_len.max(16));
    let (aligned, dropped) = aligner.align(&result.trace, located);
    if aligned.is_empty() {
        return None;
    }
    // Pair every aligned segment with the plaintext of the ground-truth CO it
    // overlaps (an attacker would instead use the known plaintext sequence;
    // with hits at 100 % the ordering is identical).
    let kept: Vec<usize> = (0..located.len()).filter(|i| !dropped.contains(i)).collect();
    let tolerance = (result.mean_co_len() / 2.0) as usize;
    let mut traces = Vec::new();
    let mut plaintexts = Vec::new();
    for (seg, &loc_idx) in aligned.iter().zip(kept.iter()) {
        let start = located[loc_idx];
        if let Some(co) = result.cos.iter().find(|c| c.start_sample.abs_diff(start) <= tolerance) {
            traces.push(seg.clone());
            plaintexts.push(co.plaintext);
        }
    }
    if traces.is_empty() {
        return None;
    }
    // A coarse aggregation window absorbs both the stride-quantised alignment
    // and the random-delay jitter of the first-round SubBytes position.
    let config = CpaConfig { num_key_bytes, aggregation_window: 64, ..CpaConfig::default() };
    let (_, progress) = CpaAttack::run(&traces, &plaintexts, &result.key, config, 8);
    progress.cos_to_rank1
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num_key_bytes = args
        .iter()
        .position(|a| a == "--bytes")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .clamp(1, 16);

    let mut rows: Vec<Row> = Vec::new();
    for rd in [2usize, 4] {
        let cfg = ExperimentConfig { rd_max: rd, ..ExperimentConfig::default() };
        println!("training CNN locator for AES-128 under RD-{rd} ...");
        let setup = train_locator(CipherId::Aes128, &cfg);
        let template = baseline_template(CipherId::Aes128, cfg.seed, 8);
        let matched = MatchedFilterLocator::new(template.clone(), 0.85, template.len() / 2);
        let sad = SadTemplateLocator::new(template.clone(), 0.05, template.len() / 2);

        for noise in [true, false] {
            let result = simulate_scenario(CipherId::Aes128, noise, &cfg);

            // Baseline [10]: matched filter.
            let mf_hits = score_hits(&matched.locate(&result.trace), &result);
            rows.push(Row {
                method: "[10] matched filter",
                rd,
                noise,
                hits_pct: mf_hits.percentage(),
                cpa_cos: cpa_on_alignment(&matched.locate(&result.trace), &result, num_key_bytes),
            });

            // Baseline [11]: SAD template matching.
            let sad_hits = score_hits(&sad.locate(&result.trace), &result);
            rows.push(Row {
                method: "[11] SAD template",
                rd,
                noise,
                hits_pct: sad_hits.percentage(),
                cpa_cos: cpa_on_alignment(&sad.locate(&result.trace), &result, num_key_bytes),
            });

            // This work: CNN locator.
            let located = setup.locator.locate(&result.trace);
            let our_hits = score_hits(&located, &result);
            rows.push(Row {
                method: "This work (CNN)",
                rd,
                noise,
                hits_pct: our_hits.percentage(),
                cpa_cos: cpa_on_alignment(&located, &result, num_key_bytes),
            });
        }
    }

    println!();
    println!("== Table II: segmentation and CPA results targeting AES-128 ==");
    println!(
        "(scaled scenario: {} COs per trace, {} attacked key bytes)",
        ExperimentConfig::default().scenario_cos,
        num_key_bytes
    );
    println!(
        "{:<22} {:>6} {:>12} {:>10} {:>14}",
        "Method", "RD", "Noise apps", "Hits (%)", "CPA (N. COs)"
    );
    println!("{}", "-".repeat(70));
    for row in &rows {
        println!(
            "{:<22} {:>6} {:>12} {:>10.2} {:>14}",
            row.method,
            format!("RD-{}", row.rd),
            if row.noise { "yes" } else { "no" },
            row.hits_pct,
            row.cpa_cos.map_or_else(|| "x".to_string(), |n| n.to_string())
        );
    }
    println!();
    println!("Paper reference: [10] and [11] score 0% hits (CPA fails) in every scenario;");
    println!("this work scores 100% hits with CPA succeeding after 1 125-3 695 COs.");
}
