//! Model-registry benchmark: cold-load latency, hot-swap latency, and
//! steady-state multi-model serving throughput.
//!
//! Three measurements over SCALOCEN files saved from a scaled engine:
//!
//! 1. **Cold load** — `ModelRegistry::resolve` on a registered-but-evicted
//!    model, i.e. the full disk→deserialise→pack path a request pays when
//!    it faults a model in. Evicted and re-resolved per rep; the median
//!    latency lands in the JSON.
//! 2. **Hot swap** — `ModelRegistry::swap` installing a new generation
//!    (load included) while the old one stays resident. This is the
//!    operator-facing path, so its latency is guarded per commit.
//! 3. **Steady state** — closed-loop clients hammering a service over two
//!    registered models round-robin; aggregate windows/s with every result
//!    asserted bit-identical to the direct `locate`. This catches any
//!    registry-lookup overhead the scheduler would pay per admission.
//!
//! Usage: `registry_bench [--reps N] [--clients N] [--trace-len N]
//! [--out PATH]` (defaults: 5 reps, 4 clients, 120,000 samples).

use locsvc::{LocatorService, ModelRegistry, RequestOptions, ServiceConfig};
use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WINDOW_LEN: usize = 128;
const STRIDE: usize = 32;

struct Args {
    reps: usize,
    clients: usize,
    trace_len: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { reps: 5, clients: 4, trace_len: 120_000, out: "BENCH_registry.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--reps" => args.reps = value("--reps").parse().expect("rep count"),
            "--clients" => args.clients = value("--clients").parse().expect("client count"),
            "--trace-len" => args.trace_len = value("--trace-len").parse().expect("trace len"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.reps > 0 && args.clients > 0);
    args
}

fn synthetic_trace(len: usize, seed: u64) -> Trace {
    let mut state = 0x0123_4567_89AB_CDEF_u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    Trace::from_samples(
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                let t = i as f32;
                (t * 0.013).sin() + 0.4 * (t * 0.11).sin() + 0.25 * noise
            })
            .collect(),
    )
}

fn build_engine(seed: u64) -> LocatorEngine {
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { seed, ..CnnConfig::scaled() }),
        SlidingWindowClassifier::new(WINDOW_LEN, STRIDE).with_batch_size(64),
        Segmenter::default(),
    )
}

fn temp_model(seed: u64) -> PathBuf {
    let path = std::env::temp_dir().join(format!("registry_bench_{seed}_{}", std::process::id()));
    build_engine(seed).save(&path).expect("save model file");
    path
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

fn main() {
    let args = parse_args();
    let path_a = temp_model(11);
    let path_b = temp_model(22);
    let model_bytes = build_engine(11).memory_footprint();
    println!(
        "model footprint: {:.2} MiB on load (weights + workspace)",
        model_bytes as f64 / (1024.0 * 1024.0)
    );

    // --- 1. cold-load latency: evict, then resolve faults the file in ------
    let registry = ModelRegistry::default();
    registry.register("a", &path_a).unwrap();
    let mut cold = vec![Duration::ZERO; args.reps];
    for rep in cold.iter_mut() {
        let t0 = Instant::now();
        let handle = registry.resolve("a").expect("cold load");
        *rep = t0.elapsed();
        assert_eq!(handle.generation(), 1);
        registry.evict("a").expect("file-backed models evict");
    }
    let cold_load_ms = median_ms(&mut cold);
    println!("cold load:  {cold_load_ms:>8.2} ms (median of {})", args.reps);

    // --- 2. hot-swap latency: new generation installed atomically ----------
    let resident = registry.resolve("a").unwrap();
    let mut swap = vec![Duration::ZERO; args.reps];
    for (k, rep) in swap.iter_mut().enumerate() {
        let path = if k % 2 == 0 { &path_b } else { &path_a };
        let t0 = Instant::now();
        registry.swap("a", path).expect("swap");
        *rep = t0.elapsed();
    }
    let swap_ms = median_ms(&mut swap);
    // The pre-swap handle still pins generation 1's weights.
    assert_eq!(resident.generation(), 1);
    let stats = registry.stats();
    assert_eq!(stats.swaps, args.reps as u64);
    println!("hot swap:   {swap_ms:>8.2} ms (median of {})", args.reps);

    // --- 3. steady-state two-model serving ---------------------------------
    let registry = Arc::new(ModelRegistry::default());
    registry.register("a", &path_a).unwrap();
    registry.register("b", &path_b).unwrap();
    let requests = args.clients * 4;
    let traces: Vec<Trace> =
        (0..requests).map(|i| synthetic_trace(args.trace_len, i as u64)).collect();
    let names = ["a", "b"];
    let engines = [build_engine(11), build_engine(22)];
    let expected: Vec<Vec<usize>> =
        traces.iter().enumerate().map(|(i, t)| engines[i % 2].locate(t)).collect();
    let total_windows: usize =
        traces.iter().map(|t| engines[0].sliding().output_len(t.len())).sum();

    let mut steady = vec![Duration::ZERO; args.reps];
    for rep in steady.iter_mut() {
        let service = Arc::new(LocatorService::with_registry(
            Arc::clone(&registry),
            ServiceConfig { queue_capacity: requests + args.clients, ..ServiceConfig::default() },
        ));
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..args.clients {
                let service = Arc::clone(&service);
                let (traces, expected) = (&traces, &expected);
                scope.spawn(move || {
                    for req in (client..traces.len()).step_by(args.clients) {
                        let got = service
                            .submit_trace(
                                names[req % 2],
                                traces[req].clone(),
                                RequestOptions::default(),
                            )
                            .expect("queue sized for the fleet")
                            .wait()
                            .expect("request completes");
                        assert_eq!(got.starts, expected[req], "request {req} diverged");
                    }
                });
            }
        });
        *rep = t0.elapsed();
        service.shutdown();
    }
    let steady_elapsed = {
        steady.sort();
        steady[steady.len() / 2]
    };
    let steady_wps = total_windows as f64 / steady_elapsed.as_secs_f64();
    println!(
        "steady state (2 models, {} clients): {steady_elapsed:>8.2?} ({steady_wps:>10.1} windows/s)",
        args.clients
    );

    let json = format!(
        "{{\n  \"bench\": \"model_registry\",\n  \"reps\": {},\n  \"clients\": {},\n  \"trace_len\": {},\n  \"window_len\": {WINDOW_LEN},\n  \"stride\": {STRIDE},\n  \"model_bytes\": {model_bytes},\n  \"total_windows\": {total_windows},\n  \"cold_load_latency_ms\": {cold_load_ms:.3},\n  \"swap_latency_ms\": {swap_ms:.3},\n  \"windows_per_sec_multimodel\": {steady_wps:.2}\n}}\n",
        args.reps, args.clients, args.trace_len,
    );
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write benchmark json");
    println!("wrote {}", args.out);
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}
