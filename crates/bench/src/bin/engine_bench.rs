//! Multi-trace engine throughput benchmark.
//!
//! Measures the batched serving path introduced with
//! [`sca_locator::LocatorEngine`]: N synthetic traces are scored through one
//! shared weight set, once by looping the single-trace `locate` (per-trace
//! shard parallelism) and once through `locate_batch` (across-trace
//! parallelism). A save → load roundtrip of the engine is also timed and the
//! restored model is verified to reproduce the located starts exactly. The
//! results go to `BENCH_engine.json` so the serving-path trajectory is
//! tracked per commit.
//!
//! Usage: `engine_bench [--traces N] [--trace-len N] [--out PATH]`
//! (defaults: 8 traces of 1,000,000 samples).

use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;
use std::io::Write;
use std::time::Instant;

/// Window length of the scorer (the scaled profiles use this order of size).
const WINDOW_LEN: usize = 128;
/// Stride between windows.
const STRIDE: usize = 32;

struct Args {
    traces: usize,
    trace_len: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args { traces: 8, trace_len: 1_000_000, out: "BENCH_engine.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--traces" => args.traces = value("--traces").parse().expect("trace count"),
            "--trace-len" => args.trace_len = value("--trace-len").parse().expect("trace len"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.traces > 0, "need at least one trace");
    args
}

/// Synthetic "SoC-like" trace: superposed oscillations plus a deterministic
/// pseudo-noise term, seeded per trace so the fleet is not N copies of one
/// signal.
fn synthetic_trace(len: usize, seed: u64) -> Trace {
    let mut state = 0x0123_4567_89AB_CDEF_u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let samples = (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
            let t = i as f32;
            (t * 0.013).sin() + 0.4 * (t * 0.11).sin() + 0.25 * noise
        })
        .collect();
    Trace::from_samples(samples)
}

fn main() {
    let args = parse_args();
    let engine = LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig::scaled()),
        SlidingWindowClassifier::new(WINDOW_LEN, STRIDE).with_batch_size(64),
        Segmenter::default(),
    );
    let traces: Vec<Trace> =
        (0..args.traces).map(|i| synthetic_trace(args.trace_len, i as u64)).collect();
    let total_samples: usize = traces.iter().map(|t| t.len()).sum();
    let total_windows: usize = traces.iter().map(|t| engine.sliding().output_len(t.len())).sum();
    println!(
        "fleet: {} traces x {} samples = {} windows (N={WINDOW_LEN}, stride={STRIDE})",
        traces.len(),
        args.trace_len,
        total_windows
    );

    // Warm-up: fault in code paths and thread-local buffers. (The batch
    // route needs no separate warm-up: its workers spawn fresh scoped
    // threads with fresh workspaces every call, and the median-pair
    // selection below rejects a cold outlier rep.)
    let _ = engine.locate(&traces[0]);

    // Interleaved measurement: looped and batched runs alternate
    // (L, B, L, B, …) so a one-sided cache or frequency drift cannot bias
    // the comparison in either direction. All rep times are kept: the
    // median rep pair provides every reported number and the rep spread
    // calibrates the noise floor of the speedup assertion below.
    const REPS: usize = 3;
    let mut looped: Vec<Vec<usize>> = Vec::new();
    let mut batched: Vec<Vec<usize>> = Vec::new();
    let mut loop_reps = [std::time::Duration::ZERO; REPS];
    let mut batch_reps = [std::time::Duration::ZERO; REPS];
    for rep in 0..REPS {
        let t0 = Instant::now();
        looped = traces.iter().map(|t| engine.locate(t)).collect();
        loop_reps[rep] = t0.elapsed();
        let t0 = Instant::now();
        batched = engine.locate_batch(&traces);
        batch_reps[rep] = t0.elapsed();
    }
    // One estimator for every reported number: the median rep *pair*. Each
    // rep's batch run follows its looped run back-to-back, so slow
    // machine-speed drift hits both sides of one pair almost equally and
    // cancels in the ratio; taking the median pair then rejects a single
    // disturbed rep. Using the same pair for the throughput fields keeps
    // the JSON self-consistent — windows_per_sec_looped/batch divide to
    // exactly the reported speedup (deriving them from per-path minima
    // instead can contradict the speedup field on a noisy host).
    let mut pair_order: Vec<usize> = (0..REPS).collect();
    pair_order.sort_by(|&a, &b| {
        let ra = loop_reps[a].as_secs_f64() / batch_reps[a].as_secs_f64();
        let rb = loop_reps[b].as_secs_f64() / batch_reps[b].as_secs_f64();
        ra.partial_cmp(&rb).expect("finite ratios")
    });
    let median_pair = pair_order[REPS / 2];
    let loop_elapsed = loop_reps[median_pair];
    let batch_elapsed = batch_reps[median_pair];
    let loop_tps = traces.len() as f64 / loop_elapsed.as_secs_f64();
    let loop_wps = total_windows as f64 / loop_elapsed.as_secs_f64();
    println!(
        "looped locate:  {loop_elapsed:>8.2?}  ({loop_tps:>6.2} traces/s, {loop_wps:>10.1} windows/s)"
    );
    let batch_tps = traces.len() as f64 / batch_elapsed.as_secs_f64();
    let batch_wps = total_windows as f64 / batch_elapsed.as_secs_f64();
    println!(
        "locate_batch:   {batch_elapsed:>8.2?}  ({batch_tps:>6.2} traces/s, {batch_wps:>10.1} windows/s)"
    );

    // Acceptance: the two routes must agree exactly.
    assert_eq!(batched, looped, "locate_batch must reproduce per-trace locate exactly");

    // Acceptance: batch scheduling must never be slower than looping the
    // single-trace path — the dynamic trace-stealing scheduler either fans
    // out across traces or *is* the looped path (narrow batches, 1 core),
    // so any real gap is a regression. The assertion's noise floor is
    // calibrated from the measurement itself: the worst rep-to-rep spread
    // either path showed this run (capped at 10%). On a quiet machine the
    // floor is tight; on a noisy shared runner it widens exactly as much as
    // the run demonstrably wobbles, so timer noise between two reps of what
    // can be byte-for-byte the same code cannot fail the build while a real
    // scheduling regression still trips it.
    let spread = |reps: &[std::time::Duration; REPS]| {
        let min = reps.iter().min().expect("REPS > 0").as_secs_f64();
        let max = reps.iter().max().expect("REPS > 0").as_secs_f64();
        (max - min) / min
    };
    let noise = spread(&loop_reps).max(spread(&batch_reps)).min(0.10);
    let speedup =
        (loop_elapsed.as_secs_f64() / batch_elapsed.as_secs_f64() * 100.0).round() / 100.0;
    assert!(
        speedup >= 1.0 - noise,
        "locate_batch regressed below looped locate: speedup {speedup:.2} < 1.0 \
         (measured rep noise {:.1}%)",
        noise * 100.0
    );

    // Model persistence roundtrip: save, load, verify identical starts.
    let model_path =
        std::env::temp_dir().join(format!("engine_bench_{}.model", std::process::id()));
    let t0 = Instant::now();
    engine.save(&model_path).expect("save engine");
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let model_bytes = std::fs::metadata(&model_path).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let restored = LocatorEngine::load(&model_path).expect("load engine");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        restored.locate(&traces[0]),
        looped[0],
        "restored engine must reproduce the original starts"
    );
    std::fs::remove_file(&model_path).ok();
    println!("model roundtrip: save {save_ms:.2} ms, load {load_ms:.2} ms, {model_bytes} bytes");

    println!("speedup locate_batch vs looped locate: {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"locator_engine_batch\",\n  \"traces\": {},\n  \"trace_len\": {},\n  \"total_samples\": {total_samples},\n  \"window_len\": {WINDOW_LEN},\n  \"stride\": {STRIDE},\n  \"total_windows\": {total_windows},\n  \"traces_per_sec_looped\": {loop_tps:.3},\n  \"windows_per_sec_looped\": {loop_wps:.2},\n  \"traces_per_sec_batch\": {batch_tps:.3},\n  \"windows_per_sec_batch\": {batch_wps:.2},\n  \"speedup_batch_vs_looped\": {speedup:.2},\n  \"model_bytes\": {model_bytes},\n  \"model_save_ms\": {save_ms:.3},\n  \"model_load_ms\": {load_ms:.3}\n}}\n",
        traces.len(),
        args.trace_len,
    );
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write benchmark json");
    println!("wrote {}", args.out);
}
