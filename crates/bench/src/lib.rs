//! Shared experiment harness used by the `table1`, `fig3_confusion`,
//! `table2_attack` and `hits_sweep` binaries (and by the
//! micro-benchmarks) to regenerate the paper's tables and figures on the
//! simulated platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;

use sca_ciphers::{cipher_by_id, CipherId};
use sca_locator::{
    CipherProfile, CoLocator, DatasetBuilder, HitReport, LocatorBuilder, Trainer, TrainingReport,
};
use sca_trace::{SplitRatios, Trace};
use soc_sim::{Scenario, ScenarioResult, SocSimulator, SocSimulatorConfig};
use tinynn::ConfusionMatrix;

/// Everything produced by training a locator for one cipher on the simulator.
pub struct TrainedSetup {
    /// The trained CO locator.
    pub locator: CoLocator,
    /// The scaled per-cipher pipeline profile that was used.
    pub profile: CipherProfile,
    /// Mean CO length (samples) measured on the simulated platform.
    pub mean_co_len: f64,
    /// Training metrics.
    pub report: TrainingReport,
    /// Test confusion matrix of the underlying CNN (Figure 3).
    pub confusion: ConfusionMatrix,
}

/// Experiment-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Maximum random-delay insertions (0, 2 or 4).
    pub rd_max: usize,
    /// Reproducibility seed.
    pub seed: u64,
    /// Number of cipher traces acquired for training.
    pub n_cipher_traces: usize,
    /// Number of COs in each evaluation scenario (512 in the paper; scaled
    /// down by default).
    pub scenario_cos: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { rd_max: 4, seed: 2024, n_cipher_traces: 96, scenario_cos: 32 }
    }
}

/// Acquires training material on the simulated clone device and trains a
/// locator for `cipher`.
pub fn train_locator(cipher: CipherId, cfg: &ExperimentConfig) -> TrainedSetup {
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(cfg.rd_max), cfg.seed);
    let mean_co_len = sim.mean_co_samples(cipher, 8);
    let profile = CipherProfile::scaled(cipher, mean_co_len.round() as usize);

    // Acquire cipher traces (single CO each, NOP preamble, random plaintexts)
    // and one long noise trace, with the countermeasure always on.
    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut cipher_traces: Vec<Trace> = Vec::with_capacity(cfg.n_cipher_traces);
    for _ in 0..cfg.n_cipher_traces {
        let pt = sim.trng_mut().next_block();
        let (trace, _ct) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        cipher_traces.push(trace);
    }
    let noise_ops = (profile.n_train * profile.noise_windows / 2).max(4_000);
    let noise_trace = sim.capture_noise_trace(noise_ops);

    let builder = LocatorBuilder::from_profile(&profile).seed(cfg.seed);
    let (locator, report) = builder.fit(&cipher_traces, &noise_trace);

    // Figure 3: confusion matrix on the held-out test split of the same dataset.
    let dataset = DatasetBuilder::new(profile.n_train)
        .with_limits(
            profile.cipher_start_windows,
            profile.cipher_rest_windows,
            profile.noise_windows,
        )
        .with_seed(cfg.seed)
        .build(&cipher_traces, &noise_trace);
    let split = dataset.split(SplitRatios::paper(), cfg.seed);
    let trainer = Trainer::new(profile.training);
    let confusion = trainer.confusion_matrix(locator.cnn(), &split.test);

    TrainedSetup { locator, profile, mean_co_len, report, confusion }
}

/// Simulates an evaluation scenario for `cipher` under the experiment's
/// random-delay setting.
pub fn simulate_scenario(
    cipher: CipherId,
    interleave_noise: bool,
    cfg: &ExperimentConfig,
) -> ScenarioResult {
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(cfg.rd_max), cfg.seed ^ 0xBEEF);
    let scenario = if interleave_noise {
        Scenario::interleaved(cipher, cfg.scenario_cos)
    } else {
        Scenario::consecutive(cipher, cfg.scenario_cos)
    };
    sim.run_scenario(&scenario)
}

/// Scores located starts against a scenario's ground truth. The tolerance is
/// half the mean CO length, matching the paper's notion of a hit (the CPA's
/// time aggregation absorbs the residual offset).
pub fn score_hits(located: &[usize], result: &ScenarioResult) -> HitReport {
    let tolerance = (result.mean_co_len() / 2.0).max(1.0) as usize;
    sca_locator::hit_rate(located, &result.co_starts(), tolerance)
}

/// Builds a matched-filter / SAD template for a cipher by averaging a few
/// CO acquisitions captured on an *unprotected* clone (the best case for the
/// baselines: the template itself is delay-free).
pub fn baseline_template(cipher: CipherId, seed: u64, n_refs: usize) -> Vec<f32> {
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(0), seed);
    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut refs: Vec<Vec<f32>> = Vec::new();
    let mut min_len = usize::MAX;
    for _ in 0..n_refs.max(1) {
        let pt = sim.trng_mut().next_block();
        let (trace, _) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        let start = trace.meta().co_starts[0];
        let end = trace.meta().co_ends[0];
        let co = trace.samples()[start..end].to_vec();
        min_len = min_len.min(co.len());
        refs.push(co);
    }
    for r in refs.iter_mut() {
        r.truncate(min_len);
    }
    sca_baselines::MatchedFilterLocator::template_from_references(&refs)
}

/// Formats a percentage for table output.
pub fn fmt_pct(value: f64) -> String {
    format!("{value:6.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ExperimentConfig::default();
        assert!(cfg.rd_max <= 4);
        assert!(cfg.scenario_cos > 0);
    }

    #[test]
    fn baseline_template_is_nonempty_and_bounded() {
        let t = baseline_template(CipherId::Simon128, 5, 3);
        assert!(t.len() > 100);
        assert!(t.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn simulate_scenario_produces_requested_cos() {
        let cfg = ExperimentConfig { scenario_cos: 3, ..Default::default() };
        let result = simulate_scenario(CipherId::Simon128, false, &cfg);
        assert_eq!(result.cos.len(), 3);
    }

    #[test]
    fn fmt_pct_formats() {
        assert_eq!(fmt_pct(100.0), "100.00%");
    }
}
