//! A minimal micro-benchmark harness (the offline environment has no
//! Criterion).
//!
//! Each benchmark warms up, then runs timed batches until both a minimum
//! number of iterations and a minimum wall-clock budget are reached, and
//! reports the mean per-iteration latency. Use [`std::hint::black_box`] on
//! inputs/outputs exactly as with Criterion.

use std::time::{Duration, Instant};

/// Measurement of one benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark case name (`group/case`).
    pub name: String,
    /// Total iterations measured.
    pub iterations: u64,
    /// Total measured wall-clock time.
    pub elapsed: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iterations.max(1) as f64
    }

    /// Iterations per second.
    pub fn per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.iterations as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// A named group of benchmark cases, printed as it runs.
pub struct BenchGroup {
    group: String,
    budget: Duration,
    min_iters: u64,
    results: Vec<Measurement>,
}

impl BenchGroup {
    /// Creates a group with a per-case time budget of 300 ms.
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            budget: Duration::from_millis(300),
            min_iters: 5,
            results: Vec::new(),
        }
    }

    /// Overrides the per-case wall-clock budget.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Times `f`, printing and recording the measurement.
    ///
    /// Iterations run in batches and the clock is read once per *batch*, not
    /// once per iteration, so nanosecond-scale cases are not skewed by timer
    /// overhead. The batch size is calibrated by doubling until one batch
    /// takes at least ~1 ms (calibration batches are discarded).
    pub fn bench<F: FnMut()>(&mut self, case: &str, mut f: F) -> &Measurement {
        const MIN_BATCH_TIME: Duration = Duration::from_millis(1);
        const MAX_BATCH: u64 = 1 << 24;
        // Warm-up: one untimed call.
        f();
        let mut batch = 1u64;
        let (mut iterations, mut elapsed) = loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            let batch_elapsed = t.elapsed();
            if batch_elapsed >= MIN_BATCH_TIME || batch >= MAX_BATCH {
                break (batch, batch_elapsed);
            }
            batch *= 2;
        };
        while iterations < self.min_iters || elapsed < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            elapsed += t.elapsed();
            iterations += batch;
        }
        let m = Measurement { name: format!("{}/{}", self.group, case), iterations, elapsed };
        println!("{:<48} {:>12.1} ns/iter  ({} iters)", m.name, m.ns_per_iter(), m.iterations);
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_math() {
        let m =
            Measurement { name: "g/c".into(), iterations: 10, elapsed: Duration::from_micros(10) };
        assert!((m.ns_per_iter() - 1000.0).abs() < 1.0);
        assert!((m.per_sec() - 1e6).abs() < 1e3);
    }

    #[test]
    fn bench_runs_at_least_min_iters() {
        let mut g = BenchGroup::new("test").budget(Duration::from_millis(1));
        let mut count = 0u64;
        let m = g.bench("count", || count += 1).clone();
        assert!(m.iterations >= 5);
        // Warm-up and the discarded calibration batches add extra calls on
        // top of the counted iterations.
        assert!(count > m.iterations);
    }
}
