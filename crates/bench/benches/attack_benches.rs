//! Micro-benchmarks of the CPA attack substrate: per-trace accumulator
//! update cost and correlation extraction.

use sca_attack::{aggregate_trace, CpaAttack, CpaConfig};
use sca_bench::microbench::BenchGroup;
use sca_trace::stats::CorrelationAccumulator;
use std::hint::black_box;

fn bench_accumulator_update() {
    let mut group = BenchGroup::new("cpa_accumulator");
    for &len in &[256usize, 1024, 4096] {
        let trace = vec![0.5f32; len];
        let mut acc = CorrelationAccumulator::new(len);
        group.bench(&format!("update_{len}"), || {
            acc.update(black_box(4.0), black_box(&trace));
        });
    }
}

fn bench_cpa_add_trace() {
    let mut group = BenchGroup::new("cpa_add_trace");
    // One aligned CO trace, 4 attacked key bytes, 256 guesses each.
    let trace = vec![0.5f32; 2048];
    let pt = [0x3Cu8; 16];
    let mut attack = CpaAttack::new(CpaConfig {
        num_key_bytes: 4,
        aggregation_window: 8,
        ..CpaConfig::default()
    });
    group.bench("bytes4_len2048_agg8", || {
        attack.add_trace(black_box(&trace), black_box(&pt));
    });
}

fn bench_aggregation() {
    let mut group = BenchGroup::new("time_aggregation");
    let trace = vec![0.25f32; 100_000];
    group.bench("agg_100k_w8", || {
        black_box(aggregate_trace(black_box(&trace), 8));
    });
}

fn main() {
    bench_accumulator_update();
    bench_cpa_add_trace();
    bench_aggregation();
}
