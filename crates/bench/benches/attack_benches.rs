//! Criterion benchmarks of the CPA attack substrate: per-trace accumulator
//! update cost and correlation extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use sca_attack::{aggregate_trace, CpaAttack, CpaConfig};
use sca_trace::stats::CorrelationAccumulator;

fn bench_accumulator_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpa_accumulator");
    group.sample_size(30);
    for &len in &[256usize, 1024, 4096] {
        let trace = vec![0.5f32; len];
        group.bench_function(format!("update_{len}"), |b| {
            let mut acc = CorrelationAccumulator::new(len);
            b.iter(|| acc.update(std::hint::black_box(4.0), std::hint::black_box(&trace)))
        });
    }
    group.finish();
}

fn bench_cpa_add_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpa_add_trace");
    group.sample_size(10);
    // One aligned CO trace, 4 attacked key bytes, 256 guesses each.
    let trace = vec![0.5f32; 2048];
    let pt = [0x3Cu8; 16];
    group.bench_function("bytes4_len2048_agg8", |b| {
        let mut attack = CpaAttack::new(CpaConfig {
            num_key_bytes: 4,
            aggregation_window: 8,
            ..CpaConfig::default()
        });
        b.iter(|| attack.add_trace(std::hint::black_box(&trace), std::hint::black_box(&pt)))
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("time_aggregation");
    group.sample_size(50);
    let trace = vec![0.25f32; 100_000];
    group.bench_function("agg_100k_w8", |b| {
        b.iter(|| aggregate_trace(std::hint::black_box(&trace), 8))
    });
    group.finish();
}

criterion_group!(benches, bench_accumulator_update, bench_cpa_add_trace, bench_aggregation);
criterion_main!(benches);
