//! Criterion benchmarks of the localisation pipeline building blocks:
//! trace simulation, segmentation DSP and the baseline locators.

use criterion::{criterion_group, criterion_main, Criterion};
use sca_baselines::{BaselineLocator, MatchedFilterLocator, SadTemplateLocator};
use sca_ciphers::CipherId;
use sca_locator::{SegmentationConfig, Segmenter};
use sca_trace::{dsp, Trace};
use soc_sim::{Scenario, SocSimulator, SocSimulatorConfig};

fn bench_trace_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_simulation");
    group.sample_size(10);
    for &(cipher, label) in &[(CipherId::Aes128, "aes_rd4"), (CipherId::Simon128, "simon_rd4")] {
        group.bench_function(label, |b| {
            let mut sim = SocSimulator::new(SocSimulatorConfig::rd(4), 1);
            let scenario = Scenario::consecutive(cipher, 2);
            b.iter(|| sim.run_scenario(std::hint::black_box(&scenario)))
        });
    }
    group.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmentation");
    group.sample_size(30);
    let swc: Vec<f32> = (0..20_000).map(|i| if i % 500 < 20 { 3.0 } else { -2.0 }).collect();
    let segmenter = Segmenter::new(SegmentationConfig::default());
    group.bench_function("swc_20k", |b| {
        b.iter(|| segmenter.segment(std::hint::black_box(&swc), 16))
    });
    group.bench_function("median_filter_20k_k9", |b| {
        b.iter(|| dsp::median_filter(std::hint::black_box(&swc), 9).unwrap())
    });
    group.finish();
}

fn bench_baseline_locators(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_locators");
    group.sample_size(10);
    let template: Vec<f32> = (0..512).map(|i| (i as f32 * 0.1).sin()).collect();
    let trace = Trace::from_samples((0..50_000).map(|i| (i as f32 * 0.01).cos()).collect());
    let matched = MatchedFilterLocator::new(template.clone(), 0.9, 256);
    let sad = SadTemplateLocator::new(template, 0.05, 256);
    group.bench_function("matched_filter_50k", |b| {
        b.iter(|| matched.locate(std::hint::black_box(&trace)))
    });
    group.bench_function("sad_template_50k", |b| b.iter(|| sad.locate(std::hint::black_box(&trace))));
    group.finish();
}

criterion_group!(benches, bench_trace_simulation, bench_segmentation, bench_baseline_locators);
criterion_main!(benches);
