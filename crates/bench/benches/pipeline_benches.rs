//! Micro-benchmarks of the localisation pipeline building blocks: trace
//! simulation, segmentation DSP and the baseline locators.

use sca_baselines::{BaselineLocator, MatchedFilterLocator, SadTemplateLocator};
use sca_bench::microbench::BenchGroup;
use sca_ciphers::CipherId;
use sca_locator::{SegmentationConfig, Segmenter};
use sca_trace::{dsp, Trace};
use soc_sim::{Scenario, SocSimulator, SocSimulatorConfig};
use std::hint::black_box;

fn bench_trace_simulation() {
    let mut group = BenchGroup::new("trace_simulation");
    for &(cipher, label) in &[(CipherId::Aes128, "aes_rd4"), (CipherId::Simon128, "simon_rd4")] {
        let mut sim = SocSimulator::new(SocSimulatorConfig::rd(4), 1);
        let scenario = Scenario::consecutive(cipher, 2);
        group.bench(label, || {
            black_box(sim.run_scenario(black_box(&scenario)));
        });
    }
}

fn bench_segmentation() {
    let mut group = BenchGroup::new("segmentation");
    let swc: Vec<f32> = (0..20_000).map(|i| if i % 500 < 20 { 3.0 } else { -2.0 }).collect();
    let segmenter = Segmenter::new(SegmentationConfig::default());
    group.bench("swc_20k", || {
        black_box(segmenter.segment(black_box(&swc), 16));
    });
    group.bench("median_filter_20k_k9", || {
        black_box(dsp::median_filter(black_box(&swc), 9).unwrap());
    });
}

fn bench_baseline_locators() {
    let mut group = BenchGroup::new("baseline_locators");
    let template: Vec<f32> = (0..512).map(|i| (i as f32 * 0.1).sin()).collect();
    let trace = Trace::from_samples((0..50_000).map(|i| (i as f32 * 0.01).cos()).collect());
    let matched = MatchedFilterLocator::new(template.clone(), 0.9, 256);
    let sad = SadTemplateLocator::new(template, 0.05, 256);
    group.bench("matched_filter_50k", || {
        black_box(matched.locate(black_box(&trace)));
    });
    group.bench("sad_template_50k", || {
        black_box(sad.locate(black_box(&trace)));
    });
}

fn main() {
    bench_trace_simulation();
    bench_segmentation();
    bench_baseline_locators();
}
