//! Micro-benchmarks of the neural-network substrate: the layers of the
//! paper's CNN and a full window inference (the unit cost that dominates the
//! sliding-window classification stage).

use sca_bench::microbench::BenchGroup;
use sca_locator::{CnnConfig, CoLocatorCnn};
use std::hint::black_box;
use tinynn::{Conv1d, Layer, Tensor, Workspace};

fn bench_conv1d_forward() {
    let mut group = BenchGroup::new("conv1d_forward");
    for &(channels, kernel, len) in &[(8usize, 9usize, 128usize), (16, 9, 256), (8, 33, 128)] {
        let conv = Conv1d::new(channels, channels, kernel, 1);
        let mut ws = Workspace::new();
        let input = Tensor::zeros(&[1, channels, len]);
        group.bench(&format!("c{channels}_k{kernel}_n{len}"), || {
            black_box(conv.forward(black_box(&input), &mut ws, false));
        });
    }
}

fn bench_cnn_window_inference() {
    let mut group = BenchGroup::new("cnn_window_inference");
    for &(n, batch) in &[(128usize, 1usize), (128, 16), (256, 16)] {
        let cnn = CoLocatorCnn::new(CnnConfig::scaled());
        let mut ws = Workspace::new();
        let windows = vec![vec![0.1f32; n]; batch];
        let input = CoLocatorCnn::stack_windows(&windows);
        group.bench(&format!("n{n}_batch{batch}"), || {
            black_box(cnn.class1_scores(black_box(&input), &mut ws));
        });
    }
}

fn bench_cnn_training_step() {
    let mut group = BenchGroup::new("cnn_training_step");
    let mut cnn = CoLocatorCnn::new(CnnConfig::scaled());
    let mut ws = Workspace::new();
    let windows = vec![vec![0.1f32; 128]; 16];
    let labels = [0usize, 1].repeat(8);
    let loss = tinynn::CrossEntropyLoss::new();
    let mut adam = tinynn::Adam::paper();
    group.bench("batch16_n128", || {
        let input = CoLocatorCnn::stack_windows(&windows);
        let logits = cnn.forward(&input, &mut ws, true);
        let (_, grad) = loss.loss_and_grad(&logits, &labels);
        cnn.zero_grad();
        cnn.backward(&grad, &mut ws);
        adam.step(&mut cnn.params_mut());
    });
}

fn main() {
    bench_conv1d_forward();
    bench_cnn_window_inference();
    bench_cnn_training_step();
}
