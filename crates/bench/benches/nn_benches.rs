//! Criterion micro-benchmarks of the neural-network substrate: the layers of
//! the paper's CNN and a full window inference (the unit cost that dominates
//! the sliding-window classification stage).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sca_locator::{CnnConfig, CoLocatorCnn};
use tinynn::{Conv1d, Layer, Tensor};

fn bench_conv1d_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv1d_forward");
    group.sample_size(20);
    for &(channels, kernel, len) in &[(8usize, 9usize, 128usize), (16, 9, 256), (8, 33, 128)] {
        let mut conv = Conv1d::new(channels, channels, kernel, 1);
        let input = Tensor::zeros(&[1, channels, len]);
        group.bench_function(format!("c{channels}_k{kernel}_n{len}"), |b| {
            b.iter(|| conv.forward(std::hint::black_box(&input), false))
        });
    }
    group.finish();
}

fn bench_cnn_window_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_window_inference");
    group.sample_size(15);
    for &(n, batch) in &[(128usize, 1usize), (128, 16), (256, 16)] {
        let mut cnn = CoLocatorCnn::new(CnnConfig::scaled());
        let windows = vec![vec![0.1f32; n]; batch];
        group.bench_function(format!("n{n}_batch{batch}"), |b| {
            b.iter_batched(
                || CoLocatorCnn::stack_windows(&windows),
                |input| cnn.class1_scores(std::hint::black_box(&input)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_cnn_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_training_step");
    group.sample_size(10);
    let mut cnn = CoLocatorCnn::new(CnnConfig::scaled());
    let windows = vec![vec![0.1f32; 128]; 16];
    let labels = vec![0usize, 1].repeat(8);
    let loss = tinynn::CrossEntropyLoss::new();
    let mut adam = tinynn::Adam::paper();
    group.bench_function("batch16_n128", |b| {
        b.iter(|| {
            let input = CoLocatorCnn::stack_windows(&windows);
            let logits = cnn.forward(&input, true);
            let (_, grad) = loss.loss_and_grad(&logits, &labels);
            cnn.zero_grad();
            cnn.backward(&grad);
            adam.step(&mut cnn.params_mut());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conv1d_forward, bench_cnn_window_inference, bench_cnn_training_step);
criterion_main!(benches);
