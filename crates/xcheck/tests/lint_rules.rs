//! Rule-by-rule regression tests against the known-bad fixture workspace
//! under `fixtures/badtree`, plus a self-test that the real repository is
//! clean and CLI-level checks of exit codes and output formats.

use std::path::{Path, PathBuf};
use std::process::Command;

use xcheck::rules::{self, Diagnostic};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/badtree")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn badtree_diags() -> Vec<Diagnostic> {
    rules::run_all(&fixture_root()).expect("fixture tree must scan")
}

fn diags_of_rule<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

fn locations(diags: &[&Diagnostic]) -> Vec<(String, usize)> {
    diags.iter().map(|d| (d.file.display().to_string(), d.line)).collect()
}

#[test]
fn unsafe_confined_flags_the_leak_and_spares_qsimd() {
    let diags = badtree_diags();
    let hits = diags_of_rule(&diags, "unsafe-confined");
    assert_eq!(locations(&hits), vec![("crates/alpha/src/lib.rs".to_string(), 8)]);
}

#[test]
fn safety_comment_flags_only_the_unjustified_site() {
    let diags = badtree_diags();
    let hits = diags_of_rule(&diags, "safety-comment");
    assert_eq!(locations(&hits), vec![("crates/qsimd/src/lib.rs".to_string(), 14)]);
}

#[test]
fn crate_attrs_flags_the_bare_crate_root_twice() {
    let diags = badtree_diags();
    let hits = diags_of_rule(&diags, "crate-attrs");
    assert_eq!(
        locations(&hits),
        vec![
            ("crates/noattrs/src/lib.rs".to_string(), 1),
            ("crates/noattrs/src/lib.rs".to_string(), 1)
        ]
    );
    assert!(hits[0].message.contains("forbid(unsafe_code)"));
    assert!(hits[1].message.contains("missing_docs"));
}

#[test]
fn service_lock_flags_unwrap_and_wrapped_expect() {
    let diags = badtree_diags();
    let hits = diags_of_rule(&diags, "service-lock");
    assert_eq!(
        locations(&hits),
        vec![
            ("crates/service/src/lib.rs".to_string(), 10),
            ("crates/service/src/lib.rs".to_string(), 16)
        ]
    );
}

#[test]
fn debug_escapes_flagged_in_lib_but_not_main_or_strings() {
    let diags = badtree_diags();
    let hits = diags_of_rule(&diags, "no-debug-escapes");
    assert_eq!(
        locations(&hits),
        vec![
            ("crates/alpha/src/lib.rs".to_string(), 15),
            ("crates/alpha/src/lib.rs".to_string(), 20),
            ("crates/alpha/src/lib.rs".to_string(), 25)
        ]
    );
}

#[test]
fn fault_plan_confined_flags_constructors_but_not_docs_or_strings() {
    let diags = badtree_diags();
    let hits = diags_of_rule(&diags, "fault-plan-confined");
    assert_eq!(
        locations(&hits),
        vec![
            ("crates/service/src/lib.rs".to_string(), 24),
            ("crates/service/src/lib.rs".to_string(), 25)
        ]
    );
    assert!(hits[0].message.contains("chaos tests"));
}

#[test]
fn bench_metrics_flags_near_misses_and_broken_baselines() {
    let diags = badtree_diags();
    let hits = diags_of_rule(&diags, "bench-metrics");
    assert_eq!(
        locations(&hits),
        vec![
            ("BENCH_bad.json".to_string(), 3),
            ("BENCH_bad.json".to_string(), 4),
            ("BENCH_bad.json".to_string(), 5),
            ("BENCH_broken.json".to_string(), 2)
        ]
    );
    assert!(hits[0].message.contains("latency"));
    assert!(hits[3].message.contains("flat JSON"));
}

#[test]
fn the_real_repository_is_clean() {
    let diags = rules::run_all(&repo_root()).expect("repo must scan");
    assert!(
        diags.is_empty(),
        "the repository violates its own invariants:\n{}",
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}

#[test]
fn cli_exit_codes_and_text_diagnostics() {
    let out = Command::new(env!("CARGO_BIN_EXE_xcheck"))
        .args(["lint", "--root"])
        .arg(fixture_root())
        .output()
        .expect("run xcheck");
    assert_eq!(out.status.code(), Some(1), "seeded violations must exit 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("crates/alpha/src/lib.rs:8: [unsafe-confined]"),
        "file:line diagnostic missing from:\n{stdout}"
    );

    let clean = Command::new(env!("CARGO_BIN_EXE_xcheck"))
        .args(["lint", "--root"])
        .arg(repo_root())
        .output()
        .expect("run xcheck");
    assert_eq!(clean.status.code(), Some(0), "the real tree must lint clean");

    let bad_args =
        Command::new(env!("CARGO_BIN_EXE_xcheck")).arg("frobnicate").output().expect("run xcheck");
    assert_eq!(bad_args.status.code(), Some(2), "usage errors are exit 2, not a lint verdict");
}

#[test]
fn cli_json_format_lists_every_diagnostic() {
    let out = Command::new(env!("CARGO_BIN_EXE_xcheck"))
        .args(["lint", "--format", "json", "--root"])
        .arg(fixture_root())
        .output()
        .expect("run xcheck");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let expected = badtree_diags().len();
    assert_eq!(stdout.matches("\"rule\":").count(), expected);
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.trim_end().ends_with(']'));
    assert!(stdout.contains("\"file\": \"crates/service/src/lib.rs\""));
}
