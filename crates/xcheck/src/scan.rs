//! A comment/string-aware scanner for Rust source.
//!
//! The lint rules need to ask questions like "does this line contain the
//! `unsafe` *keyword*" without being fooled by the word appearing inside a
//! doc comment, a string literal or an identifier
//! (`unsafe_op_in_unsafe_fn`). A full parser would be overkill — and the
//! workspace is dependency-free by policy — so this module implements the
//! minimal lexer that classifies every byte of a source file as *code*,
//! *comment* or *literal*:
//!
//! * line comments (`//`) and nested block comments (`/* /* */ */`);
//! * string literals with escapes, raw strings with any hash depth
//!   (`r#"…"#`), byte and byte-raw strings;
//! * character literals (including `'\''` and `'\u{…}'`) disambiguated
//!   from lifetimes (`'a`, `'_`) by lookahead.
//!
//! The output keeps the line structure: for every source line the scanner
//! yields the *code* text (comments and literal contents blanked out with
//! spaces, so columns survive) and the *comment* text separately. Rules can
//! then do trivial substring/token matching per line and still report exact
//! `file:line` locations.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// The line with comments and string/char-literal *contents* replaced by
    /// spaces (the delimiting quotes survive, their contents do not).
    pub code: String,
    /// The concatenated text of every comment on the line (without the
    /// `//`/`/*` markers' text removed — the raw comment characters).
    pub comment: String,
}

impl Line {
    /// Whether the line carries no code at all (blank, or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// Whether the line's code is exactly an attribute (`#[…]` / `#![…]`),
    /// possibly still open at the end of the line.
    pub fn is_attribute(&self) -> bool {
        let t = self.code.trim();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

/// A scanned source file: per-line code/comment split.
#[derive(Debug)]
pub struct Scanned {
    /// The classified lines, in file order (index 0 is line 1).
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth rides along.
    BlockComment(u32),
    /// Inside `"…"`; `true` while the next char is escaped.
    Str(bool),
    /// Inside `r##"…"##`-style raw string; the payload is the hash count.
    RawStr(u32),
    /// Inside `'…'`; `true` while the next char is escaped.
    CharLit(bool),
}

/// Splits source text into per-line code and comment parts (see the module
/// docs for the rules applied).
pub fn scan(source: &str) -> Scanned {
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; everything else carries over.
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str(false);
                    code.push('"');
                    i += 1;
                } else if c == 'r' && is_raw_string_start(&chars, i) {
                    let hashes = count_hashes(&chars, i + 1);
                    state = State::RawStr(hashes);
                    code.push('r');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    code.push('"');
                    i += 2 + hashes as usize;
                } else if c == 'b' && chars.get(i + 1) == Some(&'"') && !ident_before(&chars, i) {
                    state = State::Str(false);
                    code.push_str("b\"");
                    i += 2;
                } else if c == 'b'
                    && chars.get(i + 1) == Some(&'r')
                    && !ident_before(&chars, i)
                    && is_raw_string_start(&chars, i + 1)
                {
                    let hashes = count_hashes(&chars, i + 2);
                    state = State::RawStr(hashes);
                    code.push_str("br");
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    code.push('"');
                    i += 3 + hashes as usize;
                } else if c == '\'' {
                    match char_or_lifetime(&chars, i) {
                        Quote::CharLiteral => {
                            state = State::CharLit(false);
                            code.push('\'');
                            i += 1;
                        }
                        Quote::Lifetime => {
                            // Keep the tick as code; the identifier after it
                            // is ordinary code too.
                            code.push('\'');
                            i += 1;
                        }
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    comment.push_str("*/");
                    state = if depth > 1 { State::BlockComment(depth - 1) } else { State::Code };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                    code.push(' ');
                    i += 1;
                } else if c == '\\' {
                    state = State::Str(true);
                    code.push(' ');
                    i += 1;
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && hashes_follow(&chars, i + 1, hashes) {
                    state = State::Code;
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                    code.push(' ');
                    i += 1;
                } else if c == '\\' {
                    state = State::CharLit(true);
                    code.push(' ');
                    i += 1;
                } else if c == '\'' {
                    state = State::Code;
                    code.push('\'');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line { code, comment });
    }
    Scanned { lines }
}

/// `r"`, `r#"`, `r##"`, … at `i` (which holds the `r`), and the `r` is not
/// the tail of an identifier like `var"` can't happen — but `for"` could
/// lex `r` wrongly, so the previous char must not be an identifier char.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if ident_before(chars, i) {
        return false;
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn ident_before(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn hashes_follow(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

enum Quote {
    CharLiteral,
    Lifetime,
}

/// Disambiguates a `'` at `i`: `'x'` / `'\n'` / `'\u{1F600}'` are char
/// literals; `'a` followed by anything but a closing quote is a lifetime
/// (or a loop label), as is `'_`.
fn char_or_lifetime(chars: &[char], i: usize) -> Quote {
    match chars.get(i + 1) {
        // `'\…` is always a char literal (lifetimes cannot start with \).
        Some('\\') => Quote::CharLiteral,
        Some(&c) if c.is_alphanumeric() || c == '_' => {
            // `'c'` closes immediately → char literal; otherwise lifetime.
            if chars.get(i + 2) == Some(&'\'') {
                Quote::CharLiteral
            } else {
                Quote::Lifetime
            }
        }
        // `'('`, `' '`, `'''`… — a one-char literal of punctuation.
        Some(_) => Quote::CharLiteral,
        None => Quote::Lifetime,
    }
}

/// Finds `token` in `code` at identifier boundaries (neither neighbour is
/// `[A-Za-z0-9_]`), returning the byte column of the first hit.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The file's code with all whitespace removed, plus a map from each
/// retained character back to its 1-based source line — for matching
/// patterns that rustfmt may split across lines (`.lock()\n.unwrap()`).
pub struct FlatCode {
    /// Whitespace-free concatenation of all code text.
    pub text: String,
    /// `line_of[i]` is the 1-based line of `text`'s `i`-th char.
    pub line_of: Vec<usize>,
}

impl Scanned {
    /// Builds the whitespace-free code view (see [`FlatCode`]).
    pub fn flat_code(&self) -> FlatCode {
        let mut text = String::new();
        let mut line_of = Vec::new();
        for (idx, line) in self.lines.iter().enumerate() {
            for c in line.code.chars().filter(|c| !c.is_whitespace()) {
                text.push(c);
                line_of.push(idx + 1);
            }
        }
        FlatCode { text, line_of }
    }
}

impl FlatCode {
    /// All 1-based lines where `pattern` occurs (the line of the match's
    /// first character). `boundary` additionally requires the char before
    /// the match to not be an identifier char (for macro/path patterns).
    pub fn find_all(&self, pattern: &str, boundary: bool) -> Vec<usize> {
        let mut hits = Vec::new();
        let bytes = self.text.as_bytes();
        let mut from = 0;
        while let Some(pos) = self.text[from..].find(pattern) {
            let start = from + pos;
            if !boundary || start == 0 || !is_ident_byte(bytes[start - 1]) {
                hits.push(self.line_of[char_index_of_byte(&self.text, start)]);
            }
            from = start + 1;
        }
        hits
    }
}

/// Converts a byte offset into `s` to a char index (the scanner's map is
/// char-indexed; patterns and code are ASCII in practice, but comments in
/// this workspace are not).
fn char_index_of_byte(s: &str, byte: usize) -> usize {
    s.char_indices().take_while(|&(b, _)| b < byte).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan(src).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_not_code() {
        let lines = scan("let x = 1; // unsafe here\n// unsafe alone\n").lines;
        assert!(find_token(&lines[0].code, "unsafe").is_none());
        assert!(lines[0].comment.contains("unsafe here"));
        assert!(lines[1].is_code_blank());
        assert!(lines[1].comment.contains("unsafe alone"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let lines = code_of("a /* one /* two */ still comment */ b\nunsafe");
        assert!(find_token(&lines[0], "a").is_some());
        assert!(find_token(&lines[0], "b").is_some());
        assert!(find_token(&lines[0], "still").is_none());
        assert!(find_token(&lines[1], "unsafe").is_some());
    }

    #[test]
    fn multi_line_block_comments_blank_every_covered_line() {
        let lines = scan("/* unsafe\nstill unsafe\n*/ code").lines;
        assert!(lines[0].is_code_blank());
        assert!(lines[1].is_code_blank());
        assert!(find_token(&lines[2].code, "code").is_some());
        assert!(find_token(&lines[2].code, "unsafe").is_none());
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_survive() {
        let lines = code_of(r#"let s = "unsafe { dbg!() }"; let t = 1;"#);
        assert!(find_token(&lines[0], "unsafe").is_none());
        assert!(!lines[0].contains("dbg"));
        assert!(lines[0].contains('"'));
        assert!(find_token(&lines[0], "t").is_some());
    }

    #[test]
    fn escaped_quotes_do_not_close_strings() {
        let lines = code_of(r#"let s = "a\"unsafe\"b"; unsafe"#);
        assert_eq!(find_token(&lines[0], "unsafe"), lines[0].rfind("unsafe"));
    }

    #[test]
    fn raw_strings_with_hashes_ignore_embedded_quotes() {
        let src = "let s = r#\"quote \" unsafe \"#; unsafe";
        let lines = code_of(src);
        let hits: Vec<usize> = {
            let mut v = Vec::new();
            let mut from = 0;
            while let Some(p) = lines[0][from..].find("unsafe") {
                v.push(from + p);
                from += p + 1;
            }
            v
        };
        assert_eq!(hits.len(), 1, "only the code-level unsafe survives: {:?}", lines[0]);
    }

    #[test]
    fn byte_and_byte_raw_strings_are_literals() {
        let lines = code_of(r##"let a = b"unsafe"; let b = br#"unsafe"#; unsafe"##);
        let mut count = 0;
        let mut from = 0;
        while let Some(p) = lines[0][from..].find("unsafe") {
            count += 1;
            from += p + 1;
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn lifetimes_are_code_but_char_literals_are_blanked() {
        let lines = code_of("fn f<'a>(x: &'a str) { let c = 'u'; let q = '\\''; }");
        assert!(lines[0].contains("'a"));
        assert!(!lines[0].contains("'u'"));
        // The char literal's quotes survive with blanked contents.
        assert!(lines[0].contains("' '"));
    }

    #[test]
    fn char_escape_of_quote_does_not_end_the_literal_early() {
        let lines = code_of(r"let q = '\''; unsafe");
        assert!(find_token(&lines[0], "unsafe").is_some());
    }

    #[test]
    fn identifier_boundaries_reject_substrings() {
        assert!(find_token("unsafe_op_in_unsafe_fn", "unsafe").is_none());
        assert!(find_token("my_unsafe", "unsafe").is_none());
        assert!(find_token("unsafe {", "unsafe").is_some());
        assert!(find_token("(unsafe)", "unsafe").is_some());
    }

    #[test]
    fn flat_code_matches_patterns_across_line_breaks() {
        let scanned = scan("x.lock()\n    .unwrap();\n");
        let flat = scanned.flat_code();
        assert_eq!(flat.find_all(".lock().unwrap()", false), vec![1]);
    }

    #[test]
    fn flat_code_boundary_rejects_identifier_tails() {
        let scanned = scan("not_todo!(); todo!();\n");
        let flat = scanned.flat_code();
        assert_eq!(flat.find_all("todo!(", true), vec![1]);
        assert_eq!(flat.find_all("todo!(", false).len(), 2);
    }

    #[test]
    fn attributes_are_recognised() {
        let lines = scan("#![forbid(unsafe_code)]\n#[inline]\nfn f() {}\n").lines;
        assert!(lines[0].is_attribute());
        assert!(lines[1].is_attribute());
        assert!(!lines[2].is_attribute());
    }
}
