//! The repo invariants, as individually testable lint rules.
//!
//! Every rule takes the scanned workspace and returns `file:line`
//! [`Diagnostic`]s. The rules encode guarantees the rest of the workspace
//! documents in prose:
//!
//! | rule id           | invariant                                                          |
//! |-------------------|--------------------------------------------------------------------|
//! | `unsafe-confined` | the `unsafe` keyword appears only in `crates/qsimd`                |
//! | `safety-comment`  | every `unsafe` in qsimd has a `// SAFETY:` / `# Safety` comment    |
//! | `crate-attrs`     | crate roots forbid unsafe (qsimd: deny unsafe-op) + warn missing docs |
//! | `service-lock`    | no `.lock().unwrap()` / `.lock().expect(` in `crates/service`      |
//! | `no-debug-escapes`| no `todo!`/`dbg!`/`unimplemented!`/`process::exit` in library code |
//! | `fault-plan-confined` | library code never constructs a non-empty `FaultPlan`          |
//! | `bench-metrics`   | `BENCH_*.json` parse and metric keys match the guard's patterns    |

use std::fmt;
use std::path::{Path, PathBuf};

use crate::json;
use crate::scan::{self, Scanned};

/// One rule violation, anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule id (stable, kebab-case).
    pub rule: &'static str,
    /// File path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// A workspace member crate, discovered from the root manifest.
#[derive(Debug)]
pub struct Member {
    /// Member path relative to the workspace root (`"."` for the root
    /// package itself).
    pub rel: PathBuf,
    /// The scanned Rust files under the member's target directories,
    /// with paths relative to the workspace root.
    pub files: Vec<(PathBuf, Scanned)>,
}

impl Member {
    /// The member directory's final path component (`qsimd`, `service`, …);
    /// the root package is `"."`.
    fn dir_name(&self) -> &str {
        self.rel.file_name().and_then(|n| n.to_str()).unwrap_or(".")
    }
}

/// The scanned workspace every rule runs against.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Member crates, root package included.
    pub members: Vec<Member>,
}

/// A scan/IO failure (not a lint violation).
#[derive(Debug)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

/// Source subdirectories of a member that hold compiled Rust code.
const TARGET_DIRS: &[&str] = &["src", "tests", "examples", "benches"];

/// Discovers the workspace members from `<root>/Cargo.toml` and scans every
/// Rust file under their target directories.
pub fn load_workspace(root: &Path) -> Result<Workspace, LintError> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| LintError(format!("cannot read {}: {e}", manifest_path.display())))?;
    let mut rels = parse_members(&manifest);
    if manifest.contains("[package]") {
        rels.push(PathBuf::from("."));
    }
    if rels.is_empty() {
        return Err(LintError(format!(
            "no workspace members and no [package] in {}",
            manifest_path.display()
        )));
    }
    let mut members = Vec::new();
    for rel in rels {
        let mut files = Vec::new();
        for dir in TARGET_DIRS {
            let abs = root.join(&rel).join(dir);
            if abs.is_dir() {
                collect_rust_files(&abs, &mut files)
                    .map_err(|e| LintError(format!("walking {}: {e}", abs.display())))?;
            }
        }
        files.sort();
        let mut scanned = Vec::new();
        for file in files {
            let source = std::fs::read_to_string(&file)
                .map_err(|e| LintError(format!("cannot read {}: {e}", file.display())))?;
            let rel_file = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            scanned.push((rel_file, scan::scan(&source)));
        }
        members.push(Member { rel, files: scanned });
    }
    Ok(Workspace { root: root.to_path_buf(), members })
}

/// Extracts the quoted entries of the `members = [ … ]` array from a
/// workspace manifest (comment-tolerant, order-preserving, deduplicated).
fn parse_members(manifest: &str) -> Vec<PathBuf> {
    let mut rels: Vec<PathBuf> = Vec::new();
    let mut in_members = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("");
        if !in_members {
            if let Some(rest) = line.split_once("members").map(|(_, r)| r) {
                if rest.trim_start().starts_with('=') {
                    in_members = true;
                }
            }
        }
        if in_members {
            let mut rest = line;
            while let Some(open) = rest.find('"') {
                let Some(close) = rest[open + 1..].find('"') else { break };
                let entry = &rest[open + 1..open + 1 + close];
                if !entry.is_empty() && !rels.iter().any(|r| r == Path::new(entry)) {
                    rels.push(PathBuf::from(entry));
                }
                rest = &rest[open + 1 + close + 1..];
            }
            if line.contains(']') {
                break;
            }
        }
    }
    rels
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over the workspace at `root`, returning the combined,
/// location-sorted diagnostics (empty = clean tree).
pub fn run_all(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let ws = load_workspace(root)?;
    let mut diags = Vec::new();
    diags.extend(unsafe_confined(&ws));
    diags.extend(safety_comment(&ws));
    diags.extend(crate_attrs(&ws));
    diags.extend(service_lock(&ws));
    diags.extend(no_debug_escapes(&ws));
    diags.extend(fault_plan_confined(&ws));
    diags.extend(bench_metrics(&ws.root));
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(diags)
}

/// The one crate allowed to contain `unsafe` (by directory name, so the
/// fixture workspaces can mirror the layout).
const UNSAFE_CRATE: &str = "qsimd";

/// `unsafe-confined`: the `unsafe` keyword may appear only inside the
/// designated SIMD crate. Everything else carries `#![forbid(unsafe_code)]`
/// (checked separately by `crate-attrs`) — this rule catches the keyword
/// even in files the compiler attribute does not reach (tests, examples)
/// and reports the exact line.
pub fn unsafe_confined(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for member in &ws.members {
        if member.dir_name() == UNSAFE_CRATE {
            continue;
        }
        for (file, scanned) in &member.files {
            for (idx, line) in scanned.lines.iter().enumerate() {
                if scan::find_token(&line.code, "unsafe").is_some() {
                    diags.push(Diagnostic {
                        rule: "unsafe-confined",
                        file: file.clone(),
                        line: idx + 1,
                        message: format!(
                            "`unsafe` outside crates/{UNSAFE_CRATE} — the workspace confines \
                             unsafe code to the SIMD kernel crate"
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// How many lines above an `unsafe` token the justification search walks
/// before giving up (doc-comment `# Safety` sections sit above attributes
/// and multi-line signatures).
const SAFETY_SEARCH_CAP: usize = 40;

/// `safety-comment`: every `unsafe` keyword in the SIMD crate must be
/// justified by a comment stating the invariant it relies on — either a
/// `// SAFETY:` comment immediately above the statement (attribute lines
/// and the statement's own wrapped lines may intervene) or a `# Safety`
/// doc section on an `unsafe fn`. The search stops at the first line that
/// ends an *earlier* statement (contains `;`, `{` or `}`), so a comment
/// cannot justify more than the one statement below it.
pub fn safety_comment(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for member in &ws.members {
        if member.dir_name() != UNSAFE_CRATE {
            continue;
        }
        for (file, scanned) in &member.files {
            for (idx, line) in scanned.lines.iter().enumerate() {
                if scan::find_token(&line.code, "unsafe").is_none() {
                    continue;
                }
                if !has_safety_justification(scanned, idx) {
                    diags.push(Diagnostic {
                        rule: "safety-comment",
                        file: file.clone(),
                        line: idx + 1,
                        message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                                  section) stating the invariant it relies on"
                            .into(),
                    });
                }
            }
        }
    }
    diags
}

fn is_safety_text(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

fn has_safety_justification(scanned: &Scanned, idx: usize) -> bool {
    // A trailing comment on the unsafe line itself counts.
    if is_safety_text(&scanned.lines[idx].comment) {
        return true;
    }
    let mut walked = 0usize;
    for j in (0..idx).rev() {
        let line = &scanned.lines[j];
        walked += 1;
        if walked > SAFETY_SEARCH_CAP {
            return false;
        }
        if is_safety_text(&line.comment) {
            return true;
        }
        if line.is_code_blank() || line.is_attribute() {
            continue;
        }
        // A code line may only intervene while it is part of the same
        // (wrapped) statement; any statement/block terminator means the
        // search crossed into earlier code without finding a justification.
        if line.code.contains(';') || line.code.contains('{') || line.code.contains('}') {
            return false;
        }
    }
    false
}

/// `crate-attrs`: every member's crate root must carry
/// `#![forbid(unsafe_code)]` (the SIMD crate instead documents its
/// exemption with `#![deny(unsafe_op_in_unsafe_fn)]`) and
/// `#![warn(missing_docs)]` (or the stricter `deny`).
pub fn crate_attrs(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for member in &ws.members {
        let root_rel = if member.rel == Path::new(".") {
            PathBuf::from("src/lib.rs")
        } else {
            member.rel.join("src/lib.rs")
        };
        let Some((file, scanned)) = member.files.iter().find(|(f, _)| *f == root_rel) else {
            continue; // pure-binary member; nothing to forbid at a crate root
        };
        let has = |needle: &str| {
            scanned.lines.iter().any(|l| {
                let squashed: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
                squashed.contains(needle)
            })
        };
        let unsafe_attr_ok = if member.dir_name() == UNSAFE_CRATE {
            has("#![deny(unsafe_op_in_unsafe_fn)]")
        } else {
            has("#![forbid(unsafe_code)]")
        };
        if !unsafe_attr_ok {
            let wanted = if member.dir_name() == UNSAFE_CRATE {
                "#![deny(unsafe_op_in_unsafe_fn)]"
            } else {
                "#![forbid(unsafe_code)]"
            };
            diags.push(Diagnostic {
                rule: "crate-attrs",
                file: file.clone(),
                line: 1,
                message: format!("crate root is missing `{wanted}`"),
            });
        }
        if !has("#![warn(missing_docs)]") && !has("#![deny(missing_docs)]") {
            diags.push(Diagnostic {
                rule: "crate-attrs",
                file: file.clone(),
                line: 1,
                message: "crate root is missing `#![warn(missing_docs)]`".into(),
            });
        }
    }
    diags
}

/// `service-lock`: panicking on a poisoned mutex in the serving crate would
/// turn one contained worker panic into a service-wide cascade, so
/// `crates/service` must route every lock through its poison-tolerant
/// helpers — `.lock().unwrap()` / `.lock().expect(…)` are banned outright
/// (the helpers recover with `unwrap_or_else(PoisonError::into_inner)`).
pub fn service_lock(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for member in &ws.members {
        if member.dir_name() != "service" {
            continue;
        }
        for (file, scanned) in &member.files {
            if !file.starts_with(member.rel.join("src")) {
                continue; // tests may assert on locks however they like
            }
            let flat = scanned.flat_code();
            for pattern in [".lock().unwrap()", ".lock().expect("] {
                for line in flat.find_all(pattern, false) {
                    diags.push(Diagnostic {
                        rule: "service-lock",
                        file: file.clone(),
                        line,
                        message: format!(
                            "`{pattern}` panics on a poisoned mutex; use the crate's \
                             poison-tolerant lock helpers (`lock_poisoned` / `OrderedMutex`)"
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// `no-debug-escapes`: library code (every member's `src/`, excluding
/// `src/bin/` and `src/main.rs` binary roots) must not contain
/// `todo!`/`dbg!`/`unimplemented!` or `std::process::exit` — libraries
/// return typed errors; only binaries may choose an exit code.
pub fn no_debug_escapes(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for member in &ws.members {
        let src_root = if member.rel == Path::new(".") {
            PathBuf::from("src")
        } else {
            member.rel.join("src")
        };
        let bin_root = src_root.join("bin");
        for (file, scanned) in &member.files {
            if !file.starts_with(&src_root)
                || file.starts_with(&bin_root)
                || file.file_name().is_some_and(|n| n == "main.rs")
            {
                continue;
            }
            let flat = scanned.flat_code();
            for (pattern, what) in [
                ("todo!(", "`todo!` placeholder"),
                ("dbg!(", "`dbg!` debug print"),
                ("unimplemented!(", "`unimplemented!` placeholder"),
                ("process::exit(", "`std::process::exit` (libraries return errors)"),
            ] {
                for line in flat.find_all(pattern, true) {
                    diags.push(Diagnostic {
                        rule: "no-debug-escapes",
                        file: file.clone(),
                        line,
                        message: format!("{what} in library code"),
                    });
                }
            }
        }
    }
    diags
}

/// `fault-plan-confined`: a non-empty `FaultPlan` switches on fault
/// injection, which only chaos tests may do — library code (every member's
/// `src/`) must never construct one. The constructors
/// (`FaultPlan::seeded(` / `FaultPlan::builder(`) are confined to the
/// faults module itself (`src/faults.rs`, whose in-module tests exercise
/// them); threading a plan *through* configs is fine, the empty
/// `FaultPlan::default()` is fine, and tests/examples/benches may build
/// whatever schedules they need.
pub fn fault_plan_confined(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for member in &ws.members {
        let src_root = if member.rel == Path::new(".") {
            PathBuf::from("src")
        } else {
            member.rel.join("src")
        };
        let faults_module = src_root.join("faults.rs");
        for (file, scanned) in &member.files {
            if !file.starts_with(&src_root) || *file == faults_module {
                continue;
            }
            let flat = scanned.flat_code();
            for pattern in ["FaultPlan::seeded(", "FaultPlan::builder("] {
                for line in flat.find_all(pattern, true) {
                    diags.push(Diagnostic {
                        rule: "fault-plan-confined",
                        file: file.clone(),
                        line,
                        message: format!(
                            "`{pattern}…)` builds a non-empty fault plan in library code; \
                             fault injection belongs to chaos tests (the empty \
                             `FaultPlan::default()` is fine)"
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// `bench-metrics`: the committed `BENCH_*.json` baselines must parse as
/// flat JSON objects, and metric-looking keys must match the exact patterns
/// `scripts/bench_guard.sh` guards — a latency published as `*_latency_us`
/// or a malformed `windows_per_sec`/`speedup` key would silently escape the
/// regression guard while *looking* guarded.
pub fn bench_metrics(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut baselines: Vec<PathBuf> = match std::fs::read_dir(root) {
        Ok(dir) => dir
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            return vec![Diagnostic {
                rule: "bench-metrics",
                file: PathBuf::from("."),
                line: 1,
                message: format!("cannot list workspace root: {e}"),
            }];
        }
    };
    baselines.sort();
    for path in baselines {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                diags.push(Diagnostic {
                    rule: "bench-metrics",
                    file: rel,
                    line: 1,
                    message: format!("cannot read baseline: {e}"),
                });
                continue;
            }
        };
        let fields = match json::parse_flat_object(&text) {
            Ok(fields) => fields,
            Err(e) => {
                diags.push(Diagnostic {
                    rule: "bench-metrics",
                    file: rel,
                    line: e.line,
                    message: format!("baseline is not a flat JSON object: {}", e.message),
                });
                continue;
            }
        };
        for field in &fields {
            if let Some(message) = check_metric_key(field) {
                diags.push(Diagnostic {
                    rule: "bench-metrics",
                    file: rel.clone(),
                    line: field.line,
                    message,
                });
            }
        }
    }
    diags
}

fn is_metric_word(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// `Some(problem)` when a baseline key is a near-miss of the guard's
/// metric patterns, or a guarded metric whose value is not a number.
fn check_metric_key(field: &json::Field) -> Option<String> {
    let key = field.key.as_str();
    let guarded = (key.starts_with("windows_per_sec_") && is_metric_word(key))
        || (key.starts_with("speedup_") && is_metric_word(key))
        || (key.ends_with("_latency_ms") && is_metric_word(key));
    if guarded {
        if !matches!(field.value, json::Value::Number(_)) {
            return Some(format!("guarded metric {key:?} must have a numeric value"));
        }
        return None;
    }
    if key.contains("latency") {
        return Some(format!(
            "{key:?} looks like a latency metric but does not match `*_latency_ms`; \
             express it in ms so scripts/bench_guard.sh guards it"
        ));
    }
    if key.starts_with("windows_per_sec") || key == "speedup" || key.starts_with("speedup_") {
        return Some(format!(
            "{key:?} is a near-miss of the guarded `windows_per_sec_*`/`speedup_*` patterns; \
             rename it to match (or away) so scripts/bench_guard.sh sees it"
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_parsing_reads_quoted_entries_and_stops_at_bracket() {
        let manifest = r#"
[workspace]
members = [
    "crates/a", # trailing comment
    "crates/b", "crates/c",
]
exclude = ["crates/zzz"]
"#;
        let members = parse_members(manifest);
        assert_eq!(
            members,
            vec![PathBuf::from("crates/a"), PathBuf::from("crates/b"), PathBuf::from("crates/c")]
        );
    }

    #[test]
    fn member_parsing_dedups_default_members_style_lists() {
        let manifest = "members = [\"a\", \"a\", \"b\"]";
        assert_eq!(parse_members(manifest), vec![PathBuf::from("a"), PathBuf::from("b")]);
    }

    #[test]
    fn metric_key_near_misses_are_flagged() {
        let field =
            |key: &str, value: json::Value| json::Field { key: key.to_string(), value, line: 1 };
        let num = || json::Value::Number(1.0);
        assert!(check_metric_key(&field("p50_latency_ms", num())).is_none());
        assert!(check_metric_key(&field("windows_per_sec_i8", num())).is_none());
        assert!(check_metric_key(&field("speedup_i8_vs_f32", num())).is_none());
        assert!(check_metric_key(&field("traces_per_sec_looped", num())).is_none());
        assert!(check_metric_key(&field("model_save_ms", num())).is_none());
        assert!(check_metric_key(&field("forward_batch1_latency_us", num())).is_some());
        assert!(check_metric_key(&field("windows_per_sec", num())).is_some());
        assert!(check_metric_key(&field("speedup", num())).is_some());
        assert!(
            check_metric_key(&field("p50_latency_ms", json::Value::String("x".into()))).is_some()
        );
    }
}
