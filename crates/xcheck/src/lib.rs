//! `xcheck` — the workspace's invariant linter.
//!
//! The serving stack carries guarantees that ordinary tests cannot see: the
//! scheduler's lock order, panic containment via poison-tolerant locks, the
//! confinement of `unsafe` to the SIMD kernel crate, and bench baselines
//! whose keys must match what `scripts/bench_guard.sh` actually guards.
//! This crate makes those prose invariants machine-checkable:
//!
//! ```text
//! cargo run -p xcheck -- lint              # human-readable file:line diagnostics
//! cargo run -p xcheck -- lint --format json
//! ```
//!
//! The scanner ([`scan`]) is a comment/string-aware lexer — not a parser —
//! so the whole crate stays std-only, consistent with the repo's offline
//! shim policy. The rules ([`rules`]) are individually testable and run
//! against fixture workspaces under `fixtures/` in `cargo test -p xcheck`.
//!
//! Exit codes of the `lint` subcommand: `0` clean, `1` violations found,
//! `2` the lint itself failed (unreadable tree, bad arguments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod rules;
pub mod scan;

use rules::Diagnostic;

/// Renders diagnostics as a JSON array for `--format json` — one object per
/// violation with `rule`, `file`, `line` and `message` fields.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json::escape(d.rule),
            json::escape(&d.file.display().to_string()),
            d.line,
            json::escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn json_output_is_parseable_and_escaped() {
        let diags = vec![Diagnostic {
            rule: "service-lock",
            file: PathBuf::from("crates/service/src/lib.rs"),
            line: 7,
            message: "`.lock().unwrap()` says \"panic\"".into(),
        }];
        let text = diagnostics_to_json(&diags);
        assert!(text.contains("\"line\": 7"));
        assert!(text.contains("\\\"panic\\\""));
        assert_eq!(diagnostics_to_json(&[]), "[]\n");
    }
}
