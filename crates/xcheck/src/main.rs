//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p xcheck -- lint [--root <dir>] [--format json|text]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: xcheck lint [--root <dir>] [--format json|text]\n\
     \n\
     Lints the workspace at <dir> (default: this repository) against the\n\
     repo invariants: unsafe confinement, SAFETY comments, crate-root\n\
     attributes, service lock discipline, debug escapes and bench-baseline\n\
     metric hygiene. Exit codes: 0 clean, 1 violations, 2 lint failure."
}

struct Args {
    root: PathBuf,
    json: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    match it.next().map(String::as_str) {
        Some("lint") => {}
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
        None => return Err("missing subcommand".into()),
    }
    // The manifest dir of this crate is <root>/crates/xcheck; default to the
    // workspace that contains it so `cargo run -p xcheck -- lint` needs no
    // arguments from anywhere inside the repo.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut json = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a directory".to_string())?);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return Err("--format needs `json` or `text`".into()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args { root, json })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("xcheck: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let root = match args.root.canonicalize() {
        Ok(root) => root,
        Err(e) => {
            eprintln!("xcheck: cannot resolve root {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    match xcheck::rules::run_all(&root) {
        Ok(diags) => {
            if args.json {
                print!("{}", xcheck::diagnostics_to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if diags.is_empty() {
                    eprintln!("xcheck: clean ({} ok)", root.display());
                } else {
                    eprintln!("xcheck: {} violation(s)", diags.len());
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xcheck: {e}");
            ExitCode::from(2)
        }
    }
}
