//! A minimal JSON reader for the flat `BENCH_*.json` baseline format, plus
//! the escaping used by the linter's `--format json` output.
//!
//! The benches emit a single object of scalar fields; accepting exactly that
//! shape (and nothing more) is itself part of the lint — a baseline that
//! needs arrays or nesting would also be invisible to
//! `scripts/bench_guard.sh`'s line-oriented metric extraction.

/// A scalar JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON number (parsed as f64, which covers every metric emitted).
    Number(f64),
    /// A JSON string (unescaped).
    String(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// One `"key": value` field of the object, with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// The field's key.
    pub key: String,
    /// The field's scalar value.
    pub value: Value,
    /// 1-based line of the key in the source text.
    pub line: usize,
}

/// A parse failure with its location.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn line(&self) -> usize {
        1 + self.bytes[..self.pos].iter().filter(|&&b| b == b'\n').count()
    }

    fn fail(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: message.into() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected {:?}", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.fail("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.fail(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unvalidated-as-JSON but validated-as-UTF-8 by
                    // the &str the caller handed in).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'{') | Some(b'[') => {
                Err(self.fail("nested objects/arrays are not part of the flat baseline format"))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b)) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<f64>()
                    .map(Value::Number)
                    .map_err(|_| self.fail(format!("bad number {text:?}")))
            }
            _ => Err(self.fail("expected a value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(format!("expected `{word}`")))
        }
    }
}

/// Parses a single flat JSON object (`{"k": scalar, …}`), rejecting
/// nesting, duplicate keys and trailing content.
pub fn parse_flat_object(text: &str) -> Result<Vec<Field>, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{').map_err(|e| ParseError { message: "expected `{`".into(), ..e })?;
    let mut fields: Vec<Field> = Vec::new();
    loop {
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
            break;
        }
        let line = p.line();
        let key = p.string()?;
        if fields.iter().any(|f| f.key == key) {
            return Err(ParseError { line, message: format!("duplicate key {key:?}") });
        }
        p.skip_ws();
        p.expect(b':')?;
        let value = p.value()?;
        fields.push(Field { key, value, line });
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {}
            _ => return Err(p.fail("expected `,` or `}`")),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing content after the object"));
    }
    Ok(fields)
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_baseline_shape() {
        let fields = parse_flat_object(
            "{\n  \"bench\": \"x\",\n  \"n\": 3,\n  \"f\": -1.5e2,\n  \"ok\": true\n}\n",
        )
        .unwrap();
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0].key, "bench");
        assert_eq!(fields[0].line, 2);
        assert_eq!(fields[1].value, Value::Number(3.0));
        assert_eq!(fields[2].value, Value::Number(-150.0));
        assert_eq!(fields[3].value, Value::Bool(true));
    }

    #[test]
    fn rejects_nesting_duplicates_and_trailing_garbage() {
        assert!(parse_flat_object("{\"a\": {\"b\": 1}}").is_err());
        assert!(parse_flat_object("{\"a\": [1]}").is_err());
        assert!(parse_flat_object("{\"a\": 1, \"a\": 2}").is_err());
        assert!(parse_flat_object("{\"a\": 1} extra").is_err());
        assert!(parse_flat_object("{\"a\": }").is_err());
        let err = parse_flat_object("{\n \"a\": 1,\n \"b\": oops\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let fields = parse_flat_object(r#"{"k": "a\"b\\cA\n"}"#).unwrap();
        assert_eq!(fields[0].value, Value::String("a\"b\\cA\n".into()));
        assert_eq!(escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }
}
