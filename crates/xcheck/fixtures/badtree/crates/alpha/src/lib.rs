#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Fixture crate: `unsafe` leakage and debug escapes outside the SIMD crate.

/// Doubles through a raw pointer — forbidden outside qsimd.
pub fn double(x: &mut i32) {
    unsafe {
        *(x as *mut i32) *= 2;
    }
}

/// Not written yet.
pub fn later() {
    todo!("later")
}

/// Peeks at a value. The string mentions "dbg!(x)" harmlessly.
pub fn peek(v: i32) -> i32 {
    dbg!(v)
}

/// Gives up instead of returning an error.
pub fn bail() {
    std::process::exit(3);
}
