//! Fixture binary root: `process::exit` is fine here — only library code
//! is barred from choosing an exit code.

fn main() {
    let s = "todo!( in a string literal is not a violation either";
    std::process::exit(s.len() as i32 % 2);
}
