#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Fixture service crate: panicking lock discipline.

use std::sync::Mutex;

/// Reads the counter, panicking on poison (the violation).
pub fn read(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

/// Reads it with a message — same problem, split across lines the way
/// rustfmt would.
pub fn read_expect(m: &Mutex<u32>) -> u32 {
    *m.lock()
        .expect("counter poisoned")
}

/// Builds non-empty fault plans in library code (two violations); the
/// mentions of `FaultPlan::seeded(…)` in this doc comment, and in the
/// string and comment below, must not count.
pub fn chaos_in_library() {
    let _seeded = FaultPlan::seeded(1, 2, 3, 0);
    let _built = FaultPlan::builder()
        .build();
    let _doc_only = "FaultPlan::seeded(9, 9, 9, 9)"; // FaultPlan::builder()
}
