#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Fixture service crate: panicking lock discipline.

use std::sync::Mutex;

/// Reads the counter, panicking on poison (the violation).
pub fn read(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

/// Reads it with a message — same problem, split across lines the way
/// rustfmt would.
pub fn read_expect(m: &Mutex<u32>) -> u32 {
    *m.lock()
        .expect("counter poisoned")
}
