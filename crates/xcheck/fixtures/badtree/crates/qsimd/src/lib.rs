#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

//! Fixture SIMD crate: one justified `unsafe`, one bare.

/// Reads the first element.
pub fn first(xs: &[i32]) -> i32 {
    // SAFETY: fixture invariant — callers pass a non-empty slice.
    unsafe { *xs.as_ptr() }
}

/// Reads the second element without stating why that is in bounds.
pub fn second(xs: &[i32]) -> i32 {
    unsafe { *xs.as_ptr().add(1) }
}
