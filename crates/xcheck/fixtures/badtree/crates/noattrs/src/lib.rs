//! Fixture crate whose root is missing both mandatory attributes.

/// Adds one.
pub fn incr(x: u32) -> u32 {
    x + 1
}
