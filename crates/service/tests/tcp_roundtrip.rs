//! End-to-end tests of the TCP frame protocol: buffered and streamed
//! ingest parity with the engine, request pipelining on one connection,
//! concurrent clients, and the hostile-input edges (truncated payloads,
//! bad magic, oversized declarations) — all answered or refused in-protocol
//! without wedging the server.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use locsvc::net::{self, Client, FrameError, ServerConfig, Status, FLAG_STREAMED};
use locsvc::{LocatorService, ServiceConfig};
use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;

fn tiny_engine(seed: u64) -> LocatorEngine {
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed }),
        SlidingWindowClassifier::new(16, 4).with_batch_size(8),
        Segmenter::default(),
    )
}

fn noisy_trace(len: usize, seed: u64) -> Trace {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Trace::from_samples(
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                (i as f32 * 0.07).sin() + 0.6 * noise
            })
            .collect(),
    )
}

fn start_server(cfg: ServerConfig) -> (Arc<LocatorService>, net::ServerHandle) {
    let service = Arc::new(LocatorService::start(
        vec![tiny_engine(13), tiny_engine(13).quantize()],
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = net::serve(Arc::clone(&service), listener, cfg).unwrap();
    (service, handle)
}

fn expected_starts(service: &LocatorService, model: &str, trace: &Trace) -> Vec<u64> {
    service.engine(model).unwrap().locate(trace).into_iter().map(|s| s as u64).collect()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("locsvc_tcp_{name}_{}", std::process::id()))
}

#[test]
fn one_connection_pipelines_buffered_and_streamed_requests() {
    let (service, server) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    for (round, &(model, len, streamed)) in [
        ("model-0", 500usize, false),
        ("model-1", 333, true),
        ("model-0", 700, true),
        ("model-1", 61, false),
    ]
    .iter()
    .enumerate()
    {
        let trace = noisy_trace(len, round as u64);
        let flags = if streamed { FLAG_STREAMED } else { 0 };
        let response = client.locate(model, flags, 0, trace.samples()).unwrap();
        assert_eq!(response.status, Status::Ok, "round {round}");
        assert_eq!(
            response.starts,
            expected_starts(&service, model, &trace),
            "round {round} (model {model}, streamed {streamed})"
        );
    }
    server.stop();
}

#[test]
fn concurrent_clients_get_their_own_bit_identical_answers() {
    let (service, server) = start_server(ServerConfig::default());
    let addr = server.addr();
    let expected: Vec<Vec<u64>> =
        (0..4u64).map(|i| expected_starts(&service, "model-0", &noisy_trace(400, i))).collect();
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..2usize {
                    let i = (t + round) % 4;
                    let flags = if (t + round) % 2 == 0 { 0 } else { FLAG_STREAMED };
                    let response = client
                        .locate("model-0", flags, 0, noisy_trace(400, i as u64).samples())
                        .unwrap();
                    assert_eq!(response.status, Status::Ok);
                    assert_eq!(&response.starts, &expected[i], "client {t} round {round}");
                }
            });
        }
    });
    server.stop();
}

#[test]
fn unknown_model_is_answered_in_protocol() {
    let (_service, server) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    for flags in [0, FLAG_STREAMED] {
        let response = client.locate("model-9", flags, 0, noisy_trace(100, 1).samples()).unwrap();
        assert_eq!(response.status, Status::UnknownModel);
        assert!(response.starts.is_empty());
    }
    server.stop();
}

#[test]
fn truncated_streamed_payload_gets_source_failed_then_close() {
    let (_service, server) = start_server(ServerConfig::default());
    let stream = TcpStream::connect(server.addr()).unwrap();
    // Declare 128 samples but deliver only 32, then half-close: the service
    // hits EOF mid-trace and must answer with the typed failure status.
    let mut frame = Vec::new();
    net::write_request(&mut frame, "model-0", FLAG_STREAMED, 0, noisy_trace(128, 1).samples())
        .unwrap();
    let cut = 20 + "model-0".len() + 32 * 4;
    (&stream).write_all(&frame[..cut]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let response = net::read_response(&stream, 1 << 20).unwrap();
    assert_eq!(response.status, Status::SourceFailed);
    assert!(response.starts.is_empty());
    // The server closes the connection after a mid-stream failure.
    assert_eq!(net::read_response(&stream, 1 << 20).unwrap_err(), FrameError::Truncated);
    server.stop();
}

#[test]
fn bad_magic_closes_the_connection_without_wedging_the_server() {
    let (service, server) = start_server(ServerConfig::default());
    let stream = TcpStream::connect(server.addr()).unwrap();
    (&stream).write_all(b"GARBAGE.............").unwrap();
    // The server answers the out-of-sync frame with one typed refusal, then
    // closes.
    let refusal = net::read_response(&stream, 16).unwrap();
    assert_eq!(refusal.status, Status::Invalid);
    // The teardown surfaces as clean EOF or a reset depending on how much
    // of the garbage the server had consumed; either way it is an error.
    let err = net::read_response(&stream, 16).unwrap_err();
    assert!(matches!(err, FrameError::Truncated | FrameError::Io(_)), "{err:?}");
    // A well-formed client still gets served afterwards.
    let mut client = Client::connect(server.addr()).unwrap();
    let trace = noisy_trace(300, 2);
    let response = client.locate("model-0", 0, 0, trace.samples()).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert_eq!(response.starts, expected_starts(&service, "model-0", &trace));
    server.stop();
}

#[test]
fn oversized_declared_sample_count_is_refused_before_allocation() {
    let (_service, server) =
        start_server(ServerConfig { max_frame_samples: 256, ..ServerConfig::default() });
    let stream = TcpStream::connect(server.addr()).unwrap();
    // Header declares 2^40 samples (4 TiB): the server must drop the
    // connection at the header, long before any buffer is sized.
    let mut header = Vec::new();
    net::write_request(&mut header, "model-0", 0, 0, &[]).unwrap();
    header[12..20].copy_from_slice(&(1u64 << 40).to_le_bytes());
    (&stream).write_all(&header).unwrap();
    let err = net::read_response(&stream, 16).unwrap_err();
    assert!(matches!(err, FrameError::Truncated | FrameError::Io(_)), "{err:?}");
    server.stop();
}

#[test]
fn stop_is_idempotent_and_frees_the_port_for_the_service_to_keep_running() {
    let (service, server) = start_server(ServerConfig::default());
    server.stop();
    // The in-process service survives its TCP front-end.
    let model = "model-0";
    let trace = noisy_trace(200, 1);
    let expected = service.engine(model).unwrap().locate(&trace);
    let got = service
        .submit_trace(model, trace, locsvc::RequestOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(got.starts, expected);
    service.shutdown();
}

#[test]
fn admin_frames_are_denied_unless_enabled() {
    let (_service, server) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let response = client.swap("model-0", "/tmp/never-read").unwrap();
    assert_eq!(response.status, Status::AdminDenied);
    let response = client.evict("model-0").unwrap();
    assert_eq!(response.status, Status::AdminDenied);
    server.stop();
}

#[test]
fn admin_frames_swap_and_evict_models_over_the_wire() {
    let gen1 = temp_path("swap_gen1");
    let gen2 = temp_path("swap_gen2");
    tiny_engine(41).save(&gen1).unwrap();
    tiny_engine(42).save(&gen2).unwrap();

    let service = Arc::new(LocatorService::start(
        vec![tiny_engine(13)],
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
    ));
    service.registry().register("wire-model", &gen1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = net::serve(
        Arc::clone(&service),
        listener,
        ServerConfig { allow_admin: true, ..ServerConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let trace = noisy_trace(400, 9);

    // Generation 1 serves first (lazily loaded by the locate itself).
    let response = client.locate("wire-model", 0, 0, trace.samples()).unwrap();
    assert_eq!(response.status, Status::Ok);
    let expected_gen1: Vec<u64> =
        tiny_engine(41).locate(&trace).into_iter().map(|s| s as u64).collect();
    assert_eq!(response.starts, expected_gen1);

    // Swap installs generation 2 and reports it; answers flip over.
    let response = client.swap("wire-model", gen2.to_str().unwrap()).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert_eq!(response.starts, vec![2]);
    let response = client.locate("wire-model", 0, 0, trace.samples()).unwrap();
    assert_eq!(response.status, Status::Ok);
    let expected_gen2: Vec<u64> =
        tiny_engine(42).locate(&trace).into_iter().map(|s| s as u64).collect();
    assert_eq!(response.starts, expected_gen2);

    // Evict drops the weights; the next locate transparently reloads the
    // same generation and answers bit-identically.
    let response = client.evict("wire-model").unwrap();
    assert_eq!(response.status, Status::Ok);
    let response = client.locate("wire-model", 0, 0, trace.samples()).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert_eq!(response.starts, expected_gen2);

    // Typed admin failures: unknown names, pinned models, unreadable files.
    let response = client.swap("missing", gen2.to_str().unwrap()).unwrap();
    assert_eq!(response.status, Status::UnknownModel);
    let response = client.evict("model-0").unwrap();
    assert_eq!(response.status, Status::Invalid, "pinned models are not evictable");
    let response = client.swap("wire-model", "/no/such/model/file").unwrap();
    assert_eq!(response.status, Status::ModelUnavailable);
    // A failed swap leaves the old generation serving.
    let response = client.locate("wire-model", 0, 0, trace.samples()).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert_eq!(response.starts, expected_gen2);

    server.stop();
    std::fs::remove_file(&gen1).ok();
    std::fs::remove_file(&gen2).ok();
}
