//! Chaos suite: seeded fault schedules driven through live traffic.
//!
//! Each scenario threads one shared [`FaultPlan`] through the service, the
//! registry and (for the TCP tests) the server, then asserts the failure-
//! domain invariants the stack guarantees:
//!
//! 1. **No lost tickets.** Every admitted request resolves — result or typed
//!    error — within a bounded wait; nothing hangs or vanishes.
//! 2. **Typed errors.** Every injected fault surfaces as exactly one typed
//!    error ([`ServiceError::Source`], [`ServiceError::WorkerFailed`],
//!    [`Rejected::ModelUnavailable`], …), never a panic across the API or a
//!    silent wrong answer.
//! 3. **Bit parity.** Every request a fault did *not* touch demuxes
//!    bit-identical to [`LocatorEngine::locate`] on the same trace.
//! 4. **Accounted metrics.** The plan's per-site fired counters reconcile
//!    exactly against the service's failure metrics — every injected fault
//!    is visible in [`locsvc::MetricsSnapshot`].
//!
//! Determinism: schedules derive from the seed alone, so each seed replays
//! the same (site, operation, kind) triples; thread interleaving only decides
//! *which* request an operation lands on, which the invariants are immune to.

use std::io::{Cursor, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use locsvc::net::{self, Client, ClientConfig, ServerConfig, Status, FLAG_STREAMED};
use locsvc::{
    FaultKind, FaultPlan, FaultSite, LocatorService, ModelRegistry, RegistryConfig, Rejected,
    RequestOptions, ServiceConfig, ServiceError,
};
use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;

/// Bounded stand-in for "forever": long enough for any CI machine, short
/// enough that a genuinely lost ticket fails the suite instead of wedging it.
const GENEROUS: Duration = Duration::from_secs(30);

fn tiny_engine(seed: u64) -> LocatorEngine {
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed }),
        SlidingWindowClassifier::new(16, 4).with_batch_size(8),
        Segmenter::default(),
    )
}

fn noisy_trace(len: usize, seed: u64) -> Trace {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Trace::from_samples(
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                (i as f32 * 0.07).sin() + 0.6 * noise
            })
            .collect(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("locsvc_chaos_{name}_{}", std::process::id()))
}

fn encode(samples: &[f32]) -> Vec<u8> {
    samples.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// The kinds that actually fired at `site`: operation indices advance
/// sequentially from 0, so exactly the scheduled entries below the final
/// operation count have fired.
fn fired_kinds(plan: &FaultPlan, site: FaultSite) -> Vec<FaultKind> {
    let ops = plan.ops(site);
    plan.schedule(site).into_iter().filter(|(op, _)| *op < ops).map(|(_, kind)| kind).collect()
}

// ---------------------------------------------------------------------------
// Seeded in-process chaos
// ---------------------------------------------------------------------------

/// One full chaos run per seed; the invariants hold under every schedule.
#[test]
fn seeded_chaos_holds_the_invariants_across_seeds() {
    for seed in [11u64, 22, 33] {
        run_seeded_scenario(seed);
    }
}

fn run_seeded_scenario(seed: u64) {
    // stall_ms = 0 keeps the schedule fail-fast, so every fired fault maps
    // to exactly one typed error and the reconciliation below is exact.
    let plan = FaultPlan::seeded(seed, 3, 12, 0);
    let path = temp_path(&format!("seeded_{seed}"));
    let engine = tiny_engine(31);
    engine.save(&path).unwrap();

    // The reference is loaded outside the faulted registry.
    let reference = LocatorEngine::load(&path).unwrap();
    // 80 samples / window 16 / stride 4 → 17 windows; with `tile_windows`
    // at exactly 17 every request is its own scoring batch, so Score
    // faults map 1:1 onto `WorkerFailed` requests.
    let trace = noisy_trace(80, 9);
    let expected = reference.locate(&trace);
    let bytes = encode(trace.samples());

    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        // Quarantine has its own scenario below; here it would only blur
        // the 1:1 map from `ModelLoad` faults to typed rejections.
        quarantine_after: 0,
        faults: plan.clone(),
        ..RegistryConfig::default()
    }));
    registry.register("m", &path).unwrap();
    let service = LocatorService::with_registry(
        Arc::clone(&registry),
        ServiceConfig { workers: 2, tile_windows: 17, faults: plan.clone(), ..Default::default() },
    );

    let (mut ok, mut source_errors, mut worker_failed, mut model_unavailable) = (0u64, 0u64, 0, 0);
    for wave in 0..4 {
        // Evicting between waves forces reloads through the `ModelLoad`
        // injection site; a model that faulted away stays registered and
        // the next submission retries the load.
        let _ = registry.evict("m");
        let mut tickets = Vec::new();
        for i in 0..8 {
            let submitted = if i % 2 == 0 {
                service.submit_trace("m", trace.clone(), RequestOptions::default())
            } else {
                service.submit_reader(
                    "m",
                    Cursor::new(bytes.clone()),
                    trace.len(),
                    RequestOptions::default(),
                )
            };
            match submitted {
                Ok(ticket) => tickets.push(ticket),
                Err(Rejected::ModelUnavailable { name, .. }) => {
                    assert_eq!(name, "m", "seed {seed} wave {wave}");
                    model_unavailable += 1;
                }
                Err(other) => panic!("seed {seed}: unexpected rejection {other:?}"),
            }
        }
        for (i, ticket) in tickets.iter().enumerate() {
            let outcome = ticket
                .wait_timeout(GENEROUS)
                .unwrap_or_else(|| panic!("seed {seed} wave {wave} request {i}: lost ticket"));
            match outcome {
                Ok(result) => {
                    assert_eq!(
                        result.starts, expected,
                        "seed {seed}: non-faulted request must demux bit-identical to locate"
                    );
                    ok += 1;
                }
                Err(ServiceError::Source(_)) => source_errors += 1,
                Err(ServiceError::WorkerFailed) => worker_failed += 1,
                Err(other) => panic!("seed {seed}: unexpected typed failure {other:?}"),
            }
        }
    }

    // Reconcile every injected fault against the typed outcomes and the
    // metrics — nothing fired invisibly, nothing was counted twice.
    let metrics = service.metrics();
    let score_fired = fired_kinds(&plan, FaultSite::Score);
    assert!(score_fired.iter().all(|k| matches!(k, FaultKind::ScorePanic)));
    assert_eq!(worker_failed, score_fired.len() as u64, "seed {seed}");
    assert_eq!(metrics.worker_panics, score_fired.len() as u64, "seed {seed}");

    let trace_fired = fired_kinds(&plan, FaultSite::TraceRead);
    assert_eq!(source_errors, trace_fired.len() as u64, "seed {seed}");

    let load_fired = fired_kinds(&plan, FaultSite::ModelLoad);
    assert_eq!(model_unavailable, load_fired.len() as u64, "seed {seed}");
    let load_io = load_fired.iter().filter(|k| matches!(k, FaultKind::IoError)).count();
    let load_corrupt = load_fired.iter().filter(|k| matches!(k, FaultKind::CorruptBytes)).count();
    assert_eq!(metrics.io_errors, (trace_fired.len() + load_io) as u64, "seed {seed}");
    assert_eq!(metrics.corrupt_loads, load_corrupt as u64, "seed {seed}");

    assert_eq!(metrics.completed, ok, "seed {seed}");
    assert_eq!(metrics.failed, source_errors + worker_failed, "seed {seed}");
    for site in [FaultSite::TraceRead, FaultSite::ModelLoad, FaultSite::Score] {
        assert_eq!(plan.fired(site), fired_kinds(&plan, site).len() as u64, "seed {seed}");
    }
    assert!(
        plan.fired(FaultSite::TraceRead)
            + plan.fired(FaultSite::ModelLoad)
            + plan.fired(FaultSite::Score)
            > 0,
        "seed {seed}: no fault ever fired — the run tested nothing"
    );

    service.shutdown();
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// TCP chaos
// ---------------------------------------------------------------------------

/// Socket faults on the server side are rescued by the client's bounded
/// reconnect: every request ends in a bit-identical answer, and the plan
/// confirms faults actually fired.
#[test]
fn tcp_chaos_with_retrying_client_recovers_every_request() {
    let plan = FaultPlan::seeded(7, 6, 60, 0);
    let service = Arc::new(LocatorService::start(
        vec![tiny_engine(13)],
        ServiceConfig { workers: 2, ..Default::default() },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = net::serve(
        Arc::clone(&service),
        listener,
        ServerConfig { faults: plan.clone(), ..Default::default() },
    )
    .unwrap();

    let trace = noisy_trace(300, 5);
    let expected: Vec<u64> =
        service.engine("model-0").unwrap().locate(&trace).into_iter().map(|s| s as u64).collect();
    let mut client = Client::connect_with(
        server.addr(),
        ClientConfig {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            backoff_seed: 7,
            ..Default::default()
        },
    )
    .unwrap();

    // Transport faults are rescued inside `Client::locate`. One server-side
    // outcome the client must *not* transport-retry remains visible here: a
    // `NetRead` fault striking mid-payload of a *streamed* request fails the
    // server's ingest, answered in-protocol as the typed
    // [`Status::SourceFailed`] — the frame exchange itself succeeded. Those
    // rounds are re-sent at the application level, and every round must end
    // in a bit-identical answer.
    let mut source_failed = 0u32;
    for round in 0..12 {
        let flags = if round % 2 == 0 { 0 } else { FLAG_STREAMED };
        let response = loop {
            let response = client
                .locate("model-0", flags, 0, trace.samples())
                .unwrap_or_else(|e| panic!("round {round}: retries should have rescued this: {e}"));
            if response.status == Status::SourceFailed {
                source_failed += 1;
                assert!(source_failed <= 32, "round {round}: ingest faults never drained");
                continue;
            }
            break response;
        };
        assert_eq!(response.status, Status::Ok, "round {round}");
        assert_eq!(response.starts, expected, "round {round}");
    }
    assert!(
        plan.fired(FaultSite::NetRead) + plan.fired(FaultSite::NetWrite) > 0,
        "no socket fault ever fired — the run tested nothing"
    );

    server.stop();
    service.shutdown();
}

/// Half-open and abruptly-churning connections are reaped by the
/// per-connection timeouts: no wedged handler threads, a healthy client
/// still served, and `Server::stop` returns promptly.
#[test]
fn half_open_connections_are_reaped_and_stop_stays_prompt() {
    let service = Arc::new(LocatorService::start(
        vec![tiny_engine(13)],
        ServiceConfig { workers: 2, ..Default::default() },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = net::serve(
        Arc::clone(&service),
        listener,
        ServerConfig {
            read_timeout: Some(Duration::from_millis(80)),
            write_timeout: Some(Duration::from_millis(80)),
            ..Default::default()
        },
    )
    .unwrap();

    // A half-open peer: part of a request magic, then silence.
    let mut wedger = TcpStream::connect(server.addr()).unwrap();
    wedger.write_all(b"SC").unwrap();
    // Churn: connections that vanish abruptly, some mid-frame.
    for i in 0..16 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        if i % 2 == 0 {
            let _ = s.write_all(b"SCLQ");
        }
        drop(s);
    }

    let deadline = Instant::now() + GENEROUS;
    while service.metrics().conn_timeouts == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        service.metrics().conn_timeouts >= 1,
        "the half-open connection was never reaped by the read timeout"
    );

    // The wedger never blocked service: a healthy request still round-trips.
    let trace = noisy_trace(120, 3);
    let expected: Vec<u64> =
        service.engine("model-0").unwrap().locate(&trace).into_iter().map(|s| s as u64).collect();
    let mut client = Client::connect(server.addr()).unwrap();
    let response = client.locate("model-0", 0, 0, trace.samples()).unwrap();
    assert_eq!(response.starts, expected);
    drop(client);
    drop(wedger);

    let stopping = Instant::now();
    server.stop();
    assert!(
        stopping.elapsed() < Duration::from_secs(10),
        "Server::stop wedged on reaped connections"
    );
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Corrupt models, quarantine, fallback
// ---------------------------------------------------------------------------

/// A corrupt v4 model file is rejected by its checksum on every load —
/// never served — and repeated failures trip the quarantine, which backs
/// off, cools down, and recovers once the file is healed.
#[test]
fn corrupt_v4_model_is_never_served_and_quarantine_recovers() {
    let path = temp_path("corrupt");
    let engine = tiny_engine(47);
    engine.save(&path).unwrap();
    let good = std::fs::read(&path).unwrap();
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x10;
    std::fs::write(&path, &bad).unwrap();

    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        quarantine_after: 2,
        quarantine_cooldown: Duration::from_millis(150),
        ..RegistryConfig::default()
    }));
    registry.register("m", &path).unwrap();
    let service = LocatorService::with_registry(Arc::clone(&registry), ServiceConfig::default());
    let trace = noisy_trace(200, 1);

    // Two loads fail the payload checksum: typed rejections naming it.
    for round in 0..2 {
        match service.submit_trace("m", trace.clone(), RequestOptions::default()) {
            Err(Rejected::ModelUnavailable { name, reason }) => {
                assert_eq!(name, "m");
                assert!(reason.contains("checksum"), "round {round}: {reason}");
            }
            other => panic!("a corrupt model must never be served, got {other:?}"),
        }
    }
    // The third submission is quarantined without touching the file.
    match service.submit_trace("m", trace.clone(), RequestOptions::default()) {
        Err(Rejected::ModelUnavailable { reason, .. }) => {
            assert!(reason.contains("quarantined"), "{reason}");
        }
        other => panic!("expected a quarantine rejection, got {other:?}"),
    }
    let metrics = service.metrics();
    assert_eq!(metrics.corrupt_loads, 2);
    assert_eq!(metrics.quarantines, 1);
    assert_eq!(metrics.completed, 0, "nothing may complete against a corrupt model");

    // Heal the file; after the cooldown the reload succeeds and the model
    // serves bit-identically.
    std::fs::write(&path, &good).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let expected = engine.locate(&trace);
    let got = service
        .submit_trace("m", trace.clone(), RequestOptions::default())
        .expect("healed model must load after the cooldown")
        .wait()
        .unwrap();
    assert_eq!(got.starts, expected);
    assert!(service.metrics().retries >= 1, "the recovery retry must be counted");

    service.shutdown();
    std::fs::remove_file(&path).ok();
}

/// When a reload after evict fails, the registry falls back to the last
/// good model file instead of going dark.
#[test]
fn failed_reload_after_evict_falls_back_to_the_last_good_file() {
    let path_a = temp_path("fallback_a");
    let path_b = temp_path("fallback_b");
    tiny_engine(3).save(&path_a).unwrap();
    tiny_engine(5).save(&path_b).unwrap();

    let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
    registry.register("m", &path_a).unwrap();
    registry.resolve("m").unwrap();
    // Swapping to B records A as the last good file.
    registry.swap("m", &path_b).unwrap();
    let gen_b = registry.resolve("m").unwrap().generation();
    registry.evict("m").unwrap();
    std::fs::remove_file(&path_b).unwrap();

    // The reload of B fails (file gone); the registry must fall back to A
    // as a *new* generation rather than surface the failure.
    let handle = registry.resolve("m").expect("fallback to the last good file");
    assert!(handle.generation() > gen_b, "the fallback installs a new generation");
    let trace = noisy_trace(160, 8);
    let expected = tiny_engine(3).locate(&trace);
    assert_eq!(handle.engine().locate(&trace), expected, "fallback serves the last good model");
    let stats = registry.stats();
    assert!(stats.io_errors >= 1, "the failed reload is counted");
    assert!(stats.retries >= 1, "the fallback retry is counted");

    std::fs::remove_file(&path_a).ok();
}

// ---------------------------------------------------------------------------
// Ticket::wait_timeout and load shedding
// ---------------------------------------------------------------------------

/// Both `wait_timeout` outcomes: `None` while the (deliberately stalled)
/// request is still in flight, then the same ticket redeems the result.
#[test]
fn ticket_wait_timeout_covers_in_flight_and_completed() {
    let faults = FaultPlan::builder().fault(FaultSite::Score, 0, FaultKind::Stall(250)).build();
    let service = LocatorService::start(
        vec![tiny_engine(9)],
        ServiceConfig { workers: 1, faults, ..Default::default() },
    );
    let trace = noisy_trace(200, 2);
    let expected = service.engine("model-0").unwrap().locate(&trace);

    let ticket = service.submit_trace("model-0", trace, RequestOptions::default()).unwrap();
    // The injected 250 ms stall holds the only batch well past this wait.
    assert!(
        ticket.wait_timeout(Duration::from_millis(20)).is_none(),
        "a stalled request reported completion early"
    );
    // The ticket stays redeemable after a timed-out wait.
    let got = ticket
        .wait_timeout(GENEROUS)
        .expect("stalled request never completed")
        .expect("stall is a delay, not a failure");
    assert_eq!(got.starts, expected);
    service.shutdown();
}

/// An injected stall inflates the observed per-batch latency, and the next
/// deadline-carrying submission is shed at admission with the typed
/// [`Rejected::Overloaded`] — while generous deadlines still pass.
#[test]
fn observed_stalls_feed_deadline_aware_load_shedding() {
    let faults = FaultPlan::builder().fault(FaultSite::Score, 0, FaultKind::Stall(80)).build();
    let service = LocatorService::start(
        vec![tiny_engine(9)],
        ServiceConfig { workers: 1, faults, ..Default::default() },
    );
    let trace = noisy_trace(200, 2);

    // Warm the latency estimator with one (stalled) batch.
    service
        .submit_trace("model-0", trace.clone(), RequestOptions::default())
        .unwrap()
        .wait()
        .unwrap();

    // An impossible deadline is rejected at the door, not after queueing.
    let opts = RequestOptions { deadline: Some(Duration::from_millis(1)), ..Default::default() };
    match service.submit_trace("model-0", trace.clone(), opts) {
        Err(Rejected::Overloaded { estimate, deadline, .. }) => {
            assert!(estimate > deadline, "shed only when the estimate exceeds the deadline");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(service.metrics().sheds, 1);

    // A deadline the backlog estimate fits inside is admitted and served.
    let opts = RequestOptions { deadline: Some(Duration::from_secs(30)), ..Default::default() };
    service.submit_trace("model-0", trace, opts).unwrap().wait().unwrap();
    assert_eq!(service.metrics().sheds, 1, "the generous deadline was not shed");
    service.shutdown();
}
