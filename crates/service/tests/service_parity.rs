//! Acceptance tests of the coalescing service: everything the scheduler
//! packs, demuxes, rejects or drains must be **bit-identical** to the
//! single-request `LocatorEngine` paths — for f32 and i8 models, in-memory
//! and streamed submissions, across chunk sizes, under concurrency, and at
//! every typed failure edge (backpressure, deadlines, truncated sources,
//! shutdown).

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use locsvc::{LocatorService, Rejected, RequestOptions, ServiceConfig, ServiceError, Ticket};
use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::{FileTraceSource, Trace};

fn tiny_engine(seed: u64) -> LocatorEngine {
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed }),
        SlidingWindowClassifier::new(16, 4).with_batch_size(8),
        Segmenter::default(),
    )
}

/// Deterministic pseudo-noise trace (same generator as the locator parity
/// tests: dense sign changes stress segmentation).
fn noisy_trace(len: usize, seed: u64) -> Trace {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Trace::from_samples(
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                (i as f32 * 0.07).sin() + 0.6 * noise
            })
            .collect(),
    )
}

fn collect_scores() -> RequestOptions {
    RequestOptions { collect_scores: true, ..RequestOptions::default() }
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("locsvc_parity_{name}_{}", std::process::id()))
}

#[test]
fn coalesced_batches_are_bit_identical_to_serial_locate_for_f32_and_i8() {
    let f32_engine = tiny_engine(21);
    let i8_engine = tiny_engine(21).quantize();
    // A tiny tile forces batches to span request boundaries; extra workers
    // force concurrent claiming even on a single-core host.
    let service = LocatorService::start(
        vec![f32_engine, i8_engine],
        ServiceConfig { workers: 4, tile_windows: 24, ..ServiceConfig::default() },
    );
    let models = ["model-0", "model-1"];
    // Mixed sizes: tiny (sub-tile), medium, larger-than-tile requests,
    // interleaved across the two models.
    let lens = [70usize, 333, 900, 150, 61, 512, 257, 800];
    let mut expected = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        let model = models[i % 2];
        let trace = noisy_trace(len, i as u64 + 1);
        let engine = service.engine(model).unwrap();
        let (scores, starts) = engine.locate_detailed(&trace);
        expected.push((model, trace, scores, starts));
    }
    let tickets: Vec<Ticket> = expected
        .iter()
        .map(|(model, trace, _, _)| {
            service.submit_trace(model, trace.clone(), collect_scores()).unwrap()
        })
        .collect();
    for (ticket, (_, _, scores, starts)) in tickets.into_iter().zip(&expected) {
        let got = ticket.wait().unwrap();
        assert_eq!(&got.starts, starts);
        assert_eq!(got.windows, scores.len());
        let got_scores = got.scores.expect("scores were requested");
        assert_eq!(got_scores.len(), scores.len());
        for (i, (a, b)) in got_scores.iter().zip(scores).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "score {i} diverged");
        }
    }
    let m = service.metrics();
    assert_eq!(m.submitted, lens.len() as u64);
    assert_eq!(m.completed, lens.len() as u64);
    assert!(m.batches > 0);
    assert!(m.batch_fill_ratio > 0.0 && m.batch_fill_ratio <= 1.0);
    assert!(m.p50_latency <= m.p99_latency);
    service.shutdown();
}

#[test]
fn streamed_submissions_match_locate_streamed_across_chunk_sizes() {
    let service = LocatorService::start(
        vec![tiny_engine(33)],
        ServiceConfig { workers: 2, tile_windows: 16, ..ServiceConfig::default() },
    );
    let model = "model-0";
    let trace = noisy_trace(700, 7);
    // Window-aligned, prime-odd (ragged final chunk) and beyond-the-trace
    // chunk sizes, like the locator's own streaming grid.
    for chunk_len in [48usize, 157, 699, 4096] {
        let expected = service.engine(model).unwrap().locate_streamed(&trace, chunk_len).unwrap();
        let opts = RequestOptions { chunk_len: Some(chunk_len), ..collect_scores() };
        let ticket = service.submit_source(model, Box::new(trace.clone()), opts).unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.starts, expected, "chunk={chunk_len}");
        // The full score signal must also match the in-memory signal.
        let engine = service.engine(model).unwrap();
        let in_memory = engine.sliding().classify(engine.model(), &trace);
        let got_scores = got.scores.expect("scores were requested");
        for (i, (a, b)) in got_scores.iter().zip(&in_memory).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "chunk={chunk_len}: score {i} diverged");
        }
    }
    service.shutdown();
}

#[test]
fn reader_ingest_matches_file_source_across_chunk_sizes() {
    // The same samples served three ways — in-memory file bytes through
    // `SequentialTraceSource` (non-seekable path), an on-disk
    // `FileTraceSource` (seekable path), and `locate_streamed` directly —
    // must agree bit-for-bit for every chunk size.
    let service = LocatorService::start(vec![tiny_engine(5)], ServiceConfig::default());
    let model = "model-0";
    let trace = noisy_trace(600, 3);
    let path = temp_path("raw");
    sca_trace::io::write_samples_binary(std::fs::File::create(&path).unwrap(), trace.samples())
        .unwrap();
    let mut bytes = Vec::with_capacity(trace.len() * 4);
    for s in trace.samples() {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    for chunk_len in [32usize, 100, 599, 600, 2048] {
        let expected = service.engine(model).unwrap().locate_streamed(&trace, chunk_len).unwrap();
        let opts = RequestOptions { chunk_len: Some(chunk_len), ..RequestOptions::default() };

        let file = Box::new(FileTraceSource::open_raw_f32(&path).unwrap());
        let from_file = service.submit_source(model, file, opts).unwrap().wait().unwrap();
        assert_eq!(from_file.starts, expected, "file chunk={chunk_len}");

        let reader = std::io::Cursor::new(bytes.clone());
        let from_reader =
            service.submit_reader(model, reader, trace.len(), opts).unwrap().wait().unwrap();
        assert_eq!(from_reader.starts, expected, "reader chunk={chunk_len}");
        assert_eq!(from_reader.windows, from_file.windows);
    }
    std::fs::remove_file(&path).ok();
    service.shutdown();
}

#[test]
fn many_threads_hammering_the_service_stay_bit_identical() {
    let service = Arc::new(LocatorService::start(
        vec![tiny_engine(9), tiny_engine(9).quantize()],
        ServiceConfig { workers: 3, tile_windows: 32, ..ServiceConfig::default() },
    ));
    let models = ["model-0", "model-1"];
    let expected: Vec<Vec<Vec<usize>>> = models
        .iter()
        .map(|&m| (0..4).map(|i| service.engine(m).unwrap().locate(&noisy_trace(400, i))).collect())
        .collect();
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let service = Arc::clone(&service);
            let expected = &expected;
            let models = &models;
            scope.spawn(move || {
                for round in 0..3usize {
                    let which = (t + round) % 2;
                    let seed = ((t + round) % 4) as u64;
                    let ticket = service
                        .submit_trace(
                            models[which],
                            noisy_trace(400, seed),
                            RequestOptions::default(),
                        )
                        .unwrap();
                    let got = ticket.wait().unwrap();
                    assert_eq!(
                        got.starts, expected[which][seed as usize],
                        "thread {t} round {round}"
                    );
                }
            });
        }
    });
    Arc::try_unwrap(service).expect("all clones joined").shutdown();
}

#[test]
fn queue_full_is_a_typed_rejection_and_clears_after_drain() {
    let (reader, mut writer) = std::io::pipe().unwrap();
    let service = LocatorService::start(
        vec![tiny_engine(2)],
        ServiceConfig { workers: 1, queue_capacity: 2, ..ServiceConfig::default() },
    );
    let model = "model-0";
    // Request 1 blocks the only worker on an empty pipe; request 2 fills the
    // queue; request 3 must bounce with the typed backpressure error.
    let blocked = service.submit_reader(model, reader, 64, RequestOptions::default()).unwrap();
    let queued =
        service.submit_trace(model, noisy_trace(200, 1), RequestOptions::default()).unwrap();
    let err =
        service.submit_trace(model, noisy_trace(200, 2), RequestOptions::default()).unwrap_err();
    assert_eq!(err, Rejected::QueueFull { capacity: 2 });
    assert_eq!(service.metrics().rejected_queue_full, 1);

    // Feed the pipe; both admitted requests must now complete normally.
    let samples = noisy_trace(64, 3);
    let mut bytes = Vec::new();
    for s in samples.samples() {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    writer.write_all(&bytes).unwrap();
    drop(writer);
    let expected = service.engine(model).unwrap().locate_streamed(&samples, 1 << 20).unwrap();
    assert_eq!(blocked.wait().unwrap().starts, expected);
    let expected = service.engine(model).unwrap().locate(&noisy_trace(200, 1));
    assert_eq!(queued.wait().unwrap().starts, expected);

    // Capacity freed: submissions are accepted again.
    let again =
        service.submit_trace(model, noisy_trace(200, 2), RequestOptions::default()).unwrap();
    again.wait().unwrap();
    service.shutdown();
}

#[test]
fn expired_deadline_completes_with_typed_error_without_scoring() {
    let (reader, mut writer) = std::io::pipe().unwrap();
    let service = LocatorService::start(
        vec![tiny_engine(4)],
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
    );
    let model = "model-0";
    let blocked = service.submit_reader(model, reader, 64, RequestOptions::default()).unwrap();
    let doomed = service
        .submit_trace(
            model,
            noisy_trace(300, 1),
            RequestOptions {
                deadline: Some(Duration::from_millis(5)),
                ..RequestOptions::default()
            },
        )
        .unwrap();
    // Let the deadline lapse while the only worker is stuck on the pipe.
    std::thread::sleep(Duration::from_millis(30));
    let trace = noisy_trace(64, 3);
    let mut bytes = Vec::new();
    for s in trace.samples() {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    writer.write_all(&bytes).unwrap();
    drop(writer);
    blocked.wait().unwrap();
    assert_eq!(doomed.wait().unwrap_err(), ServiceError::DeadlineExceeded);
    assert_eq!(service.metrics().rejected_deadline, 1);
    service.shutdown();
}

#[test]
fn truncated_reader_surfaces_as_typed_source_error() {
    let service = LocatorService::start(vec![tiny_engine(6)], ServiceConfig::default());
    let model = "model-0";
    // Declares 64 samples, delivers 10: the worker must fail the request
    // with the trace layer's typed truncation error, not hang or panic.
    let short = std::io::Cursor::new(vec![0u8; 40]);
    let ticket = service.submit_reader(model, short, 64, RequestOptions::default()).unwrap();
    match ticket.wait().unwrap_err() {
        ServiceError::Source(e) => {
            assert!(e.to_string().contains("truncated"), "unexpected error: {e}")
        }
        other => panic!("expected a source error, got {other:?}"),
    }
    assert_eq!(service.metrics().failed, 1);
    // The failure must not wedge the service.
    let trace = noisy_trace(300, 1);
    let expected = service.engine(model).unwrap().locate(&trace);
    let got =
        service.submit_trace(model, trace, RequestOptions::default()).unwrap().wait().unwrap();
    assert_eq!(got.starts, expected);
    service.shutdown();
}

#[test]
fn admission_rejections_are_typed() {
    let service = LocatorService::start(
        vec![tiny_engine(1)],
        ServiceConfig { max_trace_len: 100, ..ServiceConfig::default() },
    );
    let model = "model-0";
    assert_eq!(
        service
            .submit_trace("no-such-model", noisy_trace(50, 1), RequestOptions::default())
            .unwrap_err(),
        Rejected::UnknownModel { name: "no-such-model".into() }
    );
    assert_eq!(
        service.submit_trace(model, noisy_trace(101, 1), RequestOptions::default()).unwrap_err(),
        Rejected::TooLong { len: 101, max: 100 }
    );
    let opts = RequestOptions { chunk_len: Some(0), ..RequestOptions::default() };
    assert!(matches!(
        service.submit_source(model, Box::new(noisy_trace(50, 1)), opts).unwrap_err(),
        Rejected::InvalidRequest(_)
    ));
    assert_eq!(service.metrics().rejected_other, 3);
    service.shutdown();
}

#[test]
fn sub_window_traces_complete_with_empty_results() {
    let service = LocatorService::start(vec![tiny_engine(3)], ServiceConfig::default());
    let model = "model-0";
    for len in [0usize, 1, 15] {
        let got = service
            .submit_trace(model, noisy_trace(len, 1), collect_scores())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(got.starts, service.engine(model).unwrap().locate(&noisy_trace(len, 1)));
        assert_eq!(got.windows, 0);
        assert_eq!(got.scores.as_deref(), Some(&[] as &[f32]));
    }
    service.shutdown();
}

#[test]
fn shutdown_drains_admitted_work_then_rejects_new_submissions() {
    let service = LocatorService::start(
        vec![tiny_engine(8)],
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
    );
    let model = "model-0";
    let expected: Vec<_> =
        (0..6u64).map(|i| service.engine(model).unwrap().locate(&noisy_trace(350, i))).collect();
    let tickets: Vec<_> = (0..6u64)
        .map(|i| {
            service.submit_trace(model, noisy_trace(350, i), RequestOptions::default()).unwrap()
        })
        .collect();
    service.shutdown();
    // Every admitted request completed despite the shutdown racing them.
    for (ticket, expected) in tickets.into_iter().zip(expected) {
        assert_eq!(ticket.wait().unwrap().starts, expected);
    }
    assert_eq!(
        service.submit_trace(model, noisy_trace(350, 0), RequestOptions::default()).unwrap_err(),
        Rejected::ShuttingDown
    );
}
