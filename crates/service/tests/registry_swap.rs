//! Acceptance tests of the model registry under fire: hot swap while the
//! service is being hammered (every completed request bit-identical to
//! `locate` under the generation it was admitted against, zero admitted
//! requests dropped, for f32 *and* quantised i8 models), eviction→reload
//! roundtrip parity under a byte budget, and worker-panic containment.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use locsvc::{
    FaultKind, FaultPlan, FaultSite, LocatorService, ModelRegistry, RegistryConfig, RegistryError,
    Rejected, RequestOptions, ServiceConfig, ServiceError,
};
use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;

fn tiny_engine(seed: u64) -> LocatorEngine {
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed }),
        SlidingWindowClassifier::new(16, 4).with_batch_size(8),
        Segmenter::default(),
    )
}

fn noisy_trace(len: usize, seed: u64) -> Trace {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Trace::from_samples(
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                (i as f32 * 0.07).sin() + 0.6 * noise
            })
            .collect(),
    )
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("locsvc_registry_{name}_{}", std::process::id()))
}

/// Hammer the service from several threads while another thread swaps the
/// model back and forth N times. Every completed request must be
/// bit-identical to `locate` under the generation it reports — generations
/// alternate between the two weight files (odd = file A, even = file B) —
/// and no admitted request may be dropped. Run for f32 and i8 chains.
#[test]
fn swap_under_load_stays_bit_identical_per_admitted_generation() {
    for (label, quantize) in [("f32", false), ("i8", true)] {
        let build = |seed: u64| {
            let engine = tiny_engine(seed);
            if quantize {
                engine.quantize()
            } else {
                engine
            }
        };
        let path_a = temp_path(&format!("swap_a_{label}"));
        let path_b = temp_path(&format!("swap_b_{label}"));
        build(101).save(&path_a).unwrap();
        build(202).save(&path_b).unwrap();

        // Per-generation reference answers: generation g serves file A when
        // g is odd (gen 1 is the initial load of A; each swap alternates).
        const SEEDS: u64 = 3;
        let reference: Vec<Vec<Vec<usize>>> = [101u64, 202]
            .iter()
            .map(|&s| {
                let engine = build(s);
                (0..SEEDS).map(|seed| engine.locate(&noisy_trace(260, seed))).collect()
            })
            .collect();

        let registry = Arc::new(ModelRegistry::default());
        registry.register("hot", &path_a).unwrap();
        let service = Arc::new(LocatorService::with_registry(
            Arc::clone(&registry),
            ServiceConfig { workers: 3, tile_windows: 24, ..ServiceConfig::default() },
        ));

        const SWAPS: u64 = 6;
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let swapper = {
                let registry = Arc::clone(&registry);
                let done = Arc::clone(&done);
                let (path_a, path_b) = (path_a.clone(), path_b.clone());
                scope.spawn(move || {
                    for k in 0..SWAPS {
                        // Swap k installs generation k+2: B, A, B, …
                        let path = if k % 2 == 0 { &path_b } else { &path_a };
                        let generation = registry.swap("hot", path).unwrap();
                        assert_eq!(generation, k + 2);
                        std::thread::sleep(std::time::Duration::from_millis(3));
                    }
                    done.store(true, Ordering::SeqCst);
                })
            };
            for t in 0..4u64 {
                let service = Arc::clone(&service);
                let done = Arc::clone(&done);
                let reference = &reference;
                scope.spawn(move || {
                    let mut round = 0u64;
                    while !done.load(Ordering::SeqCst) || round < 4 {
                        let seed = (t + round) % SEEDS;
                        let ticket = match service.submit_trace(
                            "hot",
                            noisy_trace(260, seed),
                            RequestOptions::default(),
                        ) {
                            Ok(ticket) => ticket,
                            Err(Rejected::QueueFull { .. }) => continue,
                            Err(other) => panic!("unexpected rejection: {other}"),
                        };
                        // Zero admitted requests dropped: every ticket
                        // completes with a result …
                        let got = ticket
                            .wait()
                            .unwrap_or_else(|e| panic!("admitted request dropped ({label}): {e}"));
                        // … bit-identical to `locate` under the generation
                        // it was admitted against.
                        let which = if got.generation % 2 == 1 { 0 } else { 1 };
                        assert_eq!(
                            got.starts, reference[which][seed as usize],
                            "{label}: thread {t} round {round} gen {}",
                            got.generation
                        );
                        round += 1;
                    }
                });
            }
            swapper.join().unwrap();
        });

        let m = service.metrics();
        assert_eq!(m.model_swaps, SWAPS, "{label}");
        assert_eq!(m.failed, 0, "{label}: no admitted request may fail across swaps");
        assert_eq!(m.submitted, m.completed, "{label}");
        service.shutdown();
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }
}

/// Three file-backed models under a budget that fits roughly one: resolving
/// them round-robin keeps resident bytes under the budget at every step
/// (LRU eviction), reload after eviction serves the *same* generation
/// bit-identically, and the loads/evictions counters account for it.
#[test]
fn eviction_keeps_resident_bytes_under_budget_and_reloads_bit_identically() {
    let paths: Vec<PathBuf> = (0..3u64)
        .map(|i| {
            let path = temp_path(&format!("evict_{i}"));
            tiny_engine(i + 50).save(&path).unwrap();
            path
        })
        .collect();
    let one_model = tiny_engine(50).memory_footprint() as u64;
    let budget = one_model + one_model / 2;
    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        byte_budget: budget as usize,
        ..RegistryConfig::default()
    }));
    for (i, path) in paths.iter().enumerate() {
        registry.register(format!("m{i}"), path).unwrap();
    }
    let service = Arc::new(LocatorService::with_registry(
        Arc::clone(&registry),
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
    ));
    let trace = noisy_trace(300, 7);
    let expected: Vec<Vec<usize>> = (0..3u64).map(|i| tiny_engine(i + 50).locate(&trace)).collect();

    // Two round-robin passes: the second pass re-resolves models the first
    // pass evicted, so every answer crosses an eviction→reload roundtrip.
    for pass in 0..2 {
        for (i, want) in expected.iter().enumerate() {
            let got = service
                .submit_trace(&format!("m{i}"), trace.clone(), RequestOptions::default())
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(&got.starts, want, "pass {pass} model {i}");
            assert_eq!(got.generation, 1, "eviction must not bump the generation");
            let stats = registry.stats();
            assert!(
                stats.resident_bytes <= budget,
                "pass {pass} model {i}: resident {} bytes over budget {budget}",
                stats.resident_bytes,
            );
        }
    }
    let stats = registry.stats();
    assert!(stats.evictions >= 4, "budget for ~1 model must evict on most resolves");
    assert!(stats.loads >= 5, "reloads after eviction are real file loads");
    assert_eq!(stats.models, 3);
    assert!(stats.resident_models <= 2);

    // The gauges surface through the service metrics too.
    let m = service.metrics();
    assert_eq!(m.models, 3);
    assert_eq!(m.model_byte_budget, budget);
    assert_eq!(m.model_loads, stats.loads);
    assert_eq!(m.model_evictions, stats.evictions);
    service.shutdown();
    for path in &paths {
        std::fs::remove_file(path).ok();
    }
}

/// Registry semantics that don't need a running service: lazy cold loads,
/// cached warm resolves, explicit eviction, typed errors.
#[test]
fn registry_loads_lazily_and_types_its_errors() {
    let path = temp_path("lazy");
    tiny_engine(77).save(&path).unwrap();
    let registry = ModelRegistry::default();
    registry.register("lazy", &path).unwrap();
    assert_eq!(registry.stats().loads, 0, "registration must not touch the file");

    let first = registry.resolve("lazy").unwrap();
    assert_eq!(registry.stats().loads, 1);
    assert_eq!(first.generation(), 1);
    let second = registry.resolve("lazy").unwrap();
    assert_eq!(registry.stats().loads, 1, "warm resolves are cache hits");
    assert!(first.same_weights(&second), "one Arc per (name, generation)");

    // Explicit evict, transparent reload: same generation, fresh Arc.
    registry.evict("lazy").unwrap();
    let third = registry.resolve("lazy").unwrap();
    assert_eq!(registry.stats().loads, 2);
    assert_eq!(third.generation(), 1);
    assert!(!first.same_weights(&third));
    // The in-flight handle kept the old weights alive and scoring equal.
    let trace = noisy_trace(200, 1);
    assert_eq!(first.engine().locate(&trace), third.engine().locate(&trace));

    assert!(matches!(registry.resolve("missing").unwrap_err(), RegistryError::UnknownModel { .. }));
    assert!(matches!(
        registry.register("lazy", &path).unwrap_err(),
        RegistryError::AlreadyRegistered { .. }
    ));
    let pinned = ModelRegistry::default();
    pinned.install("pinned", tiny_engine(1)).unwrap();
    assert!(matches!(pinned.evict("pinned").unwrap_err(), RegistryError::NotEvictable { .. }));

    // A registered-but-unloadable file is a typed service rejection, and
    // the registration survives for a retry.
    std::fs::remove_file(&path).ok();
    let service = LocatorService::with_registry(Arc::new(registry), ServiceConfig::default());
    service.registry().evict("lazy").unwrap();
    match service.submit_trace("lazy", noisy_trace(100, 1), RequestOptions::default()) {
        Err(Rejected::ModelUnavailable { name, .. }) => assert_eq!(name, "lazy"),
        other => panic!("expected ModelUnavailable, got {other:?}"),
    }
    service.shutdown();
}

/// A panicking worker must fail only the requests in its batch — with the
/// typed [`ServiceError::WorkerFailed`] — while the remaining workers (and
/// the panicking worker itself, recovered) keep serving bit-identically,
/// and shutdown stays clean.
#[test]
fn worker_panic_fails_its_batch_and_the_service_keeps_serving() {
    let faults = FaultPlan::builder().fault(FaultSite::Score, 0, FaultKind::ScorePanic).build();
    let service = LocatorService::start(
        vec![tiny_engine(31)],
        ServiceConfig { workers: 2, faults, ..ServiceConfig::default() },
    );
    let trace = noisy_trace(350, 4);
    let expected = service.engine("model-0").unwrap().locate(&trace);

    // The injected fault panics the first scoring batch, which must surface
    // as the typed error — not a hang, not a process abort.
    let err = service
        .submit_trace("model-0", trace.clone(), RequestOptions::default())
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(matches!(err, ServiceError::WorkerFailed), "got {err:?}");

    // The mutexes recovered from poisoning: the service serves on, scores
    // bit-identical, and the panics are visible in the metrics.
    for round in 0..3 {
        let got = service
            .submit_trace("model-0", trace.clone(), RequestOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(got.starts, expected, "round {round} after recovery");
    }
    let m = service.metrics();
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.failed, 1);
    assert_eq!(m.completed, 3);
    service.shutdown();
}

/// Panic-containment accounting depth: every injected scoring fault is
/// counted in `worker_panics` exactly once — one panic per batch, no
/// double-counting from the shutdown join path — and a drained shutdown
/// with faults still pending completes (no hang) with each affected ticket
/// reporting the typed [`ServiceError::WorkerFailed`].
#[test]
fn injected_panic_count_is_exact_and_shutdown_drains_through_faults() {
    const INJECTED: u32 = 4;
    // 80 samples / window 16 / stride 4 = 17 windows; with tile_windows at
    // exactly 17 every request is its own batch, so injections map 1:1 to
    // failed requests and the count assertions are exact.
    let trace = noisy_trace(80, 9);
    let mut builder = FaultPlan::builder();
    for op in 0..u64::from(INJECTED) {
        builder = builder.fault(FaultSite::Score, op, FaultKind::ScorePanic);
    }
    let service = LocatorService::start(
        vec![tiny_engine(31)],
        ServiceConfig {
            workers: 2,
            tile_windows: 17,
            faults: builder.build(),
            ..ServiceConfig::default()
        },
    );

    // First half of the injections: served requests fail one by one.
    for round in 0..2 {
        let err = service
            .submit_trace("model-0", trace.clone(), RequestOptions::default())
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServiceError::WorkerFailed), "round {round}: got {err:?}");
    }
    assert_eq!(service.metrics().worker_panics, 2, "one count per injected panic");

    // Second half: requests still queued when shutdown starts. The drain
    // must run them (panicking), complete, and deliver the typed error.
    let pending: Vec<_> = (0..2)
        .map(|_| service.submit_trace("model-0", trace.clone(), RequestOptions::default()).unwrap())
        .collect();
    service.shutdown();
    for (i, ticket) in pending.into_iter().enumerate() {
        let err = ticket.wait().unwrap_err();
        assert!(matches!(err, ServiceError::WorkerFailed), "pending {i}: got {err:?}");
    }

    let m = service.metrics();
    assert_eq!(m.worker_panics, INJECTED as u64, "exactly the injected count, nothing more");
    assert_eq!(m.failed, INJECTED as u64);
    assert_eq!(m.submitted, INJECTED as u64);
    assert_eq!(m.completed, 0);
}
