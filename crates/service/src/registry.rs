//! Name-keyed model registry with lazy loading, LRU eviction and
//! non-disruptive hot swap.
//!
//! The paper's deployment is a scenario *matrix* — per device, per cipher,
//! sync vs desynchronised — so one engine process serves many models that
//! come and go while requests are in flight. The registry is the piece that
//! makes that safe:
//!
//! * **Names, not indices.** Models are keyed by scenario name (`"xmega-aes"`,
//!   `"stm32-present-desync"`), the identity carried on the wire. Slot order
//!   never leaks into the API, so swapping or evicting one model can never
//!   silently re-address another.
//! * **Lazy loading.** [`ModelRegistry::register`] records a model file path
//!   without touching the disk; the first [`ModelRegistry::resolve`] loads it
//!   through [`sca_locator::LocatorEngine::load`] (any `SCALOCEN` version).
//!   The registry lock is **not** held across file I/O — concurrent resolves
//!   of other models proceed, and two racing loads of the same model keep
//!   the winner's engine.
//! * **Generation pinning.** A [`ModelHandle`] carries an
//!   [`Arc<LocatorEngine>`] plus the generation it resolved. Requests hold
//!   their handle until they complete, so [`ModelRegistry::swap`] can install
//!   a new generation atomically while admitted requests finish
//!   **bit-identically** on the weights they were admitted against; nothing
//!   is ever torn out from under a running batch.
//! * **Byte-budgeted residency.** Every resident model is accounted at
//!   [`sca_locator::LocatorEngine::memory_footprint`] (exact weight bytes
//!   plus a deterministic workspace estimate). When a load pushes the total
//!   over [`RegistryConfig::byte_budget`], least-recently-used file-backed
//!   models are evicted until it fits; pinned models (installed in-process
//!   via [`ModelRegistry::install`], no backing file) are never evicted.
//!   Eviction drops the registry's reference only — in-flight handles keep
//!   the weights alive until their requests drain — and does **not** bump
//!   the generation: a reload serves bit-identical scores.
//! * **Load-failure quarantine.** A model whose (re)load fails
//!   [`RegistryConfig::quarantine_after`] consecutive times enters a
//!   cooldown during which resolves fail fast with
//!   [`RegistryError::Quarantined`] instead of hammering a broken file on
//!   every request; the cooldown's expiry re-arms one real retry. A failed
//!   reload after an eviction additionally falls back to re-faulting the
//!   last known-good file (the pre-swap path), installing it as a fresh
//!   generation rather than going dark.
//!
//! Counters (loads, evictions, swaps, and the failure-domain counts:
//! I/O errors, corrupt loads, retries, quarantines) and the resident-bytes
//! gauge are lock-free reads, surfaced through the service's
//! [`MetricsSnapshot`](crate::MetricsSnapshot).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sca_locator::{LocatorEngine, PersistError};

use crate::faults::{FaultKind, FaultPlan, FaultSite};

/// Registry sizing; `Default` is an unbounded residency budget with a
/// 3-strike, 5-second load-failure quarantine.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Total resident-model byte budget (weights + workspace estimate per
    /// [`LocatorEngine::memory_footprint`]). `usize::MAX` disables
    /// eviction. The budget is enforced against *evictable* (file-backed)
    /// models: the most recently touched model always stays resident even
    /// if it alone exceeds the budget, and pinned models do not count
    /// against evictability (they can push the total over budget but are
    /// never evicted to make room).
    pub byte_budget: usize,
    /// Consecutive load failures before a model is quarantined (`0`
    /// disables quarantine entirely).
    pub quarantine_after: u32,
    /// How long a quarantined model rejects resolves with
    /// [`RegistryError::Quarantined`] before the next real load attempt.
    pub quarantine_cooldown: Duration,
    /// Deterministic fault injection at the model-load site (see
    /// [`crate::faults`]); the default empty plan injects nothing.
    pub faults: FaultPlan,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            byte_budget: usize::MAX,
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_secs(5),
            faults: FaultPlan::default(),
        }
    }
}

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No model is registered under the name.
    UnknownModel {
        /// The unresolved name.
        name: String,
    },
    /// Loading the model file failed (missing, foreign, corrupt — see
    /// [`PersistError`]).
    Load {
        /// The model whose load failed.
        name: String,
        /// The underlying persistence error.
        error: PersistError,
    },
    /// [`ModelRegistry::register`]/[`install`](ModelRegistry::install) with
    /// a name that is already taken (use [`ModelRegistry::swap`] to replace
    /// a model's weights).
    AlreadyRegistered {
        /// The contested name.
        name: String,
    },
    /// The operation needs a file-backed model but the name is pinned
    /// (installed in-process, nowhere to reload from).
    NotEvictable {
        /// The pinned model.
        name: String,
    },
    /// The model's file failed to load [`RegistryConfig::quarantine_after`]
    /// consecutive times; resolves fail fast until the cooldown expires
    /// instead of re-reading a broken file on every request.
    Quarantined {
        /// The quarantined model.
        name: String,
        /// Time left until the next real load attempt.
        retry_in: Duration,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel { name } => write!(f, "unknown model {name:?}"),
            RegistryError::Load { name, error } => {
                write!(f, "loading model {name:?} failed: {error}")
            }
            RegistryError::AlreadyRegistered { name } => {
                write!(f, "model {name:?} is already registered")
            }
            RegistryError::NotEvictable { name } => {
                write!(f, "model {name:?} is pinned in-process (no backing file)")
            }
            RegistryError::Quarantined { name, retry_in } => {
                write!(
                    f,
                    "model {name:?} is quarantined after repeated load failures \
                     (next attempt in {retry_in:?})"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Load { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A resolved model: the engine pinned at the generation it resolved.
///
/// Handles are cheap to clone (`Arc` bumps). A request holds its handle for
/// its whole lifetime, so swaps and evictions never affect work already
/// admitted — the weights stay alive until the last handle drops.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    name: Arc<str>,
    generation: u64,
    engine: Arc<LocatorEngine>,
}

impl ModelHandle {
    /// The registered scenario name.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The generation this handle pinned (bumped by swaps, not reloads).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The pinned engine.
    pub fn engine(&self) -> &Arc<LocatorEngine> {
        &self.engine
    }

    /// Whether two handles pin the exact same resident weights (the
    /// scheduler's batch-compatibility test).
    pub fn same_weights(&self, other: &ModelHandle) -> bool {
        Arc::ptr_eq(&self.engine, &other.engine)
    }
}

/// A point-in-time copy of the registry gauges and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Registered models (resident or not).
    pub models: usize,
    /// Models currently holding weights in memory.
    pub resident_models: usize,
    /// Total bytes of resident models ([`LocatorEngine::memory_footprint`]).
    pub resident_bytes: u64,
    /// The configured byte budget (`u64::MAX` = unbounded).
    pub byte_budget: u64,
    /// Model files loaded (cold loads + reloads + swap loads).
    pub loads: u64,
    /// Models evicted to fit the byte budget (or explicitly).
    pub evictions: u64,
    /// Generations installed by [`ModelRegistry::swap`].
    pub swaps: u64,
    /// Model loads that failed on file I/O.
    pub io_errors: u64,
    /// Model loads rejected by format validation (bad magic, unsupported
    /// version, failed checksum/structure check) — never served.
    pub corrupt_loads: u64,
    /// Load attempts made after a previous failure: post-cooldown retries
    /// and fallbacks to the last good file.
    pub retries: u64,
    /// Times a model entered quarantine.
    pub quarantines: u64,
}

struct Resident {
    engine: Arc<LocatorEngine>,
    bytes: usize,
}

struct Slot {
    name: Arc<str>,
    /// Backing file; `None` pins the model (installed in-process).
    path: Option<PathBuf>,
    /// Starts at 1; bumped by [`ModelRegistry::swap`] and by a fallback
    /// install (different weights must mean a different generation).
    generation: u64,
    resident: Option<Resident>,
    /// Tick of the last resolve (LRU order).
    last_used: u64,
    /// Consecutive load failures since the last successful load.
    failures: u32,
    /// Set while the model is quarantined; cleared by the next successful
    /// load (a stale past instant no longer blocks).
    quarantined_until: Option<Instant>,
    /// The pre-swap backing file — the last path other than `path` known to
    /// load. A failed reload falls back to it rather than going dark.
    fallback: Option<PathBuf>,
}

struct Inner {
    slots: Vec<Slot>,
    tick: u64,
}

/// The name-keyed model registry (see the [module docs](self)).
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    byte_budget: usize,
    quarantine_after: u32,
    quarantine_cooldown: Duration,
    faults: FaultPlan,
    resident_bytes: AtomicU64,
    loads: AtomicU64,
    evictions: AtomicU64,
    swaps: AtomicU64,
    io_errors: AtomicU64,
    corrupt_loads: AtomicU64,
    retries: AtomicU64,
    quarantines: AtomicU64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("byte_budget", &self.byte_budget)
            .field("resident_bytes", &self.resident_bytes.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new(RegistryConfig::default())
    }
}

impl ModelRegistry {
    /// Creates an empty registry under `cfg.byte_budget`.
    pub fn new(cfg: RegistryConfig) -> Self {
        Self {
            inner: Mutex::new(Inner { slots: Vec::new(), tick: 0 }),
            byte_budget: cfg.byte_budget,
            quarantine_after: cfg.quarantine_after,
            quarantine_cooldown: cfg.quarantine_cooldown,
            faults: cfg.faults,
            resident_bytes: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            corrupt_loads: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
        }
    }

    /// Registers a file-backed model under `name` without loading it — the
    /// first [`Self::resolve`] does. Any `SCALOCEN` version the engine can
    /// load (v1 f32, v2/v3 quantised) is eligible.
    ///
    /// # Errors
    ///
    /// [`RegistryError::AlreadyRegistered`] if the name is taken.
    pub fn register(
        &self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        let mut inner = self.lock();
        if inner.slots.iter().any(|s| &*s.name == name.as_str()) {
            return Err(RegistryError::AlreadyRegistered { name });
        }
        inner.slots.push(Slot {
            name: name.into(),
            path: Some(path.into()),
            generation: 1,
            resident: None,
            last_used: 0,
            failures: 0,
            quarantined_until: None,
            fallback: None,
        });
        Ok(())
    }

    /// Installs an in-process engine under `name`, **pinned**: with no
    /// backing file it is never evicted and cannot be lazily reloaded.
    ///
    /// # Errors
    ///
    /// [`RegistryError::AlreadyRegistered`] if the name is taken.
    pub fn install(
        &self,
        name: impl Into<String>,
        engine: LocatorEngine,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        let bytes = engine.memory_footprint();
        let mut inner = self.lock();
        if inner.slots.iter().any(|s| &*s.name == name.as_str()) {
            return Err(RegistryError::AlreadyRegistered { name });
        }
        inner.slots.push(Slot {
            name: name.into(),
            path: None,
            generation: 1,
            resident: Some(Resident { engine: Arc::new(engine), bytes }),
            last_used: 0,
            failures: 0,
            quarantined_until: None,
            fallback: None,
        });
        self.resident_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Resolves `name` to a handle pinning the current generation, loading
    /// the model file on a cold hit and evicting LRU models to the byte
    /// budget afterwards. The registry lock is released across the file
    /// load, so resolves of other (resident) models are never blocked by a
    /// cold load.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered name,
    /// [`RegistryError::Load`] when reading the model file fails (the slot
    /// stays registered — a later resolve retries),
    /// [`RegistryError::Quarantined`] while the model is cooling down after
    /// repeated load failures.
    pub fn resolve(&self, name: &str) -> Result<ModelHandle, RegistryError> {
        let (slot_name, path, generation, retrying, fallback) = {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let Some(slot) = inner.slots.iter_mut().find(|s| &*s.name == name) else {
                return Err(RegistryError::UnknownModel { name: name.into() });
            };
            slot.last_used = tick;
            if let Some(resident) = &slot.resident {
                return Ok(ModelHandle {
                    name: Arc::clone(&slot.name),
                    generation: slot.generation,
                    engine: Arc::clone(&resident.engine),
                });
            }
            // Cold load needed: a quarantined model fails fast until its
            // cooldown expires, at which point exactly one resolve gets to
            // retry the real load.
            if let Some(until) = slot.quarantined_until {
                let now = Instant::now();
                if now < until {
                    return Err(RegistryError::Quarantined {
                        name: name.into(),
                        retry_in: until - now,
                    });
                }
            }
            let path = slot.path.clone().expect("a non-resident slot is always file-backed");
            let retrying = slot.failures > 0 || slot.quarantined_until.is_some();
            (Arc::clone(&slot.name), path, slot.generation, retrying, slot.fallback.clone())
        };

        // Cold: load outside the lock.
        if retrying {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
        let engine = match self.load_file(&slot_name, &path) {
            Ok(engine) => engine,
            Err(error) => {
                self.note_load_failure(&slot_name);
                // Failed reload (e.g. after an eviction, against a file
                // that went bad post-swap): fall back to re-faulting the
                // last known-good file instead of going dark.
                if let Some(fb) = fallback.filter(|fb| fb != &path) {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if let Ok(engine) = self.load_file(&slot_name, &fb) {
                        return Ok(self.install_loaded(&slot_name, engine, Some(fb)));
                    }
                }
                return Err(error);
            }
        };

        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let Some(slot) = inner.slots.iter_mut().find(|s| Arc::ptr_eq(&s.name, &slot_name)) else {
            // Deregistered while loading; serve the orphan load anyway.
            return Ok(ModelHandle { name: slot_name, generation, engine: Arc::new(engine) });
        };
        slot.last_used = tick;
        if let Some(resident) = &slot.resident {
            // A racing resolve (or swap) installed weights first — theirs
            // win, ours are dropped; every caller shares one Arc per
            // (name, generation) so batches coalesce.
            return Ok(ModelHandle {
                name: Arc::clone(&slot.name),
                generation: slot.generation,
                engine: Arc::clone(&resident.engine),
            });
        }
        slot.failures = 0;
        slot.quarantined_until = None;
        let bytes = engine.memory_footprint();
        let generation = slot.generation;
        let engine = Arc::new(engine);
        slot.resident = Some(Resident { engine: Arc::clone(&engine), bytes });
        self.resident_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let handle = ModelHandle { name: Arc::clone(&slot.name), generation, engine };
        self.evict_to_budget(&mut inner, &handle.name);
        Ok(handle)
    }

    /// Loads `path` and atomically installs it as `name`'s next generation:
    /// resolves ordered after the swap see the new weights, requests already
    /// holding a handle complete bit-identically on the old ones (kept
    /// alive by their `Arc`s until they drain). Works on pinned models too
    /// — the slot becomes file-backed. Returns the new generation.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered name;
    /// [`RegistryError::Load`] if reading the file fails — the old
    /// generation keeps serving untouched.
    pub fn swap(&self, name: &str, path: impl Into<PathBuf>) -> Result<u64, RegistryError> {
        let path = path.into();
        {
            // Fail fast (and avoid a wasted load) for unknown names.
            let inner = self.lock();
            if !inner.slots.iter().any(|s| &*s.name == name) {
                return Err(RegistryError::UnknownModel { name: name.into() });
            }
        }
        let engine = self.load_file(name, &path)?;
        let bytes = engine.memory_footprint();

        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let Some(slot) = inner.slots.iter_mut().find(|s| &*s.name == name) else {
            return Err(RegistryError::UnknownModel { name: name.into() });
        };
        if let Some(old) = slot.resident.take() {
            self.resident_bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
        }
        // The outgoing file is the proven-good fallback should the new one
        // fail a reload after an eviction.
        if let Some(old_path) = slot.path.take() {
            if old_path != path {
                slot.fallback = Some(old_path);
            }
        }
        slot.generation += 1;
        slot.path = Some(path);
        slot.last_used = tick;
        slot.failures = 0;
        slot.quarantined_until = None;
        slot.resident = Some(Resident { engine: Arc::new(engine), bytes });
        self.resident_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let generation = slot.generation;
        let name = Arc::clone(&slot.name);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.evict_to_budget(&mut inner, &name);
        Ok(generation)
    }

    /// Drops `name`'s resident weights (a later resolve reloads them from
    /// the backing file, same generation, bit-identical scores). In-flight
    /// handles keep the weights alive until they drain. A no-op if the
    /// model is registered but not resident.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered name,
    /// [`RegistryError::NotEvictable`] for a pinned model (nowhere to
    /// reload from).
    pub fn evict(&self, name: &str) -> Result<(), RegistryError> {
        let mut inner = self.lock();
        let Some(slot) = inner.slots.iter_mut().find(|s| &*s.name == name) else {
            return Err(RegistryError::UnknownModel { name: name.into() });
        };
        if slot.path.is_none() {
            return Err(RegistryError::NotEvictable { name: name.into() });
        }
        if let Some(old) = slot.resident.take() {
            self.resident_bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The registered model names, in registration order.
    pub fn names(&self) -> Vec<Arc<str>> {
        self.lock().slots.iter().map(|s| Arc::clone(&s.name)).collect()
    }

    /// Whether `name` is registered (resident or not).
    pub fn contains(&self, name: &str) -> bool {
        self.lock().slots.iter().any(|s| &*s.name == name)
    }

    /// A point-in-time copy of the registry gauges and counters.
    pub fn stats(&self) -> RegistryStats {
        let (models, resident_models) = {
            let inner = self.lock();
            (inner.slots.len(), inner.slots.iter().filter(|s| s.resident.is_some()).count())
        };
        RegistryStats {
            models,
            resident_models,
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            byte_budget: if self.byte_budget == usize::MAX {
                u64::MAX
            } else {
                self.byte_budget as u64
            },
            loads: self.loads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            corrupt_loads: self.corrupt_loads.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
        }
    }

    // -- internals ----------------------------------------------------------

    /// Poison-tolerant lock: the registry's invariants hold at every await
    /// point inside the lock, so a panicking peer leaves consistent state.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn load_file(&self, name: &str, path: &Path) -> Result<LocatorEngine, RegistryError> {
        match self.faults.check(FaultSite::ModelLoad) {
            Some(FaultKind::IoError) => {
                let error = PersistError::Io("injected model-load I/O fault".into());
                self.classify_load_error(&error);
                return Err(RegistryError::Load { name: name.into(), error });
            }
            Some(FaultKind::Stall(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultKind::CorruptBytes) => {
                // Read the real file, flip one byte mid-payload, and parse
                // from memory: against a checksummed v4 file this must
                // surface as a typed `Corrupt`, never as garbage weights.
                let result = std::fs::read(path)
                    .map_err(|e| PersistError::Io(e.to_string()))
                    .and_then(|mut bytes| {
                        if !bytes.is_empty() {
                            let mid = bytes.len() / 2;
                            bytes[mid] ^= 0x01;
                        }
                        LocatorEngine::load_from(&bytes[..])
                    });
                return match result {
                    Ok(engine) => {
                        // Only possible for legacy pre-checksum formats —
                        // precisely the gap v4 closes.
                        self.loads.fetch_add(1, Ordering::Relaxed);
                        Ok(engine)
                    }
                    Err(error) => {
                        self.classify_load_error(&error);
                        Err(RegistryError::Load { name: name.into(), error })
                    }
                };
            }
            Some(_) | None => {}
        }
        match LocatorEngine::load(path) {
            Ok(engine) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                Ok(engine)
            }
            Err(error) => {
                self.classify_load_error(&error);
                Err(RegistryError::Load { name: name.into(), error })
            }
        }
    }

    fn classify_load_error(&self, error: &PersistError) {
        match error {
            PersistError::Io(_) => self.io_errors.fetch_add(1, Ordering::Relaxed),
            PersistError::BadMagic
            | PersistError::UnsupportedVersion(_)
            | PersistError::Corrupt(_) => self.corrupt_loads.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records one load failure against `name`; the
    /// [`RegistryConfig::quarantine_after`]-th consecutive failure starts
    /// the cooldown.
    fn note_load_failure(&self, name: &Arc<str>) {
        if self.quarantine_after == 0 {
            return;
        }
        let mut inner = self.lock();
        let Some(slot) = inner.slots.iter_mut().find(|s| Arc::ptr_eq(&s.name, name)) else {
            return;
        };
        slot.failures += 1;
        if slot.failures >= self.quarantine_after {
            slot.failures = 0;
            slot.quarantined_until = Some(Instant::now() + self.quarantine_cooldown);
            self.quarantines.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Installs a fallback-loaded engine as `name`'s next generation (the
    /// weights differ from the failed target, so the generation must move)
    /// and repoints the slot at `new_path`.
    fn install_loaded(
        &self,
        name: &Arc<str>,
        engine: LocatorEngine,
        new_path: Option<PathBuf>,
    ) -> ModelHandle {
        let bytes = engine.memory_footprint();
        let engine = Arc::new(engine);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let Some(slot) = inner.slots.iter_mut().find(|s| Arc::ptr_eq(&s.name, name)) else {
            // Deregistered while loading; serve the orphan load anyway.
            return ModelHandle { name: Arc::clone(name), generation: 0, engine };
        };
        slot.last_used = tick;
        if let Some(resident) = &slot.resident {
            // A racing resolve beat the fallback; theirs win.
            return ModelHandle {
                name: Arc::clone(&slot.name),
                generation: slot.generation,
                engine: Arc::clone(&resident.engine),
            };
        }
        if let Some(new_path) = new_path {
            slot.path = Some(new_path);
        }
        slot.fallback = None;
        slot.failures = 0;
        slot.quarantined_until = None;
        slot.generation += 1;
        slot.resident = Some(Resident { engine: Arc::clone(&engine), bytes });
        self.resident_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let handle =
            ModelHandle { name: Arc::clone(&slot.name), generation: slot.generation, engine };
        self.evict_to_budget(&mut inner, &handle.name);
        handle
    }

    /// Evicts least-recently-used file-backed residents until the total is
    /// within budget. `keep` (the slot just touched) is never evicted, so a
    /// single model larger than the whole budget still serves.
    fn evict_to_budget(&self, inner: &mut Inner, keep: &Arc<str>) {
        while self.resident_bytes.load(Ordering::Relaxed) > self.byte_budget as u64 {
            let Some(victim) = inner
                .slots
                .iter_mut()
                .filter(|s| s.resident.is_some() && s.path.is_some() && !Arc::ptr_eq(&s.name, keep))
                .min_by_key(|s| s.last_used)
            else {
                return; // nothing evictable left; allow over-budget
            };
            let old = victim.resident.take().expect("victim filtered on residency");
            self.resident_bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}
