//! Name-keyed model registry with lazy loading, LRU eviction and
//! non-disruptive hot swap.
//!
//! The paper's deployment is a scenario *matrix* — per device, per cipher,
//! sync vs desynchronised — so one engine process serves many models that
//! come and go while requests are in flight. The registry is the piece that
//! makes that safe:
//!
//! * **Names, not indices.** Models are keyed by scenario name (`"xmega-aes"`,
//!   `"stm32-present-desync"`), the identity carried on the wire. Slot order
//!   never leaks into the API, so swapping or evicting one model can never
//!   silently re-address another.
//! * **Lazy loading.** [`ModelRegistry::register`] records a model file path
//!   without touching the disk; the first [`ModelRegistry::resolve`] loads it
//!   through [`sca_locator::LocatorEngine::load`] (any `SCALOCEN` version).
//!   The registry lock is **not** held across file I/O — concurrent resolves
//!   of other models proceed, and two racing loads of the same model keep
//!   the winner's engine.
//! * **Generation pinning.** A [`ModelHandle`] carries an
//!   [`Arc<LocatorEngine>`] plus the generation it resolved. Requests hold
//!   their handle until they complete, so [`ModelRegistry::swap`] can install
//!   a new generation atomically while admitted requests finish
//!   **bit-identically** on the weights they were admitted against; nothing
//!   is ever torn out from under a running batch.
//! * **Byte-budgeted residency.** Every resident model is accounted at
//!   [`sca_locator::LocatorEngine::memory_footprint`] (exact weight bytes
//!   plus a deterministic workspace estimate). When a load pushes the total
//!   over [`RegistryConfig::byte_budget`], least-recently-used file-backed
//!   models are evicted until it fits; pinned models (installed in-process
//!   via [`ModelRegistry::install`], no backing file) are never evicted.
//!   Eviction drops the registry's reference only — in-flight handles keep
//!   the weights alive until their requests drain — and does **not** bump
//!   the generation: a reload serves bit-identical scores.
//!
//! Counters (loads, evictions, swaps) and the resident-bytes gauge are
//! lock-free reads, surfaced through the service's
//! [`MetricsSnapshot`](crate::MetricsSnapshot).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use sca_locator::{LocatorEngine, PersistError};

/// Registry sizing; `Default` is an unbounded residency budget.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Total resident-model byte budget (weights + workspace estimate per
    /// [`LocatorEngine::memory_footprint`]). `usize::MAX` disables
    /// eviction. The budget is enforced against *evictable* (file-backed)
    /// models: the most recently touched model always stays resident even
    /// if it alone exceeds the budget, and pinned models do not count
    /// against evictability (they can push the total over budget but are
    /// never evicted to make room).
    pub byte_budget: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self { byte_budget: usize::MAX }
    }
}

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No model is registered under the name.
    UnknownModel {
        /// The unresolved name.
        name: String,
    },
    /// Loading the model file failed (missing, foreign, corrupt — see
    /// [`PersistError`]).
    Load {
        /// The model whose load failed.
        name: String,
        /// The underlying persistence error.
        error: PersistError,
    },
    /// [`ModelRegistry::register`]/[`install`](ModelRegistry::install) with
    /// a name that is already taken (use [`ModelRegistry::swap`] to replace
    /// a model's weights).
    AlreadyRegistered {
        /// The contested name.
        name: String,
    },
    /// The operation needs a file-backed model but the name is pinned
    /// (installed in-process, nowhere to reload from).
    NotEvictable {
        /// The pinned model.
        name: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel { name } => write!(f, "unknown model {name:?}"),
            RegistryError::Load { name, error } => {
                write!(f, "loading model {name:?} failed: {error}")
            }
            RegistryError::AlreadyRegistered { name } => {
                write!(f, "model {name:?} is already registered")
            }
            RegistryError::NotEvictable { name } => {
                write!(f, "model {name:?} is pinned in-process (no backing file)")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Load { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A resolved model: the engine pinned at the generation it resolved.
///
/// Handles are cheap to clone (`Arc` bumps). A request holds its handle for
/// its whole lifetime, so swaps and evictions never affect work already
/// admitted — the weights stay alive until the last handle drops.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    name: Arc<str>,
    generation: u64,
    engine: Arc<LocatorEngine>,
}

impl ModelHandle {
    /// The registered scenario name.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The generation this handle pinned (bumped by swaps, not reloads).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The pinned engine.
    pub fn engine(&self) -> &Arc<LocatorEngine> {
        &self.engine
    }

    /// Whether two handles pin the exact same resident weights (the
    /// scheduler's batch-compatibility test).
    pub fn same_weights(&self, other: &ModelHandle) -> bool {
        Arc::ptr_eq(&self.engine, &other.engine)
    }
}

/// A point-in-time copy of the registry gauges and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Registered models (resident or not).
    pub models: usize,
    /// Models currently holding weights in memory.
    pub resident_models: usize,
    /// Total bytes of resident models ([`LocatorEngine::memory_footprint`]).
    pub resident_bytes: u64,
    /// The configured byte budget (`u64::MAX` = unbounded).
    pub byte_budget: u64,
    /// Model files loaded (cold loads + reloads + swap loads).
    pub loads: u64,
    /// Models evicted to fit the byte budget (or explicitly).
    pub evictions: u64,
    /// Generations installed by [`ModelRegistry::swap`].
    pub swaps: u64,
}

struct Resident {
    engine: Arc<LocatorEngine>,
    bytes: usize,
}

struct Slot {
    name: Arc<str>,
    /// Backing file; `None` pins the model (installed in-process).
    path: Option<PathBuf>,
    /// Starts at 1; bumped only by [`ModelRegistry::swap`].
    generation: u64,
    resident: Option<Resident>,
    /// Tick of the last resolve (LRU order).
    last_used: u64,
}

struct Inner {
    slots: Vec<Slot>,
    tick: u64,
}

/// The name-keyed model registry (see the [module docs](self)).
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    byte_budget: usize,
    resident_bytes: AtomicU64,
    loads: AtomicU64,
    evictions: AtomicU64,
    swaps: AtomicU64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("byte_budget", &self.byte_budget)
            .field("resident_bytes", &self.resident_bytes.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new(RegistryConfig::default())
    }
}

impl ModelRegistry {
    /// Creates an empty registry under `cfg.byte_budget`.
    pub fn new(cfg: RegistryConfig) -> Self {
        Self {
            inner: Mutex::new(Inner { slots: Vec::new(), tick: 0 }),
            byte_budget: cfg.byte_budget,
            resident_bytes: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        }
    }

    /// Registers a file-backed model under `name` without loading it — the
    /// first [`Self::resolve`] does. Any `SCALOCEN` version the engine can
    /// load (v1 f32, v2/v3 quantised) is eligible.
    ///
    /// # Errors
    ///
    /// [`RegistryError::AlreadyRegistered`] if the name is taken.
    pub fn register(
        &self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        let mut inner = self.lock();
        if inner.slots.iter().any(|s| &*s.name == name.as_str()) {
            return Err(RegistryError::AlreadyRegistered { name });
        }
        inner.slots.push(Slot {
            name: name.into(),
            path: Some(path.into()),
            generation: 1,
            resident: None,
            last_used: 0,
        });
        Ok(())
    }

    /// Installs an in-process engine under `name`, **pinned**: with no
    /// backing file it is never evicted and cannot be lazily reloaded.
    ///
    /// # Errors
    ///
    /// [`RegistryError::AlreadyRegistered`] if the name is taken.
    pub fn install(
        &self,
        name: impl Into<String>,
        engine: LocatorEngine,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        let bytes = engine.memory_footprint();
        let mut inner = self.lock();
        if inner.slots.iter().any(|s| &*s.name == name.as_str()) {
            return Err(RegistryError::AlreadyRegistered { name });
        }
        inner.slots.push(Slot {
            name: name.into(),
            path: None,
            generation: 1,
            resident: Some(Resident { engine: Arc::new(engine), bytes }),
            last_used: 0,
        });
        self.resident_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Resolves `name` to a handle pinning the current generation, loading
    /// the model file on a cold hit and evicting LRU models to the byte
    /// budget afterwards. The registry lock is released across the file
    /// load, so resolves of other (resident) models are never blocked by a
    /// cold load.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered name,
    /// [`RegistryError::Load`] when reading the model file fails (the slot
    /// stays registered — a later resolve retries).
    pub fn resolve(&self, name: &str) -> Result<ModelHandle, RegistryError> {
        let (slot_name, path, generation) = {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let Some(slot) = inner.slots.iter_mut().find(|s| &*s.name == name) else {
                return Err(RegistryError::UnknownModel { name: name.into() });
            };
            slot.last_used = tick;
            if let Some(resident) = &slot.resident {
                return Ok(ModelHandle {
                    name: Arc::clone(&slot.name),
                    generation: slot.generation,
                    engine: Arc::clone(&resident.engine),
                });
            }
            let path = slot.path.clone().expect("a non-resident slot is always file-backed");
            (Arc::clone(&slot.name), path, slot.generation)
        };

        // Cold: load outside the lock.
        let engine = self.load_file(&slot_name, &path)?;
        let bytes = engine.memory_footprint();

        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let Some(slot) = inner.slots.iter_mut().find(|s| Arc::ptr_eq(&s.name, &slot_name)) else {
            // Deregistered while loading; serve the orphan load anyway.
            return Ok(ModelHandle { name: slot_name, generation, engine: Arc::new(engine) });
        };
        slot.last_used = tick;
        if let Some(resident) = &slot.resident {
            // A racing resolve (or swap) installed weights first — theirs
            // win, ours are dropped; every caller shares one Arc per
            // (name, generation) so batches coalesce.
            return Ok(ModelHandle {
                name: Arc::clone(&slot.name),
                generation: slot.generation,
                engine: Arc::clone(&resident.engine),
            });
        }
        let generation = slot.generation;
        let engine = Arc::new(engine);
        slot.resident = Some(Resident { engine: Arc::clone(&engine), bytes });
        self.resident_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let handle = ModelHandle { name: Arc::clone(&slot.name), generation, engine };
        self.evict_to_budget(&mut inner, &handle.name);
        Ok(handle)
    }

    /// Loads `path` and atomically installs it as `name`'s next generation:
    /// resolves ordered after the swap see the new weights, requests already
    /// holding a handle complete bit-identically on the old ones (kept
    /// alive by their `Arc`s until they drain). Works on pinned models too
    /// — the slot becomes file-backed. Returns the new generation.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered name;
    /// [`RegistryError::Load`] if reading the file fails — the old
    /// generation keeps serving untouched.
    pub fn swap(&self, name: &str, path: impl Into<PathBuf>) -> Result<u64, RegistryError> {
        let path = path.into();
        {
            // Fail fast (and avoid a wasted load) for unknown names.
            let inner = self.lock();
            if !inner.slots.iter().any(|s| &*s.name == name) {
                return Err(RegistryError::UnknownModel { name: name.into() });
            }
        }
        let engine = self.load_file(name, &path)?;
        let bytes = engine.memory_footprint();

        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let Some(slot) = inner.slots.iter_mut().find(|s| &*s.name == name) else {
            return Err(RegistryError::UnknownModel { name: name.into() });
        };
        if let Some(old) = slot.resident.take() {
            self.resident_bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
        }
        slot.generation += 1;
        slot.path = Some(path);
        slot.last_used = tick;
        slot.resident = Some(Resident { engine: Arc::new(engine), bytes });
        self.resident_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let generation = slot.generation;
        let name = Arc::clone(&slot.name);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.evict_to_budget(&mut inner, &name);
        Ok(generation)
    }

    /// Drops `name`'s resident weights (a later resolve reloads them from
    /// the backing file, same generation, bit-identical scores). In-flight
    /// handles keep the weights alive until they drain. A no-op if the
    /// model is registered but not resident.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered name,
    /// [`RegistryError::NotEvictable`] for a pinned model (nowhere to
    /// reload from).
    pub fn evict(&self, name: &str) -> Result<(), RegistryError> {
        let mut inner = self.lock();
        let Some(slot) = inner.slots.iter_mut().find(|s| &*s.name == name) else {
            return Err(RegistryError::UnknownModel { name: name.into() });
        };
        if slot.path.is_none() {
            return Err(RegistryError::NotEvictable { name: name.into() });
        }
        if let Some(old) = slot.resident.take() {
            self.resident_bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The registered model names, in registration order.
    pub fn names(&self) -> Vec<Arc<str>> {
        self.lock().slots.iter().map(|s| Arc::clone(&s.name)).collect()
    }

    /// Whether `name` is registered (resident or not).
    pub fn contains(&self, name: &str) -> bool {
        self.lock().slots.iter().any(|s| &*s.name == name)
    }

    /// A point-in-time copy of the registry gauges and counters.
    pub fn stats(&self) -> RegistryStats {
        let (models, resident_models) = {
            let inner = self.lock();
            (inner.slots.len(), inner.slots.iter().filter(|s| s.resident.is_some()).count())
        };
        RegistryStats {
            models,
            resident_models,
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            byte_budget: if self.byte_budget == usize::MAX {
                u64::MAX
            } else {
                self.byte_budget as u64
            },
            loads: self.loads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
        }
    }

    // -- internals ----------------------------------------------------------

    /// Poison-tolerant lock: the registry's invariants hold at every await
    /// point inside the lock, so a panicking peer leaves consistent state.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn load_file(&self, name: &str, path: &Path) -> Result<LocatorEngine, RegistryError> {
        let engine = LocatorEngine::load(path)
            .map_err(|error| RegistryError::Load { name: name.into(), error })?;
        self.loads.fetch_add(1, Ordering::Relaxed);
        Ok(engine)
    }

    /// Evicts least-recently-used file-backed residents until the total is
    /// within budget. `keep` (the slot just touched) is never evicted, so a
    /// single model larger than the whole budget still serves.
    fn evict_to_budget(&self, inner: &mut Inner, keep: &Arc<str>) {
        while self.resident_bytes.load(Ordering::Relaxed) > self.byte_budget as u64 {
            let Some(victim) = inner
                .slots
                .iter_mut()
                .filter(|s| s.resident.is_some() && s.path.is_some() && !Arc::ptr_eq(&s.name, keep))
                .min_by_key(|s| s.last_used)
            else {
                return; // nothing evictable left; allow over-budget
            };
            let old = victim.resident.take().expect("victim filtered on residency");
            self.resident_bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}
