//! Deterministic, seed-driven fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a schedule of faults keyed by *operation index* at a
//! small set of well-defined injection sites ([`FaultSite`]): trace-source
//! reads, model-file loads in the registry, socket reads/writes in the TCP
//! layer, and worker scoring. Each time the stack passes an injection site it
//! asks the plan whether this operation is scheduled to fault; the plan
//! answers with a [`FaultKind`] (or nothing) and keeps per-site counters of
//! operations seen and faults fired, so a chaos harness can reconcile every
//! injected fault against the service's typed errors and metrics.
//!
//! Two properties make the harness usable:
//!
//! - **Empty plans are free.** [`FaultPlan::default`] holds no allocation and
//!   every check is a single `Option::is_none` test, so production configs
//!   pay nothing. The `fault-plan-confined` xcheck rule additionally enforces
//!   that non-test library code never *constructs* a non-empty plan.
//! - **Schedules are deterministic.** [`FaultPlan::seeded`] derives the fault
//!   schedule from a seed via splitmix64; the same seed always schedules the
//!   same (site, operation-index, kind) triples. What varies across runs is
//!   only *which request* a given operation index lands on — which is exactly
//!   the interleaving a chaos suite wants randomized-but-reproducible.
//!
//! Cloning a plan is cheap and **shares** the schedule and counters: the
//! service, registry and server can all carry clones of one plan and the
//! harness reconciles fired counts in one place.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sca_trace::{TraceError, TraceSource};

/// What an injected fault does at the site where it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with a typed I/O error.
    IoError,
    /// A read returns fewer bytes than asked for (sockets report EOF; trace
    /// sources report a typed truncation error).
    ShortRead,
    /// The operation stalls for the given number of milliseconds, then
    /// proceeds normally — exercises timeouts and deadline expiry.
    Stall(u64),
    /// The bytes produced by the operation are deliberately flipped —
    /// exercises checksum validation (model files) and frame resync
    /// (sockets).
    CorruptBytes,
    /// The scoring worker panics mid-batch — exercises panic containment.
    ScorePanic,
}

/// Where in the stack a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A [`TraceSource::fill`] call feeding the scheduler.
    TraceRead,
    /// A model-file load (or reload) inside the [`crate::ModelRegistry`].
    ModelLoad,
    /// A socket read in the TCP server.
    NetRead,
    /// A socket write in the TCP server.
    NetWrite,
    /// A worker scoring one batch.
    Score,
}

/// Number of distinct [`FaultSite`]s; sizes the per-site state arrays.
const SITES: usize = 5;

impl FaultSite {
    const ALL: [FaultSite; SITES] = [
        FaultSite::TraceRead,
        FaultSite::ModelLoad,
        FaultSite::NetRead,
        FaultSite::NetWrite,
        FaultSite::Score,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::TraceRead => 0,
            FaultSite::ModelLoad => 1,
            FaultSite::NetRead => 2,
            FaultSite::NetWrite => 3,
            FaultSite::Score => 4,
        }
    }

    /// The kinds that make sense at this site when deriving a schedule from
    /// a seed. `CorruptBytes` is deliberately excluded from `NetRead`/
    /// `NetWrite` seeded schedules: corrupting request payload bytes would
    /// make the server compute — correctly — over wrong samples, which a
    /// client cannot distinguish from an unfaulted response, breaking the
    /// chaos suite's bit-parity invariant. Targeted tests can still schedule
    /// it explicitly through [`FaultPlanBuilder`].
    fn seedable_kinds(self, stall_ms: u64) -> &'static [FaultKind] {
        // `Stall(0)` entries are placeholders: `seeded` patches in the real
        // stall duration when it draws one of them.
        match self {
            FaultSite::TraceRead => {
                if stall_ms == 0 {
                    &[FaultKind::IoError, FaultKind::ShortRead]
                } else {
                    &[FaultKind::IoError, FaultKind::ShortRead, FaultKind::Stall(0)]
                }
            }
            FaultSite::ModelLoad => {
                if stall_ms == 0 {
                    &[FaultKind::IoError, FaultKind::CorruptBytes]
                } else {
                    &[FaultKind::IoError, FaultKind::CorruptBytes, FaultKind::Stall(0)]
                }
            }
            FaultSite::NetRead => {
                if stall_ms == 0 {
                    &[FaultKind::IoError, FaultKind::ShortRead]
                } else {
                    &[FaultKind::IoError, FaultKind::ShortRead, FaultKind::Stall(0)]
                }
            }
            FaultSite::NetWrite => {
                if stall_ms == 0 {
                    &[FaultKind::IoError]
                } else {
                    &[FaultKind::IoError, FaultKind::Stall(0)]
                }
            }
            FaultSite::Score => {
                if stall_ms == 0 {
                    &[FaultKind::ScorePanic]
                } else {
                    &[FaultKind::ScorePanic, FaultKind::Stall(0)]
                }
            }
        }
    }
}

/// Per-site schedule plus live counters.
#[derive(Debug)]
struct SiteState {
    /// Operation index → fault to inject on that operation.
    schedule: BTreeMap<u64, FaultKind>,
    /// Operations that have passed this site (faulted or not).
    ops: AtomicU64,
    /// Faults actually fired at this site.
    fired: AtomicU64,
}

#[derive(Debug)]
struct PlanInner {
    sites: [SiteState; SITES],
}

/// A deterministic schedule of injectable faults, shared by clone.
///
/// The default plan is empty and injects nothing; see the
/// [module docs](self) for the full model.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

impl FaultPlan {
    /// Start building an explicit plan with per-(site, op, kind) entries.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder { schedules: Default::default() }
    }

    /// Derive a randomized-but-reproducible plan from `seed`: for every
    /// site, `faults_per_site` operations are picked uniformly from the
    /// first `op_horizon` operations and assigned a kind applicable to that
    /// site. `stall_ms > 0` makes `Stall` eligible with that duration;
    /// `stall_ms == 0` schedules only fail-fast kinds.
    pub fn seeded(seed: u64, faults_per_site: u32, op_horizon: u64, stall_ms: u64) -> Self {
        assert!(op_horizon > 0, "op_horizon must be positive");
        let mut rng = splitmix64(seed ^ 0x5ca1_0c8a_fa17_1a11);
        let mut builder = FaultPlan::builder();
        for site in FaultSite::ALL {
            let kinds = site.seedable_kinds(stall_ms);
            let mut scheduled = 0;
            // Reject duplicate op indices; the horizon is far larger than
            // faults_per_site in practice, so this terminates quickly.
            let mut guard = 0u32;
            while scheduled < faults_per_site && guard < faults_per_site.saturating_mul(64) {
                guard += 1;
                rng = splitmix64(rng);
                let op = rng % op_horizon;
                rng = splitmix64(rng);
                let mut kind = kinds[(rng % kinds.len() as u64) as usize];
                if let FaultKind::Stall(_) = kind {
                    kind = FaultKind::Stall(stall_ms);
                }
                if builder.schedules[site.index()].insert(op, kind).is_none() {
                    scheduled += 1;
                }
            }
        }
        builder.build()
    }

    /// `true` when the plan schedules nothing and every check is a no-op.
    pub fn is_empty(&self) -> bool {
        self.inner.is_none()
    }

    /// Count one operation at `site` and return the fault scheduled for it,
    /// if any. On the empty plan this neither counts nor allocates.
    pub(crate) fn check(&self, site: FaultSite) -> Option<FaultKind> {
        let state = &self.inner.as_ref()?.sites[site.index()];
        let op = state.ops.fetch_add(1, Ordering::Relaxed);
        let kind = state.schedule.get(&op).copied();
        if kind.is_some() {
            state.fired.fetch_add(1, Ordering::Relaxed);
        }
        kind
    }

    /// Number of faults fired so far at `site`.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.sites[site.index()].fired.load(Ordering::Relaxed))
    }

    /// Number of operations observed so far at `site` (faulted or not).
    pub fn ops(&self, site: FaultSite) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.sites[site.index()].ops.load(Ordering::Relaxed))
    }

    /// Number of faults scheduled (not necessarily yet fired) at `site`.
    pub fn scheduled(&self, site: FaultSite) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.sites[site.index()].schedule.len() as u64)
    }

    /// The scheduled kinds at `site` together with their operation indices,
    /// in operation order — lets a harness predict which faults a
    /// deterministic operation sequence will hit.
    pub fn schedule(&self, site: FaultSite) -> Vec<(u64, FaultKind)> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            inner.sites[site.index()].schedule.iter().map(|(op, kind)| (*op, *kind)).collect()
        })
    }
}

/// Builder for explicit [`FaultPlan`]s (test code only — see the
/// `fault-plan-confined` xcheck rule).
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    schedules: [BTreeMap<u64, FaultKind>; SITES],
}

impl FaultPlanBuilder {
    /// Schedule `kind` to fire on the `op`-th operation (0-based) at `site`.
    /// Scheduling the same (site, op) twice keeps the later kind.
    pub fn fault(mut self, site: FaultSite, op: u64, kind: FaultKind) -> Self {
        self.schedules[site.index()].insert(op, kind);
        self
    }

    /// Finish the plan. A builder with no entries yields the empty plan.
    pub fn build(self) -> FaultPlan {
        if self.schedules.iter().all(BTreeMap::is_empty) {
            return FaultPlan::default();
        }
        let mut schedules = self.schedules.into_iter();
        let sites = std::array::from_fn(|_| SiteState {
            schedule: schedules.next().expect("one schedule per site"),
            ops: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
        FaultPlan { inner: Some(Arc::new(PlanInner { sites })) }
    }
}

/// splitmix64 step — the repo's standard dependency-free mixer (also used
/// by the net client's deterministic backoff jitter).
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`TraceSource`] wrapper that injects [`FaultSite::TraceRead`] faults in
/// front of the wrapped source's `fill`.
pub(crate) struct FaultedSource {
    inner: Box<dyn TraceSource + Send>,
    plan: FaultPlan,
}

impl FaultedSource {
    pub(crate) fn new(inner: Box<dyn TraceSource + Send>, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }
}

impl TraceSource for FaultedSource {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn fill(&self, start: usize, out: &mut [f32]) -> Result<(), TraceError> {
        match self.plan.check(FaultSite::TraceRead) {
            Some(FaultKind::IoError) => {
                return Err(TraceError::Io("injected trace-read I/O fault".into()));
            }
            Some(FaultKind::ShortRead) => {
                return Err(TraceError::Io(format!(
                    "injected short read: trace source ended before sample {}",
                    start + out.len()
                )));
            }
            Some(FaultKind::Stall(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultKind::CorruptBytes | FaultKind::ScorePanic) | None => {}
        }
        self.inner.fill(start, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_checks_are_no_ops_and_count_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for site in FaultSite::ALL {
            assert_eq!(plan.check(site), None);
            assert_eq!(plan.ops(site), 0, "empty plan must not count operations");
            assert_eq!(plan.fired(site), 0);
            assert_eq!(plan.scheduled(site), 0);
        }
        // An entry-less builder collapses back to the empty plan.
        assert!(FaultPlan::builder().build().is_empty());
    }

    #[test]
    fn explicit_schedule_fires_on_the_exact_operation_index() {
        let plan = FaultPlan::builder()
            .fault(FaultSite::Score, 2, FaultKind::ScorePanic)
            .fault(FaultSite::TraceRead, 0, FaultKind::IoError)
            .build();
        assert!(!plan.is_empty());
        assert_eq!(plan.check(FaultSite::Score), None);
        assert_eq!(plan.check(FaultSite::Score), None);
        assert_eq!(plan.check(FaultSite::Score), Some(FaultKind::ScorePanic));
        assert_eq!(plan.check(FaultSite::Score), None);
        assert_eq!(plan.ops(FaultSite::Score), 4);
        assert_eq!(plan.fired(FaultSite::Score), 1);
        // Sites are independent.
        assert_eq!(plan.check(FaultSite::TraceRead), Some(FaultKind::IoError));
        assert_eq!(plan.fired(FaultSite::TraceRead), 1);
    }

    #[test]
    fn clones_share_schedule_and_counters() {
        let plan = FaultPlan::builder().fault(FaultSite::NetRead, 1, FaultKind::ShortRead).build();
        let clone = plan.clone();
        assert_eq!(clone.check(FaultSite::NetRead), None);
        assert_eq!(plan.check(FaultSite::NetRead), Some(FaultKind::ShortRead));
        assert_eq!(clone.fired(FaultSite::NetRead), 1, "clones must share fired counters");
        assert_eq!(plan.ops(FaultSite::NetRead), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_respect_site_kinds() {
        let a = FaultPlan::seeded(42, 5, 100, 7);
        let b = FaultPlan::seeded(42, 5, 100, 7);
        let c = FaultPlan::seeded(43, 5, 100, 7);
        let mut differs = false;
        for site in FaultSite::ALL {
            assert_eq!(a.schedule(site), b.schedule(site), "same seed, same schedule");
            assert_eq!(a.scheduled(site), 5);
            differs |= a.schedule(site) != c.schedule(site);
            for (op, kind) in a.schedule(site) {
                assert!(op < 100, "op {op} outside horizon");
                match site {
                    FaultSite::Score => {
                        assert!(matches!(kind, FaultKind::ScorePanic | FaultKind::Stall(7)))
                    }
                    FaultSite::ModelLoad => assert!(matches!(
                        kind,
                        FaultKind::IoError | FaultKind::CorruptBytes | FaultKind::Stall(7)
                    )),
                    FaultSite::NetWrite => {
                        assert!(matches!(kind, FaultKind::IoError | FaultKind::Stall(7)))
                    }
                    FaultSite::TraceRead | FaultSite::NetRead => assert!(matches!(
                        kind,
                        FaultKind::IoError | FaultKind::ShortRead | FaultKind::Stall(7)
                    )),
                }
            }
        }
        assert!(differs, "different seeds should differ somewhere");
        // stall_ms == 0 keeps seeded schedules fail-fast.
        let fast = FaultPlan::seeded(7, 8, 64, 0);
        for site in FaultSite::ALL {
            for (_, kind) in fast.schedule(site) {
                assert!(!matches!(kind, FaultKind::Stall(_)));
            }
        }
    }

    #[test]
    fn faulted_source_injects_then_passes_through() {
        let trace = sca_trace::Trace::from_samples((0..16).map(|i| i as f32).collect());
        let plan = FaultPlan::builder()
            .fault(FaultSite::TraceRead, 0, FaultKind::IoError)
            .fault(FaultSite::TraceRead, 1, FaultKind::ShortRead)
            .build();
        let source = FaultedSource::new(Box::new(trace), plan.clone());
        let mut buf = [0.0f32; 4];
        assert!(matches!(source.fill(0, &mut buf), Err(TraceError::Io(_))));
        assert!(matches!(source.fill(0, &mut buf), Err(TraceError::Io(_))));
        source.fill(4, &mut buf).expect("third fill unfaulted");
        assert_eq!(buf, [4.0, 5.0, 6.0, 7.0]);
        assert_eq!(plan.fired(FaultSite::TraceRead), 2);
        assert_eq!(plan.ops(FaultSite::TraceRead), 3);
    }
}
