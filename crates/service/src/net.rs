//! A thin binary frame protocol over TCP for the locate service.
//!
//! One connection carries a sequence of request/response pairs, processed in
//! order. All integers are little-endian; samples are IEEE-754 `f32` LE,
//! matching the raw trace file format.
//!
//! Version 2 addresses models by registry **name** instead of a raw slot
//! index: an index is only meaningful for a frozen engine list, and the
//! registry's swap/evict operations made registration order a moving target
//! — a v1 client could silently hit the *wrong* model. Names resolve
//! through the service's [`ModelRegistry`](crate::ModelRegistry) at
//! admission, and stale or unknown names come back as the typed
//! [`Status::UnknownModel`] / [`Status::ModelUnavailable`] instead of a
//! misrouted answer.
//!
//! **Request frame** (`SCLQ`):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"SCLQ"` |
//! | 4      | 1    | protocol version (`2`) |
//! | 5      | 1    | model name length in bytes (`1..=255`) |
//! | 6      | 1    | flags — bit 0: streamed ingest (score while receiving) |
//! | 7      | 1    | reserved (zero) |
//! | 8      | 4    | deadline in ms (`0` = none) |
//! | 12     | 8    | sample count |
//! | 20     | m    | model name, UTF-8 |
//! | 20+m   | 4·n  | samples, `f32` LE |
//!
//! **Admin frame** (`SCLA`) — registry control; answered with a response
//! frame (a successful swap reports the new generation as `starts[0]`).
//! Refused with [`Status::AdminDenied`] unless [`ServerConfig::allow_admin`]
//! is set:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"SCLA"` |
//! | 4      | 1    | protocol version (`2`) |
//! | 5      | 1    | op — `1` swap, `2` evict |
//! | 6      | 1    | model name length in bytes (`1..=255`) |
//! | 7      | 1    | reserved (zero) |
//! | 8      | 2    | model file path length in bytes (`0` for evict) |
//! | 10     | m    | model name, UTF-8 |
//! | 10+m   | p    | model file path, UTF-8 |
//!
//! **Response frame** (`SCLR`):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"SCLR"` |
//! | 4      | 1    | protocol version (`2`) |
//! | 5      | 1    | [`Status`] |
//! | 6      | 2    | reserved (zero) |
//! | 8      | 8    | start count |
//! | 16     | 8·k  | located CO start samples, `u64` LE |
//!
//! Like the model and trace file readers, the parser never allocates from an
//! unvalidated length: sample and start counts are bounded *before* any
//! buffer is sized (names are bounded by their one-byte length, admin paths
//! by two), and violations surface as typed [`FrameError`]s.
//!
//! With the streamed-ingest flag set the payload is fed to the engine
//! through a [`sca_trace::SequentialTraceSource`] *while it arrives* — the
//! service never holds more than one chunk of the trace in memory, so a
//! client can ship a multi-gigabyte capture over a socket. Without the flag
//! the payload is buffered and scored as an in-memory trace (lowest latency
//! for small traces).
//!
//! # Failure domains
//!
//! Every accepted connection runs behind per-connection read/write socket
//! timeouts ([`ServerConfig::read_timeout`] / [`ServerConfig::write_timeout`],
//! 30 s by default) so a half-open or wedged peer can never pin a handler
//! thread forever; each reaped connection bumps the `conn_timeouts` metric.
//! When the service sheds load at admission (queue depth × observed batch
//! latency exceeding the request deadline) the peer sees the typed
//! [`Status::Overloaded`]. On the client side, [`Client::locate`] treats
//! transport failures (socket errors, truncated responses) as retryable —
//! it reconnects and retries with capped exponential backoff plus
//! deterministic jitter, giving up with the typed
//! [`ClientError::Exhausted`] after [`ClientConfig::max_attempts`] tries —
//! while admin calls never retry (a swap is not idempotent).
//!
//! For chaos testing, a non-empty [`FaultPlan`] in [`ServerConfig::faults`]
//! injects scheduled socket read/write faults at this layer (see
//! [`crate::faults`]).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::faults::{splitmix64, FaultKind, FaultPlan, FaultSite};
use crate::{LocatorService, RegistryError, Rejected, RequestOptions, ServiceError};

/// Request frame magic.
pub const REQUEST_MAGIC: [u8; 4] = *b"SCLQ";
/// Admin frame magic (registry swap/evict).
pub const ADMIN_MAGIC: [u8; 4] = *b"SCLA";
/// Response frame magic.
pub const RESPONSE_MAGIC: [u8; 4] = *b"SCLR";
/// Wire protocol version. Version 2 replaced the v1 raw model index with a
/// length-prefixed registry name and added admin frames.
pub const PROTOCOL_VERSION: u8 = 2;
/// Request flag bit 0: stream the payload into the engine as it arrives.
pub const FLAG_STREAMED: u8 = 1;

const REQUEST_HEADER_LEN: usize = 20;
const ADMIN_HEADER_LEN: usize = 10;
const RESPONSE_HEADER_LEN: usize = 16;

/// Why a frame could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame does not start with the expected magic.
    BadMagic {
        /// The four bytes actually read.
        found: [u8; 4],
    },
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// A declared count exceeds the configured bound — refused before any
    /// allocation.
    Oversized {
        /// The declared element count.
        declared: u64,
        /// The configured maximum.
        max: u64,
    },
    /// The model name (or admin path) is empty or not valid UTF-8.
    InvalidName(String),
    /// The connection ended mid-frame.
    Truncated,
    /// Any other socket-level I/O failure.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Oversized { declared, max } => {
                write!(f, "declared count {declared} exceeds the frame bound {max}")
            }
            FrameError::InvalidName(msg) => write!(f, "invalid name field: {msg}"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.to_string())
        }
    }
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request completed; the frame carries the located starts (for a swap,
    /// the new generation).
    Ok = 0,
    /// Rejected by backpressure ([`Rejected::QueueFull`]); retry later.
    QueueFull = 1,
    /// The request's deadline passed before it was scored.
    DeadlineExceeded = 2,
    /// The request was malformed (over the length bound, bad parameter, …).
    Invalid = 3,
    /// The payload stream failed mid-request (e.g. truncated ingest).
    SourceFailed = 4,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown = 5,
    /// No model is registered under the requested name (stale after a
    /// deregistration, or never registered).
    UnknownModel = 6,
    /// The model is registered but its backing file failed to load; the
    /// registration stays and a later request retries.
    ModelUnavailable = 7,
    /// A worker panicked while scoring this request's batch; the service
    /// kept serving and the request may be retried.
    WorkerFailed = 8,
    /// An admin frame was refused because [`ServerConfig::allow_admin`] is
    /// off.
    AdminDenied = 9,
    /// Shed at admission: the service's backlog already exceeded the
    /// request's deadline ([`Rejected::Overloaded`]); retry with backoff or
    /// a larger deadline.
    Overloaded = 10,
}

impl Status {
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::QueueFull),
            2 => Some(Status::DeadlineExceeded),
            3 => Some(Status::Invalid),
            4 => Some(Status::SourceFailed),
            5 => Some(Status::ShuttingDown),
            6 => Some(Status::UnknownModel),
            7 => Some(Status::ModelUnavailable),
            8 => Some(Status::WorkerFailed),
            9 => Some(Status::AdminDenied),
            10 => Some(Status::Overloaded),
            _ => None,
        }
    }
}

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome of the request.
    pub status: Status,
    /// Located CO start samples (empty unless [`Status::Ok`]; for an admin
    /// swap, one element holding the new generation).
    pub starts: Vec<u64>,
}

/// The parsed fixed-size part of a request frame plus the model name
/// (payload read separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHeader {
    /// Registry name of the model the request targets.
    pub model: String,
    /// Flag byte (see [`FLAG_STREAMED`]).
    pub flags: u8,
    /// Deadline in milliseconds (`0` = none).
    pub deadline_ms: u32,
    /// Declared payload sample count.
    pub sample_count: u64,
}

impl RequestHeader {
    /// Whether the payload should be streamed into the engine as it arrives.
    pub fn streamed(&self) -> bool {
        self.flags & FLAG_STREAMED != 0
    }
}

/// A registry operation carried by an admin frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum AdminOp {
    /// Install the model file at `path` as the name's next generation
    /// ([`crate::ModelRegistry::swap`]).
    Swap = 1,
    /// Drop the name's resident weights
    /// ([`crate::ModelRegistry::evict`]).
    Evict = 2,
}

/// A parsed admin frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminRequest {
    /// The operation.
    pub op: AdminOp,
    /// Registry name the operation targets.
    pub name: String,
    /// Server-local model file path (empty for [`AdminOp::Evict`]).
    pub path: String,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn validated_name(bytes: Vec<u8>, what: &str) -> Result<String, FrameError> {
    if bytes.is_empty() {
        return Err(FrameError::InvalidName(format!("empty {what}")));
    }
    String::from_utf8(bytes)
        .map_err(|_| FrameError::InvalidName(format!("{what} is not valid UTF-8")))
}

/// Writes one request frame: header, model name, then the samples as
/// `f32` LE.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidInput`] for an empty or over-long
/// (> 255 bytes) model name; otherwise propagates socket write failures.
pub fn write_request<W: Write>(
    mut w: W,
    model: &str,
    flags: u8,
    deadline_ms: u32,
    samples: &[f32],
) -> io::Result<()> {
    if model.is_empty() || model.len() > u8::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("model name must be 1..=255 bytes, got {}", model.len()),
        ));
    }
    let mut header = [0u8; REQUEST_HEADER_LEN];
    header[..4].copy_from_slice(&REQUEST_MAGIC);
    header[4] = PROTOCOL_VERSION;
    header[5] = model.len() as u8;
    header[6] = flags;
    header[8..12].copy_from_slice(&deadline_ms.to_le_bytes());
    header[12..20].copy_from_slice(&(samples.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(model.as_bytes())?;
    let mut buf = Vec::with_capacity(4096.min(samples.len() * 4));
    for block in samples.chunks(1024) {
        buf.clear();
        for s in block {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Parses a request header whose magic was already consumed.
fn read_request_tail<R: Read>(mut r: R, max_samples: u64) -> Result<RequestHeader, FrameError> {
    let mut header = [0u8; REQUEST_HEADER_LEN - 4];
    r.read_exact(&mut header)?;
    if header[0] != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(header[0]));
    }
    let name_len = header[1] as usize;
    let flags = header[2];
    let deadline_ms = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    let sample_count = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    if sample_count > max_samples {
        return Err(FrameError::Oversized { declared: sample_count, max: max_samples });
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let model = validated_name(name, "model name")?;
    Ok(RequestHeader { model, flags, deadline_ms, sample_count })
}

/// Reads and validates a request header (including the model name).
/// `max_samples` bounds the declared payload before anything is allocated.
///
/// # Errors
///
/// Returns a typed [`FrameError`] for bad magic, version or bound
/// violations, a bad name, truncation, or socket failures.
pub fn read_request_header<R: Read>(
    mut r: R,
    max_samples: u64,
) -> Result<RequestHeader, FrameError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != REQUEST_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    read_request_tail(r, max_samples)
}

/// Writes one admin frame.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidInput`] for an empty or over-long
/// (> 255 bytes) name or an over-long (> 65535 bytes) path; otherwise
/// propagates socket write failures.
pub fn write_admin_request<W: Write>(
    mut w: W,
    op: AdminOp,
    name: &str,
    path: &str,
) -> io::Result<()> {
    if name.is_empty() || name.len() > u8::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("model name must be 1..=255 bytes, got {}", name.len()),
        ));
    }
    if path.len() > u16::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("model path must be at most 65535 bytes, got {}", path.len()),
        ));
    }
    let mut header = [0u8; ADMIN_HEADER_LEN];
    header[..4].copy_from_slice(&ADMIN_MAGIC);
    header[4] = PROTOCOL_VERSION;
    header[5] = op as u8;
    header[6] = name.len() as u8;
    header[8..10].copy_from_slice(&(path.len() as u16).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(name.as_bytes())?;
    w.write_all(path.as_bytes())?;
    w.flush()
}

/// Parses an admin frame whose magic was already consumed.
fn read_admin_tail<R: Read>(mut r: R) -> Result<AdminRequest, FrameError> {
    let mut header = [0u8; ADMIN_HEADER_LEN - 4];
    r.read_exact(&mut header)?;
    if header[0] != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(header[0]));
    }
    let op = match header[1] {
        1 => AdminOp::Swap,
        2 => AdminOp::Evict,
        other => return Err(FrameError::Io(format!("unknown admin op {other}"))),
    };
    let name_len = header[2] as usize;
    let path_len = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice")) as usize;
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = validated_name(name, "model name")?;
    let mut path = vec![0u8; path_len];
    r.read_exact(&mut path)?;
    let path = String::from_utf8(path)
        .map_err(|_| FrameError::InvalidName("model path is not valid UTF-8".into()))?;
    if op == AdminOp::Swap && path.is_empty() {
        return Err(FrameError::InvalidName("swap requires a model file path".into()));
    }
    Ok(AdminRequest { op, name, path })
}

/// Reads and validates an admin frame.
///
/// # Errors
///
/// Returns a typed [`FrameError`] for bad magic, version violations, bad
/// names, truncation, or socket failures.
pub fn read_admin_request<R: Read>(mut r: R) -> Result<AdminRequest, FrameError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != ADMIN_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    read_admin_tail(r)
}

/// Writes one response frame.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(mut w: W, status: Status, starts: &[usize]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(RESPONSE_HEADER_LEN + starts.len() * 8);
    frame.extend_from_slice(&RESPONSE_MAGIC);
    frame.push(PROTOCOL_VERSION);
    frame.push(status as u8);
    frame.extend_from_slice(&[0u8; 2]);
    frame.extend_from_slice(&(starts.len() as u64).to_le_bytes());
    for s in starts {
        frame.extend_from_slice(&(*s as u64).to_le_bytes());
    }
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one response frame. `max_starts` bounds the declared start count
/// before the result vector is allocated.
///
/// # Errors
///
/// Returns a typed [`FrameError`] for bad magic, version or bound
/// violations, an unknown status byte, truncation, or socket failures.
pub fn read_response<R: Read>(mut r: R, max_starts: u64) -> Result<Response, FrameError> {
    let mut header = [0u8; RESPONSE_HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != RESPONSE_MAGIC {
        return Err(FrameError::BadMagic { found: [header[0], header[1], header[2], header[3]] });
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(header[4]));
    }
    let status = Status::from_byte(header[5])
        .ok_or_else(|| FrameError::Io(format!("unknown status byte {}", header[5])))?;
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    if count > max_starts {
        return Err(FrameError::Oversized { declared: count, max: max_starts });
    }
    let mut starts = vec![0u64; count as usize];
    let mut buf = [0u8; 8];
    for s in &mut starts {
        r.read_exact(&mut buf)?;
        *s = u64::from_le_bytes(buf);
    }
    Ok(Response { status, starts })
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server-side limits and failure-domain knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest sample count a request frame may declare (bounds both the
    /// in-memory buffer and the streamed drain).
    pub max_frame_samples: u64,
    /// Accept admin frames (registry swap/evict) on this listener. Off by
    /// default: admin frames name server-local files, so only enable it on
    /// listeners reachable solely by operators.
    pub allow_admin: bool,
    /// Per-connection socket read timeout. A client that stalls mid-frame
    /// (or goes half-open) for longer than this is reaped — its handler
    /// thread exits and the `conn_timeouts` metric is bumped — instead of
    /// holding a connection thread forever. `None` disables the timeout.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout (a peer that stops draining its
    /// receive buffer is reaped the same way). `None` disables the timeout.
    pub write_timeout: Option<Duration>,
    /// Deterministic fault injection at the socket read/write sites (see
    /// [`crate::faults`]); the default empty plan injects nothing.
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            // 2^28 samples = 1 GiB of payload; far above any test trace, far
            // below an allocation-of-death.
            max_frame_samples: 1 << 28,
            allow_admin: false,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            faults: FaultPlan::default(),
        }
    }
}

/// A running TCP front-end; stop with [`ServerHandle::stop`] (also run on
/// drop). The underlying [`LocatorService`] outlives the server and keeps
/// serving in-process submissions.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    /// Live connection sockets, shut down on stop so handler threads
    /// blocked in a frame read wake up and exit. Handlers remove their own
    /// entry when their connection ends.
    conns: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections, waits for in-flight connections to
    /// finish their current request, and joins the server threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.stopping.store(true, Ordering::SeqCst);
        // Kick handler threads out of their blocking frame reads: a peer
        // idling between requests would otherwise block the join forever.
        for stream in crate::lock_poisoned(&self.conns).values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Serves the locate service on `listener`, one handler thread per
/// connection.
///
/// # Errors
///
/// Fails if the listener's local address cannot be read or the accept
/// thread cannot be spawned.
pub fn serve(
    service: Arc<LocatorService>,
    listener: TcpListener,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stopping = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let accept = {
        let stopping = Arc::clone(&stopping);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new().name("locsvc-accept".into()).spawn(move || {
            let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            let mut next_id = 0u64;
            for stream in listener.incoming() {
                if stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // A stalled or half-open peer is reaped by the socket
                // timeouts instead of pinning this connection's thread
                // forever.
                let _ = stream.set_read_timeout(cfg.read_timeout);
                let _ = stream.set_write_timeout(cfg.write_timeout);
                let id = next_id;
                next_id += 1;
                if let Ok(peer) = stream.try_clone() {
                    crate::lock_poisoned(&conns).insert(id, peer);
                }
                let service = Arc::clone(&service);
                let conns = Arc::clone(&conns);
                let cfg = cfg.clone();
                if let Ok(handle) =
                    std::thread::Builder::new().name("locsvc-conn".into()).spawn(move || {
                        let conn = ConnStream {
                            inner: stream,
                            faults: cfg.faults.clone(),
                            service: Arc::clone(&service),
                        };
                        handle_connection(&service, &conn, &cfg);
                        crate::lock_poisoned(&conns).remove(&id);
                    })
                {
                    // Reap finished handlers so the list stays bounded by
                    // the number of *live* connections.
                    handlers.retain(|h| !h.is_finished());
                    handlers.push(handle);
                }
            }
            for handle in handlers {
                let _ = handle.join();
            }
        })?
    };
    Ok(ServerHandle { addr, stopping, conns, accept: Some(accept) })
}

/// The server side of one connection: the socket wrapped with the
/// [`FaultSite::NetRead`]/[`FaultSite::NetWrite`] injection points and
/// timeout accounting (a read/write that trips the socket timeout bumps the
/// `conn_timeouts` metric as the connection is reaped). All handlers do
/// their socket I/O through this wrapper — with an empty plan it forwards
/// straight to the socket.
struct ConnStream {
    inner: TcpStream,
    faults: FaultPlan,
    service: Arc<LocatorService>,
}

impl ConnStream {
    fn try_clone(&self) -> io::Result<ConnStream> {
        Ok(ConnStream {
            inner: self.inner.try_clone()?,
            faults: self.faults.clone(),
            service: Arc::clone(&self.service),
        })
    }

    /// Tags a socket-level failure: a timeout kind means this connection is
    /// about to be reaped by the read/write deadline.
    fn note_if_timeout(&self, e: &io::Error) {
        if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
            self.service.note_conn_timeout();
        }
    }
}

impl Read for &ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.faults.check(FaultSite::NetRead) {
            Some(FaultKind::IoError) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected socket read fault",
                ));
            }
            // A short read models a peer vanishing mid-frame: EOF now.
            Some(FaultKind::ShortRead) => return Ok(0),
            Some(FaultKind::Stall(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(_) | None => {}
        }
        match (&self.inner).read(buf) {
            Ok(n) => Ok(n),
            Err(e) => {
                self.note_if_timeout(&e);
                Err(e)
            }
        }
    }
}

impl Write for &ConnStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.faults.check(FaultSite::NetWrite) {
            Some(FaultKind::IoError) => {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected socket write fault",
                ));
            }
            // `write_all` turns the zero-length write into `WriteZero`.
            Some(FaultKind::ShortRead) => return Ok(0),
            Some(FaultKind::Stall(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(_) | None => {}
        }
        match (&self.inner).write(buf) {
            Ok(n) => Ok(n),
            Err(e) => {
                self.note_if_timeout(&e);
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        (&self.inner).flush()
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&*self).read(buf)
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&*self).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&*self).flush()
    }
}

/// Byte counter around a reader, shared with the connection handler so it
/// knows how much of a streamed payload the service actually consumed.
struct CountingReader<R> {
    inner: R,
    consumed: Arc<AtomicU64>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

fn handle_connection(service: &LocatorService, stream: &ConnStream, cfg: &ServerConfig) {
    loop {
        // No buffering on the request side: for streamed ingest the service
        // reads the payload straight off this socket, so the handler must
        // never read ahead of the frame. The magic dispatches between
        // locate and admin frames.
        let mut magic = [0u8; 4];
        if stream.take(4).read_exact(&mut magic).is_err() {
            return; // clean close between frames, or a dead socket
        }
        let ok = match magic {
            REQUEST_MAGIC => match read_request_tail(stream, cfg.max_frame_samples) {
                Ok(header) => serve_locate(service, stream, &header),
                // Malformed frame: no way to know where the payload ends,
                // so drop the connection.
                Err(_) => return,
            },
            ADMIN_MAGIC => match read_admin_tail(stream) {
                Ok(admin) => serve_admin(service, stream, &admin, cfg),
                Err(_) => return,
            },
            found => {
                // Out of sync; answer once so the peer sees a typed refusal.
                let _ = found;
                let _ = write_response(stream, Status::Invalid, &[]);
                return;
            }
        };
        if !ok {
            return;
        }
    }
}

fn serve_locate(service: &LocatorService, stream: &ConnStream, header: &RequestHeader) -> bool {
    let options = RequestOptions {
        deadline: (header.deadline_ms > 0)
            .then(|| Duration::from_millis(u64::from(header.deadline_ms))),
        ..RequestOptions::default()
    };
    if header.streamed() {
        serve_streamed(service, stream, header, options)
    } else {
        serve_buffered(service, stream, header, options)
    }
}

/// Executes an admin frame against the service's registry. A successful
/// swap answers `Ok` with the new generation as `starts[0]`.
fn serve_admin(
    service: &LocatorService,
    stream: &ConnStream,
    admin: &AdminRequest,
    cfg: &ServerConfig,
) -> bool {
    if !cfg.allow_admin {
        return write_response(stream, Status::AdminDenied, &[]).is_ok();
    }
    let registry = service.registry();
    let (status, starts): (Status, Vec<usize>) = match admin.op {
        AdminOp::Swap => match registry.swap(&admin.name, &admin.path) {
            Ok(generation) => (Status::Ok, vec![generation as usize]),
            Err(e) => (registry_status(&e), Vec::new()),
        },
        AdminOp::Evict => match registry.evict(&admin.name) {
            Ok(()) => (Status::Ok, Vec::new()),
            Err(e) => (registry_status(&e), Vec::new()),
        },
    };
    write_response(stream, status, &starts).is_ok()
}

fn registry_status(e: &RegistryError) -> Status {
    match e {
        RegistryError::UnknownModel { .. } => Status::UnknownModel,
        RegistryError::Load { .. } | RegistryError::Quarantined { .. } => Status::ModelUnavailable,
        RegistryError::AlreadyRegistered { .. } | RegistryError::NotEvictable { .. } => {
            Status::Invalid
        }
    }
}

/// In-memory path: buffer the payload, submit, answer. Returns `false` when
/// the connection should close.
fn serve_buffered(
    service: &LocatorService,
    stream: &ConnStream,
    header: &RequestHeader,
    options: RequestOptions,
) -> bool {
    let mut samples = vec![0.0f32; header.sample_count as usize];
    if sca_trace::io::read_f32s_le_into(stream, &mut samples).is_err() {
        return false; // truncated payload: peer is gone or out of sync
    }
    let trace = sca_trace::Trace::from_samples(samples);
    match service.submit_trace(&header.model, trace, options) {
        Ok(ticket) => respond_with_ticket(stream, ticket),
        Err(rejected) => write_response(stream, rejection_status(&rejected), &[]).is_ok(),
    }
}

/// Streamed path: hand the socket to the service through a
/// [`sca_trace::SequentialTraceSource`], wait, drain the unread payload
/// tail (samples past the last full window), answer.
fn serve_streamed(
    service: &LocatorService,
    stream: &ConnStream,
    header: &RequestHeader,
    options: RequestOptions,
) -> bool {
    let payload_bytes = header.sample_count * 4;
    let Ok(ingest) = stream.try_clone() else { return false };
    let consumed = Arc::new(AtomicU64::new(0));
    let reader =
        CountingReader { inner: ingest.take(payload_bytes), consumed: Arc::clone(&consumed) };
    match service.submit_reader(&header.model, reader, header.sample_count as usize, options) {
        Ok(ticket) => {
            let result = ticket.wait();
            // After a source failure the stream position is unknowable (the
            // ingest hit EOF or an error mid-payload): don't try to drain,
            // answer with the typed status, then close the connection.
            if let Err(ServiceError::Source(_)) = &result {
                let _ = write_response(stream, Status::SourceFailed, &[]);
                return false;
            }
            // The engine never reads the trailing samples that don't fill a
            // window; consume them so the next frame starts where the peer
            // thinks it does.
            let leftover = payload_bytes - consumed.load(Ordering::Relaxed).min(payload_bytes);
            if drain(stream, leftover).is_err() {
                return false;
            }
            respond_with_result(stream, result)
        }
        Err(rejected) => {
            // The peer sends the payload regardless; drain it to stay in
            // sync on the frame boundary.
            drain(stream, payload_bytes).is_ok()
                && write_response(stream, rejection_status(&rejected), &[]).is_ok()
        }
    }
}

fn respond_with_ticket(stream: &ConnStream, ticket: crate::Ticket) -> bool {
    respond_with_result(stream, ticket.wait())
}

fn respond_with_result(
    stream: &ConnStream,
    result: Result<crate::LocateResult, ServiceError>,
) -> bool {
    match result {
        Ok(located) => write_response(stream, Status::Ok, &located.starts).is_ok(),
        Err(e) => write_response(stream, failure_status(&e), &[]).is_ok(),
    }
}

fn rejection_status(rejected: &Rejected) -> Status {
    match rejected {
        Rejected::QueueFull { .. } => Status::QueueFull,
        Rejected::ShuttingDown => Status::ShuttingDown,
        Rejected::UnknownModel { .. } => Status::UnknownModel,
        Rejected::ModelUnavailable { .. } => Status::ModelUnavailable,
        Rejected::Overloaded { .. } => Status::Overloaded,
        Rejected::TooLong { .. } | Rejected::InvalidRequest(_) => Status::Invalid,
    }
}

fn failure_status(e: &ServiceError) -> Status {
    match e {
        ServiceError::DeadlineExceeded => Status::DeadlineExceeded,
        ServiceError::Source(_) => Status::SourceFailed,
        ServiceError::WorkerFailed => Status::WorkerFailed,
        ServiceError::Stopped => Status::ShuttingDown,
    }
}

fn drain(stream: &ConnStream, bytes: u64) -> io::Result<()> {
    let copied = io::copy(&mut stream.take(bytes), &mut io::sink())?;
    if copied < bytes {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Retry policy for [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total attempts per `locate` call (first try included). `1` disables
    /// retrying entirely.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on the per-retry backoff before jitter.
    pub max_backoff: Duration,
    /// Seed for the deterministic backoff jitter (each retry sleeps a
    /// pseudo-random fraction in `[1/2, 1]` of the capped backoff).
    pub backoff_seed: u64,
    /// Bound on the start count a response may declare.
    pub max_starts: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            backoff_seed: 0,
            max_starts: 1 << 24,
        }
    }
}

/// Terminal failure from a retrying [`Client`] call.
#[derive(Debug)]
pub enum ClientError {
    /// Every transport attempt failed; `last` is the error from the final
    /// attempt.
    Exhausted {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The failure from the last attempt.
        last: FrameError,
    },
    /// The server answered with a frame the client refuses to accept
    /// (bad magic, oversized counts, unsupported version…). Never retried:
    /// the transport worked, the conversation is broken.
    Protocol(FrameError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last error: {last})")
            }
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Exhausted { last, .. } | Self::Protocol(last) => Some(last),
        }
    }
}

impl ClientError {
    fn from_frame(e: FrameError, attempts: u32, exhausted: bool) -> Self {
        if exhausted {
            Self::Exhausted { attempts, last: e }
        } else {
            Self::Protocol(e)
        }
    }
}

/// A blocking client for the frame protocol with bounded reconnect.
///
/// `locate` is idempotent on the server, so transport failures (socket
/// errors, truncated responses — e.g. a connection reaped by the server's
/// read timeout) are retried up to [`ClientConfig::max_attempts`] times
/// with a fresh connection and exponential backoff plus deterministic
/// jitter. Admin calls (`swap`, `evict`) are *not* idempotent and always
/// run exactly one attempt.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    stream: Option<TcpStream>,
    rng: u64,
}

impl Client {
    /// Connects to a serving [`LocatorService`] with the default retry
    /// policy.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit retry policy.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with(addr: SocketAddr, cfg: ClientConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let rng = cfg.backoff_seed;
        Ok(Self { addr, cfg, stream: Some(stream), rng })
    }

    fn ensure_connected(&mut self) -> Result<&TcpStream, FrameError> {
        if self.stream.is_none() {
            self.stream =
                Some(TcpStream::connect(self.addr).map_err(|e| FrameError::Io(e.to_string()))?);
        }
        Ok(self.stream.as_ref().expect("stream was just connected"))
    }

    /// Sleeps the capped exponential backoff for 0-based retry `retry`,
    /// jittered to a deterministic fraction in `[1/2, 1]`.
    fn backoff(&mut self, retry: u32) {
        let base = self.cfg.base_backoff.saturating_mul(1u32 << retry.min(16));
        let capped = base.min(self.cfg.max_backoff).as_nanos() as u64;
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let jitter = splitmix64(self.rng);
        // Map to [1/2, 1]: half the range is fixed, half is scaled by rng.
        let nanos = capped / 2 + (((capped / 2) as u128 * (jitter as u128)) >> 64) as u64;
        std::thread::sleep(Duration::from_nanos(nanos));
    }

    /// Sends one locate request against the named model (buffered or
    /// streamed per `flags`) and blocks for the response, transparently
    /// reconnecting and retrying on transport failures.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] after `max_attempts` transport failures,
    /// [`ClientError::Protocol`] on a malformed response (never retried).
    pub fn locate(
        &mut self,
        model: &str,
        flags: u8,
        deadline_ms: u32,
        samples: &[f32],
    ) -> Result<Response, ClientError> {
        let max_starts = self.cfg.max_starts;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = self.ensure_connected().and_then(|stream| {
                write_request(stream, model, flags, deadline_ms, samples)?;
                read_response(stream, max_starts)
            });
            match result {
                Ok(response) => return Ok(response),
                Err(e @ (FrameError::Io(_) | FrameError::Truncated)) => {
                    // The connection is in an unknown state; retry on a
                    // fresh one.
                    self.stream = None;
                    if attempt >= self.cfg.max_attempts {
                        return Err(ClientError::from_frame(e, attempt, true));
                    }
                    self.backoff(attempt - 1);
                }
                Err(e) => return Err(ClientError::from_frame(e, attempt, false)),
            }
        }
    }

    /// Asks the server to hot-swap `model` to the model file at the
    /// server-local `path` and blocks for the response; on [`Status::Ok`]
    /// the new generation is `starts[0]`. Requires
    /// [`ServerConfig::allow_admin`]. Never retried (a lost response
    /// doesn't reveal whether the swap landed).
    ///
    /// # Errors
    ///
    /// Returns a typed [`FrameError`] on socket failure or a malformed
    /// response.
    pub fn swap(&mut self, model: &str, path: &str) -> Result<Response, FrameError> {
        let max_starts = self.cfg.max_starts;
        let stream = self.ensure_connected()?;
        write_admin_request(stream, AdminOp::Swap, model, path)?;
        read_response(stream, max_starts)
    }

    /// Asks the server to evict `model`'s resident weights and blocks for
    /// the response. Requires [`ServerConfig::allow_admin`]. Never retried.
    ///
    /// # Errors
    ///
    /// Returns a typed [`FrameError`] on socket failure or a malformed
    /// response.
    pub fn evict(&mut self, model: &str) -> Result<Response, FrameError> {
        let max_starts = self.cfg.max_starts;
        let stream = self.ensure_connected()?;
        write_admin_request(stream, AdminOp::Evict, model, "")?;
        read_response(stream, max_starts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_header_roundtrip() {
        let mut frame = Vec::new();
        write_request(&mut frame, "xmega-aes", FLAG_STREAMED, 250, &[1.0, -2.5, 0.0]).unwrap();
        let mut cursor = Cursor::new(frame);
        let header = read_request_header(&mut cursor, 1 << 20).unwrap();
        assert_eq!(
            header,
            RequestHeader {
                model: "xmega-aes".into(),
                flags: FLAG_STREAMED,
                deadline_ms: 250,
                sample_count: 3
            }
        );
        assert!(header.streamed());
        let mut payload = [0.0f32; 3];
        sca_trace::io::read_f32s_le_into(&mut cursor, &mut payload).unwrap();
        assert_eq!(payload, [1.0, -2.5, 0.0]);
    }

    #[test]
    fn admin_frame_roundtrip() {
        let mut frame = Vec::new();
        write_admin_request(&mut frame, AdminOp::Swap, "xmega-aes", "/models/v2.sclm").unwrap();
        let got = read_admin_request(Cursor::new(frame)).unwrap();
        assert_eq!(
            got,
            AdminRequest {
                op: AdminOp::Swap,
                name: "xmega-aes".into(),
                path: "/models/v2.sclm".into()
            }
        );

        let mut frame = Vec::new();
        write_admin_request(&mut frame, AdminOp::Evict, "xmega-aes", "").unwrap();
        let got = read_admin_request(Cursor::new(frame)).unwrap();
        assert_eq!(
            got,
            AdminRequest { op: AdminOp::Evict, name: "xmega-aes".into(), path: String::new() }
        );
    }

    #[test]
    fn invalid_names_are_typed() {
        // An empty model name is refused at write time…
        let err = write_request(&mut Vec::new(), "", 0, 0, &[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // …and a hand-rolled frame with a zero name length at read time.
        let mut frame = Vec::new();
        write_request(&mut frame, "x", 0, 0, &[]).unwrap();
        frame[5] = 0; // name length
        frame.truncate(REQUEST_HEADER_LEN);
        let err = read_request_header(Cursor::new(frame), 10).unwrap_err();
        assert!(matches!(err, FrameError::InvalidName(_)), "{err:?}");
        // Swap without a path is refused too.
        let mut frame = Vec::new();
        write_admin_request(&mut frame, AdminOp::Swap, "x", "p").unwrap();
        frame[8..10].copy_from_slice(&0u16.to_le_bytes()); // path length
        frame.truncate(ADMIN_HEADER_LEN + 1);
        let err = read_admin_request(Cursor::new(frame)).unwrap_err();
        assert!(matches!(err, FrameError::InvalidName(_)), "{err:?}");
    }

    #[test]
    fn response_roundtrip() {
        let mut frame = Vec::new();
        write_response(&mut frame, Status::Ok, &[7, 4096, 0]).unwrap();
        let got = read_response(Cursor::new(frame), 1 << 20).unwrap();
        assert_eq!(got, Response { status: Status::Ok, starts: vec![7, 4096, 0] });
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = read_request_header(Cursor::new(vec![0u8; REQUEST_HEADER_LEN]), 10).unwrap_err();
        assert_eq!(err, FrameError::BadMagic { found: [0, 0, 0, 0] });
    }

    #[test]
    fn oversized_declared_count_is_refused_before_allocation() {
        let mut frame = Vec::new();
        write_request(&mut frame, "m", 0, 0, &[0.0; 64]).unwrap();
        let err = read_request_header(Cursor::new(frame), 63).unwrap_err();
        assert_eq!(err, FrameError::Oversized { declared: 64, max: 63 });

        let mut resp = Vec::new();
        write_response(&mut resp, Status::Ok, &[1, 2, 3, 4]).unwrap();
        let err = read_response(Cursor::new(resp), 3).unwrap_err();
        assert_eq!(err, FrameError::Oversized { declared: 4, max: 3 });
    }

    #[test]
    fn truncated_frames_are_typed() {
        let mut frame = Vec::new();
        write_response(&mut frame, Status::Ok, &[1, 2, 3]).unwrap();
        for cut in [1, RESPONSE_HEADER_LEN - 1, RESPONSE_HEADER_LEN + 7] {
            let err = read_response(Cursor::new(&frame[..cut]), 10).unwrap_err();
            assert_eq!(err, FrameError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut frame = Vec::new();
        write_request(&mut frame, "m", 0, 0, &[]).unwrap();
        frame[4] = 9;
        let err = read_request_header(Cursor::new(frame), 10).unwrap_err();
        assert_eq!(err, FrameError::UnsupportedVersion(9));
    }
}
