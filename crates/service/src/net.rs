//! A thin binary frame protocol over TCP for the locate service.
//!
//! One connection carries a sequence of request/response pairs, processed in
//! order. All integers are little-endian; samples are IEEE-754 `f32` LE,
//! matching the raw trace file format.
//!
//! **Request frame** (`SCLQ`):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"SCLQ"` |
//! | 4      | 1    | protocol version (`1`) |
//! | 5      | 1    | model index |
//! | 6      | 1    | flags — bit 0: streamed ingest (score while receiving) |
//! | 7      | 1    | reserved (zero) |
//! | 8      | 4    | deadline in ms (`0` = none) |
//! | 12     | 8    | sample count |
//! | 20     | 4·n  | samples, `f32` LE |
//!
//! **Response frame** (`SCLR`):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"SCLR"` |
//! | 4      | 1    | protocol version (`1`) |
//! | 5      | 1    | [`Status`] |
//! | 6      | 2    | reserved (zero) |
//! | 8      | 8    | start count |
//! | 16     | 8·k  | located CO start samples, `u64` LE |
//!
//! Like the model and trace file readers, the parser never allocates from an
//! unvalidated length: sample and start counts are bounded *before* any
//! buffer is sized, and violations surface as typed [`FrameError`]s.
//!
//! With the streamed-ingest flag set the payload is fed to the engine
//! through a [`sca_trace::SequentialTraceSource`] *while it arrives* — the
//! service never holds more than one chunk of the trace in memory, so a
//! client can ship a multi-gigabyte capture over a socket. Without the flag
//! the payload is buffered and scored as an in-memory trace (lowest latency
//! for small traces).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::{LocatorService, ModelId, Rejected, RequestOptions, ServiceError};

/// Request frame magic.
pub const REQUEST_MAGIC: [u8; 4] = *b"SCLQ";
/// Response frame magic.
pub const RESPONSE_MAGIC: [u8; 4] = *b"SCLR";
/// Wire protocol version.
pub const PROTOCOL_VERSION: u8 = 1;
/// Request flag bit 0: stream the payload into the engine as it arrives.
pub const FLAG_STREAMED: u8 = 1;

const REQUEST_HEADER_LEN: usize = 20;
const RESPONSE_HEADER_LEN: usize = 16;

/// Why a frame could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame does not start with the expected magic.
    BadMagic {
        /// The four bytes actually read.
        found: [u8; 4],
    },
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// A declared count exceeds the configured bound — refused before any
    /// allocation.
    Oversized {
        /// The declared element count.
        declared: u64,
        /// The configured maximum.
        max: u64,
    },
    /// The connection ended mid-frame.
    Truncated,
    /// Any other socket-level I/O failure.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Oversized { declared, max } => {
                write!(f, "declared count {declared} exceeds the frame bound {max}")
            }
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.to_string())
        }
    }
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request completed; the frame carries the located starts.
    Ok = 0,
    /// Rejected by backpressure ([`Rejected::QueueFull`]); retry later.
    QueueFull = 1,
    /// The request's deadline passed before it was scored.
    DeadlineExceeded = 2,
    /// The request was malformed (unknown model, over the length bound, …).
    Invalid = 3,
    /// The payload stream failed mid-request (e.g. truncated ingest).
    SourceFailed = 4,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown = 5,
}

impl Status {
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::QueueFull),
            2 => Some(Status::DeadlineExceeded),
            3 => Some(Status::Invalid),
            4 => Some(Status::SourceFailed),
            5 => Some(Status::ShuttingDown),
            _ => None,
        }
    }
}

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome of the request.
    pub status: Status,
    /// Located CO start samples (empty unless [`Status::Ok`]).
    pub starts: Vec<u64>,
}

/// The parsed fixed-size part of a request frame (payload read separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHeader {
    /// Engine slot the request targets.
    pub model: u8,
    /// Flag byte (see [`FLAG_STREAMED`]).
    pub flags: u8,
    /// Deadline in milliseconds (`0` = none).
    pub deadline_ms: u32,
    /// Declared payload sample count.
    pub sample_count: u64,
}

impl RequestHeader {
    /// Whether the payload should be streamed into the engine as it arrives.
    pub fn streamed(&self) -> bool {
        self.flags & FLAG_STREAMED != 0
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Writes one request frame: header, then the samples as `f32` LE.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_request<W: Write>(
    mut w: W,
    model: u8,
    flags: u8,
    deadline_ms: u32,
    samples: &[f32],
) -> io::Result<()> {
    let mut header = [0u8; REQUEST_HEADER_LEN];
    header[..4].copy_from_slice(&REQUEST_MAGIC);
    header[4] = PROTOCOL_VERSION;
    header[5] = model;
    header[6] = flags;
    header[8..12].copy_from_slice(&deadline_ms.to_le_bytes());
    header[12..20].copy_from_slice(&(samples.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    let mut buf = Vec::with_capacity(4096.min(samples.len() * 4));
    for block in samples.chunks(1024) {
        buf.clear();
        for s in block {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Reads and validates a request header. `max_samples` bounds the declared
/// payload before anything is allocated.
///
/// # Errors
///
/// Returns a typed [`FrameError`] for bad magic, version or bound
/// violations, truncation, or socket failures.
pub fn read_request_header<R: Read>(
    mut r: R,
    max_samples: u64,
) -> Result<RequestHeader, FrameError> {
    let mut header = [0u8; REQUEST_HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != REQUEST_MAGIC {
        return Err(FrameError::BadMagic { found: [header[0], header[1], header[2], header[3]] });
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(header[4]));
    }
    let deadline_ms = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
    let sample_count = u64::from_le_bytes(header[12..20].try_into().expect("8-byte slice"));
    if sample_count > max_samples {
        return Err(FrameError::Oversized { declared: sample_count, max: max_samples });
    }
    Ok(RequestHeader { model: header[5], flags: header[6], deadline_ms, sample_count })
}

/// Writes one response frame.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(mut w: W, status: Status, starts: &[usize]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(RESPONSE_HEADER_LEN + starts.len() * 8);
    frame.extend_from_slice(&RESPONSE_MAGIC);
    frame.push(PROTOCOL_VERSION);
    frame.push(status as u8);
    frame.extend_from_slice(&[0u8; 2]);
    frame.extend_from_slice(&(starts.len() as u64).to_le_bytes());
    for s in starts {
        frame.extend_from_slice(&(*s as u64).to_le_bytes());
    }
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one response frame. `max_starts` bounds the declared start count
/// before the result vector is allocated.
///
/// # Errors
///
/// Returns a typed [`FrameError`] for bad magic, version or bound
/// violations, an unknown status byte, truncation, or socket failures.
pub fn read_response<R: Read>(mut r: R, max_starts: u64) -> Result<Response, FrameError> {
    let mut header = [0u8; RESPONSE_HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != RESPONSE_MAGIC {
        return Err(FrameError::BadMagic { found: [header[0], header[1], header[2], header[3]] });
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(header[4]));
    }
    let status = Status::from_byte(header[5])
        .ok_or_else(|| FrameError::Io(format!("unknown status byte {}", header[5])))?;
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    if count > max_starts {
        return Err(FrameError::Oversized { declared: count, max: max_starts });
    }
    let mut starts = vec![0u64; count as usize];
    let mut buf = [0u8; 8];
    for s in &mut starts {
        r.read_exact(&mut buf)?;
        *s = u64::from_le_bytes(buf);
    }
    Ok(Response { status, starts })
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server-side limits.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Largest sample count a request frame may declare (bounds both the
    /// in-memory buffer and the streamed drain).
    pub max_frame_samples: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        // 2^28 samples = 1 GiB of payload; far above any test trace, far
        // below an allocation-of-death.
        Self { max_frame_samples: 1 << 28 }
    }
}

/// A running TCP front-end; stop with [`ServerHandle::stop`] (also run on
/// drop). The underlying [`LocatorService`] outlives the server and keeps
/// serving in-process submissions.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    /// Live connection sockets, shut down on stop so handler threads
    /// blocked in a frame read wake up and exit. Handlers remove their own
    /// entry when their connection ends.
    conns: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections, waits for in-flight connections to
    /// finish their current request, and joins the server threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.stopping.store(true, Ordering::SeqCst);
        // Kick handler threads out of their blocking frame reads: a peer
        // idling between requests would otherwise block the join forever.
        for stream in self.conns.lock().expect("connection list poisoned").values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Serves the locate service on `listener`, one handler thread per
/// connection.
///
/// # Errors
///
/// Fails if the listener's local address cannot be read or the accept
/// thread cannot be spawned.
pub fn serve(
    service: Arc<LocatorService>,
    listener: TcpListener,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stopping = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let accept = {
        let stopping = Arc::clone(&stopping);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new().name("locsvc-accept".into()).spawn(move || {
            let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            let mut next_id = 0u64;
            for stream in listener.incoming() {
                if stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let id = next_id;
                next_id += 1;
                if let Ok(peer) = stream.try_clone() {
                    conns.lock().expect("connection list poisoned").insert(id, peer);
                }
                let service = Arc::clone(&service);
                let conns = Arc::clone(&conns);
                if let Ok(handle) =
                    std::thread::Builder::new().name("locsvc-conn".into()).spawn(move || {
                        handle_connection(&service, &stream, cfg);
                        conns.lock().expect("connection list poisoned").remove(&id);
                    })
                {
                    // Reap finished handlers so the list stays bounded by
                    // the number of *live* connections.
                    handlers.retain(|h| !h.is_finished());
                    handlers.push(handle);
                }
            }
            for handle in handlers {
                let _ = handle.join();
            }
        })?
    };
    Ok(ServerHandle { addr, stopping, conns, accept: Some(accept) })
}

/// Byte counter around a reader, shared with the connection handler so it
/// knows how much of a streamed payload the service actually consumed.
struct CountingReader<R> {
    inner: R,
    consumed: Arc<AtomicU64>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

fn handle_connection(service: &LocatorService, stream: &TcpStream, cfg: ServerConfig) {
    loop {
        // No buffering on the request side: for streamed ingest the service
        // reads the payload straight off this socket, so the handler must
        // never read ahead of the header.
        let header = match read_request_header(stream, cfg.max_frame_samples) {
            Ok(h) => h,
            // Clean close between frames, a malformed frame, or a dead
            // socket: without a parsable header there is no way to answer
            // in-protocol, so just drop the connection.
            Err(_) => return,
        };
        let options = RequestOptions {
            deadline: (header.deadline_ms > 0)
                .then(|| Duration::from_millis(u64::from(header.deadline_ms))),
            ..RequestOptions::default()
        };
        let ok = if header.streamed() {
            serve_streamed(service, stream, &header, options)
        } else {
            serve_buffered(service, stream, &header, options)
        };
        if !ok {
            return;
        }
    }
}

/// In-memory path: buffer the payload, submit, answer. Returns `false` when
/// the connection should close.
fn serve_buffered(
    service: &LocatorService,
    stream: &TcpStream,
    header: &RequestHeader,
    options: RequestOptions,
) -> bool {
    let mut samples = vec![0.0f32; header.sample_count as usize];
    if sca_trace::io::read_f32s_le_into(stream, &mut samples).is_err() {
        return false; // truncated payload: peer is gone or out of sync
    }
    let model = ModelId::from_index(header.model as usize);
    let trace = sca_trace::Trace::from_samples(samples);
    match service.submit_trace(model, trace, options) {
        Ok(ticket) => respond_with_ticket(stream, ticket),
        Err(rejected) => write_response(stream, rejection_status(&rejected), &[]).is_ok(),
    }
}

/// Streamed path: hand the socket to the service through a
/// [`sca_trace::SequentialTraceSource`], wait, drain the unread payload
/// tail (samples past the last full window), answer.
fn serve_streamed(
    service: &LocatorService,
    stream: &TcpStream,
    header: &RequestHeader,
    options: RequestOptions,
) -> bool {
    let payload_bytes = header.sample_count * 4;
    let model = ModelId::from_index(header.model as usize);
    let Ok(ingest) = stream.try_clone() else { return false };
    let consumed = Arc::new(AtomicU64::new(0));
    let reader =
        CountingReader { inner: ingest.take(payload_bytes), consumed: Arc::clone(&consumed) };
    match service.submit_reader(model, reader, header.sample_count as usize, options) {
        Ok(ticket) => {
            let result = ticket.wait();
            // After a source failure the stream position is unknowable (the
            // ingest hit EOF or an error mid-payload): don't try to drain,
            // answer with the typed status, then close the connection.
            if let Err(ServiceError::Source(_)) = &result {
                let _ = write_response(stream, Status::SourceFailed, &[]);
                return false;
            }
            // The engine never reads the trailing samples that don't fill a
            // window; consume them so the next frame starts where the peer
            // thinks it does.
            let leftover = payload_bytes - consumed.load(Ordering::Relaxed).min(payload_bytes);
            if drain(stream, leftover).is_err() {
                return false;
            }
            respond_with_result(stream, result)
        }
        Err(rejected) => {
            // The peer sends the payload regardless; drain it to stay in
            // sync on the frame boundary.
            drain(stream, payload_bytes).is_ok()
                && write_response(stream, rejection_status(&rejected), &[]).is_ok()
        }
    }
}

fn respond_with_ticket(stream: &TcpStream, ticket: crate::Ticket) -> bool {
    respond_with_result(stream, ticket.wait())
}

fn respond_with_result(
    stream: &TcpStream,
    result: Result<crate::LocateResult, ServiceError>,
) -> bool {
    match result {
        Ok(located) => write_response(stream, Status::Ok, &located.starts).is_ok(),
        Err(e) => write_response(stream, failure_status(&e), &[]).is_ok(),
    }
}

fn rejection_status(rejected: &Rejected) -> Status {
    match rejected {
        Rejected::QueueFull { .. } => Status::QueueFull,
        Rejected::ShuttingDown => Status::ShuttingDown,
        Rejected::UnknownModel { .. } | Rejected::TooLong { .. } | Rejected::InvalidRequest(_) => {
            Status::Invalid
        }
    }
}

fn failure_status(e: &ServiceError) -> Status {
    match e {
        ServiceError::DeadlineExceeded => Status::DeadlineExceeded,
        ServiceError::Source(_) => Status::SourceFailed,
        ServiceError::Stopped => Status::ShuttingDown,
    }
}

fn drain(stream: &TcpStream, bytes: u64) -> io::Result<()> {
    let copied = io::copy(&mut stream.take(bytes), &mut io::sink())?;
    if copied < bytes {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A minimal blocking client for the frame protocol.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Bound on the start count a response may declare.
    pub max_starts: u64,
}

impl Client {
    /// Connects to a serving [`LocatorService`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Ok(Self { stream: TcpStream::connect(addr)?, max_starts: 1 << 24 })
    }

    /// Sends one locate request (buffered or streamed per `flags`) and
    /// blocks for the response.
    ///
    /// # Errors
    ///
    /// Returns a typed [`FrameError`] on socket failure or a malformed
    /// response.
    pub fn locate(
        &mut self,
        model: u8,
        flags: u8,
        deadline_ms: u32,
        samples: &[f32],
    ) -> Result<Response, FrameError> {
        write_request(&self.stream, model, flags, deadline_ms, samples)?;
        read_response(&self.stream, self.max_starts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_header_roundtrip() {
        let mut frame = Vec::new();
        write_request(&mut frame, 3, FLAG_STREAMED, 250, &[1.0, -2.5, 0.0]).unwrap();
        let mut cursor = Cursor::new(frame);
        let header = read_request_header(&mut cursor, 1 << 20).unwrap();
        assert_eq!(
            header,
            RequestHeader { model: 3, flags: FLAG_STREAMED, deadline_ms: 250, sample_count: 3 }
        );
        assert!(header.streamed());
        let mut payload = [0.0f32; 3];
        sca_trace::io::read_f32s_le_into(&mut cursor, &mut payload).unwrap();
        assert_eq!(payload, [1.0, -2.5, 0.0]);
    }

    #[test]
    fn response_roundtrip() {
        let mut frame = Vec::new();
        write_response(&mut frame, Status::Ok, &[7, 4096, 0]).unwrap();
        let got = read_response(Cursor::new(frame), 1 << 20).unwrap();
        assert_eq!(got, Response { status: Status::Ok, starts: vec![7, 4096, 0] });
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = read_request_header(Cursor::new(vec![0u8; REQUEST_HEADER_LEN]), 10).unwrap_err();
        assert_eq!(err, FrameError::BadMagic { found: [0, 0, 0, 0] });
    }

    #[test]
    fn oversized_declared_count_is_refused_before_allocation() {
        let mut frame = Vec::new();
        write_request(&mut frame, 0, 0, 0, &[0.0; 64]).unwrap();
        let err = read_request_header(Cursor::new(frame), 63).unwrap_err();
        assert_eq!(err, FrameError::Oversized { declared: 64, max: 63 });

        let mut resp = Vec::new();
        write_response(&mut resp, Status::Ok, &[1, 2, 3, 4]).unwrap();
        let err = read_response(Cursor::new(resp), 3).unwrap_err();
        assert_eq!(err, FrameError::Oversized { declared: 4, max: 3 });
    }

    #[test]
    fn truncated_frames_are_typed() {
        let mut frame = Vec::new();
        write_response(&mut frame, Status::Ok, &[1, 2, 3]).unwrap();
        for cut in [1, RESPONSE_HEADER_LEN - 1, RESPONSE_HEADER_LEN + 7] {
            let err = read_response(Cursor::new(&frame[..cut]), 10).unwrap_err();
            assert_eq!(err, FrameError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut frame = Vec::new();
        write_request(&mut frame, 0, 0, 0, &[]).unwrap();
        frame[4] = 9;
        let err = read_request_header(Cursor::new(frame), 10).unwrap_err();
        assert_eq!(err, FrameError::UnsupportedVersion(9));
    }
}
