//! Service observability: lock-free counters and a log-bucketed latency
//! histogram, snapshotted on demand.
//!
//! Every counter is a relaxed atomic updated from the hot paths (admission,
//! batch dispatch, completion); a [`MetricsSnapshot`] is a plain copy taken
//! at one instant, so readers never contend with the scheduler. Latency
//! quantiles come from a fixed power-of-two histogram (microsecond buckets):
//! `p50`/`p99` are upper bounds of the bucket containing the quantile —
//! at most 2× the true value, which is the resolution that matters for a
//! "bounded p99" regression guard, at zero allocation and zero locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, so the histogram spans 1 µs … ~17 min.
const BUCKETS: usize = 30;

/// A power-of-two-bucketed latency histogram with atomic buckets.
#[derive(Debug, Default)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    pub(crate) fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX).max(1);
        let bucket = (us.ilog2() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Upper bound of the bucket holding quantile `q` (0..=1), or zero when
    /// nothing has been recorded.
    fn quantile(&self, q: f64) -> Duration {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Cap the top bucket's bound by the true observed maximum.
                let bound_us = 1u64 << (i + 1).min(63);
                return Duration::from_micros(bound_us.min(self.max_us.load(Ordering::Relaxed)));
            }
        }
        Duration::from_micros(self.max_us.load(Ordering::Relaxed))
    }
}

/// The service's live counters (crate-internal; snapshot via
/// [`MetricsSnapshot`]).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub rejected_other: AtomicU64,
    pub batches: AtomicU64,
    pub batched_windows: AtomicU64,
    pub latency: LatencyHistogram,
}

impl Counters {
    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        in_flight: usize,
        tile: usize,
    ) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_windows = self.batched_windows.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_other: self.rejected_other.load(Ordering::Relaxed),
            batches,
            batched_windows,
            batch_fill_ratio: if batches == 0 {
                0.0
            } else {
                batched_windows as f64 / (batches * tile as u64) as f64
            },
            queue_depth,
            in_flight,
            p50_latency: self.latency.quantile(0.50),
            p99_latency: self.latency.quantile(0.99),
            max_latency: Duration::from_micros(self.latency.max_us.load(Ordering::Relaxed)),
        }
    }
}

/// A consistent-enough copy of the service metrics at one instant.
///
/// Counts are monotone over the service lifetime; `queue_depth` and
/// `in_flight` are gauges. `batch_fill_ratio` is the fraction of dispatched
/// tile capacity actually carrying windows — 1.0 means every packed batch
/// ran the GEMM micro-kernels with full tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted past backpressure (includes later failures).
    pub submitted: u64,
    /// Requests completed with located starts.
    pub completed: u64,
    /// Requests that failed after admission (source I/O errors).
    pub failed: u64,
    /// Submissions rejected with [`crate::Rejected::QueueFull`].
    pub rejected_queue_full: u64,
    /// Admitted requests dropped because their deadline passed in queue.
    pub rejected_deadline: u64,
    /// Submissions rejected for other typed reasons (unknown model, too
    /// long, invalid parameters, shutdown).
    pub rejected_other: u64,
    /// Packed cross-request batches dispatched to the GEMM kernels.
    pub batches: u64,
    /// Total windows carried by those batches.
    pub batched_windows: u64,
    /// `batched_windows / (batches * tile)` — mean tile fill.
    pub batch_fill_ratio: f64,
    /// Requests currently queued for the scheduler (gauge).
    pub queue_depth: usize,
    /// Requests admitted and not yet completed (gauge; bounded by the
    /// configured queue capacity).
    pub in_flight: usize,
    /// Median request latency (admission → completion; bucket upper bound).
    pub p50_latency: Duration,
    /// 99th-percentile request latency (bucket upper bound).
    pub p99_latency: Duration,
    /// Worst observed request latency.
    pub max_latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_recorded_latencies() {
        let h = LatencyHistogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 >= Duration::from_millis(50), "p50 {p50:?}");
        assert!(p50 <= Duration::from_millis(128), "p50 {p50:?}");
        assert!(p99 >= Duration::from_millis(99), "p99 {p99:?}");
        assert!(p99 <= Duration::from_millis(100), "p99 {p99:?} capped by observed max");
        assert!(p50 <= p99);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }
}
