//! Service observability: lock-free counters and a log-bucketed latency
//! histogram, snapshotted on demand.
//!
//! Every counter is a relaxed atomic updated from the hot paths (admission,
//! batch dispatch, completion); a [`MetricsSnapshot`] is a plain copy taken
//! at one instant, so readers never contend with the scheduler. Latency
//! quantiles come from a fixed power-of-two histogram (microsecond buckets)
//! with **intra-bucket linear interpolation**: the quantile's rank position
//! inside its bucket picks a proportional point between the bucket bounds,
//! so reported p50/p99 move smoothly instead of jumping 2× when a quantile
//! crosses a bucket boundary — at zero allocation and zero locking. The
//! registry gauges (resident bytes, load/evict/swap counts) ride along from
//! [`crate::RegistryStats`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::registry::RegistryStats;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, so the histogram spans 1 µs … ~17 min.
const BUCKETS: usize = 30;

/// A power-of-two-bucketed latency histogram with atomic buckets.
#[derive(Debug, Default)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    pub(crate) fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX).max(1);
        let bucket = (us.ilog2() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Quantile `q` (0..=1) with intra-bucket linear interpolation, or zero
    /// when nothing has been recorded.
    ///
    /// The quantile's rank is located in its power-of-two bucket, then
    /// placed proportionally between the bucket's lower and upper bound by
    /// its rank position among the bucket's samples (and capped by the true
    /// observed maximum). The error is bounded by the bucket width as
    /// before, but the estimate no longer jumps to the upper bound the
    /// moment a quantile crosses into a new bucket — which is what made the
    /// latency regression guard flap on noise.
    fn quantile(&self, q: f64) -> Duration {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if seen + in_bucket >= rank {
                let lower = 1u64 << i;
                let upper = 1u64 << (i + 1).min(63);
                // Rank position within this bucket's samples, in (0, 1].
                let frac = (rank - seen) as f64 / in_bucket as f64;
                let us = lower as f64 + frac * (upper - lower) as f64;
                let max = self.max_us.load(Ordering::Relaxed);
                return Duration::from_micros((us as u64).min(max));
            }
            seen += in_bucket;
        }
        Duration::from_micros(self.max_us.load(Ordering::Relaxed))
    }
}

/// The service's live counters (crate-internal; snapshot via
/// [`MetricsSnapshot`]).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub rejected_other: AtomicU64,
    pub batches: AtomicU64,
    pub batched_windows: AtomicU64,
    pub worker_panics: AtomicU64,
    /// Trace-source I/O failures after admission (the registry keeps its
    /// own model-load I/O count; the snapshot sums both).
    pub io_errors: AtomicU64,
    /// Requests shed at admission by the deadline-aware overload check.
    pub sheds: AtomicU64,
    /// TCP connections reaped by a per-connection read/write timeout.
    pub conn_timeouts: AtomicU64,
    /// EWMA of per-batch scoring latency in nanoseconds (α = 1/8); `0`
    /// means no batch has been observed yet. Not a counter — the load
    /// shedder's latency estimate.
    pub ewma_batch_nanos: AtomicU64,
    pub latency: LatencyHistogram,
}

impl Counters {
    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        in_flight: usize,
        tile: usize,
        registry: RegistryStats,
    ) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_windows = self.batched_windows.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_other: self.rejected_other.load(Ordering::Relaxed),
            batches,
            batched_windows,
            batch_fill_ratio: if batches == 0 {
                0.0
            } else {
                batched_windows as f64 / (batches * tile as u64) as f64
            },
            queue_depth,
            in_flight,
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed) + registry.io_errors,
            retries: registry.retries,
            conn_timeouts: self.conn_timeouts.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            quarantines: registry.quarantines,
            corrupt_loads: registry.corrupt_loads,
            models: registry.models,
            resident_models: registry.resident_models,
            resident_bytes: registry.resident_bytes,
            model_byte_budget: registry.byte_budget,
            model_loads: registry.loads,
            model_evictions: registry.evictions,
            model_swaps: registry.swaps,
            p50_latency: self.latency.quantile(0.50),
            p99_latency: self.latency.quantile(0.99),
            max_latency: Duration::from_micros(self.latency.max_us.load(Ordering::Relaxed)),
        }
    }
}

/// A consistent-enough copy of the service metrics at one instant.
///
/// Counts are monotone over the service lifetime; `queue_depth`,
/// `in_flight`, `resident_models` and `resident_bytes` are gauges.
/// `batch_fill_ratio` is the fraction of dispatched tile capacity actually
/// carrying windows — 1.0 means every packed batch ran the GEMM
/// micro-kernels with full tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted past backpressure (includes later failures).
    pub submitted: u64,
    /// Requests completed with located starts.
    pub completed: u64,
    /// Requests that failed after admission (source I/O errors, worker
    /// panics).
    pub failed: u64,
    /// Submissions rejected with [`crate::Rejected::QueueFull`].
    pub rejected_queue_full: u64,
    /// Admitted requests dropped because their deadline passed in queue.
    pub rejected_deadline: u64,
    /// Submissions rejected for other typed reasons (unknown model, too
    /// long, invalid parameters, shutdown).
    pub rejected_other: u64,
    /// Packed cross-request batches dispatched to the GEMM kernels.
    pub batches: u64,
    /// Total windows carried by those batches.
    pub batched_windows: u64,
    /// `batched_windows / (batches * tile)` — mean tile fill.
    pub batch_fill_ratio: f64,
    /// Requests currently queued for the scheduler (gauge).
    pub queue_depth: usize,
    /// Requests admitted and not yet completed (gauge; bounded by the
    /// configured queue capacity).
    pub in_flight: usize,
    /// Worker panics contained by the scheduler (each failed its batch's
    /// requests with [`crate::ServiceError::WorkerFailed`] and left the
    /// remaining workers serving).
    pub worker_panics: u64,
    /// I/O failures observed by the stack: trace-source failures after
    /// admission plus model-load I/O failures in the registry.
    pub io_errors: u64,
    /// Model-load attempts that retried after a previous failure (after a
    /// quarantine cooldown, or falling back to the last good file).
    pub retries: u64,
    /// TCP connections closed by the per-connection read/write timeout
    /// (stalled, half-open or vanished clients reaped by [`crate::net`]).
    pub conn_timeouts: u64,
    /// Submissions shed at admission with [`crate::Rejected::Overloaded`]
    /// because the backlog already exceeded their deadline.
    pub sheds: u64,
    /// Times a model entered load-failure quarantine (cooldown during which
    /// submissions are rejected instead of hammering its broken file).
    pub quarantines: u64,
    /// Model loads rejected by format validation (bad magic, unsupported
    /// version, or a failed checksum/structure check — never served).
    pub corrupt_loads: u64,
    /// Models registered in the service's [`crate::ModelRegistry`]
    /// (resident or not).
    pub models: usize,
    /// Models currently holding weights in memory (gauge).
    pub resident_models: usize,
    /// Total bytes of resident models, weights + workspace estimate per
    /// [`sca_locator::LocatorEngine::memory_footprint`] (gauge).
    pub resident_bytes: u64,
    /// The registry's configured byte budget (`u64::MAX` = unbounded).
    pub model_byte_budget: u64,
    /// Model files loaded (cold loads + reloads after eviction + swaps).
    pub model_loads: u64,
    /// Models evicted (LRU under the byte budget, or explicitly).
    pub model_evictions: u64,
    /// Generations installed by [`crate::ModelRegistry::swap`].
    pub model_swaps: u64,
    /// Median request latency (admission → completion; interpolated within
    /// its histogram bucket).
    pub p50_latency: Duration,
    /// 99th-percentile request latency (interpolated within its histogram
    /// bucket).
    pub p99_latency: Duration,
    /// Worst observed request latency.
    pub max_latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_recorded_latencies() {
        let h = LatencyHistogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        // Interpolation keeps the estimates near the true order statistics
        // instead of the pow-2 bucket upper bounds (p50 would have read
        // 65.5 ms before): true p50 = 50 ms, the interpolated estimate sits
        // within the rank resolution of the 32–65 ms bucket.
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 >= Duration::from_millis(45), "p50 {p50:?}");
        assert!(p50 <= Duration::from_millis(56), "p50 {p50:?}");
        assert!(p99 >= Duration::from_millis(95), "p99 {p99:?}");
        assert!(p99 <= Duration::from_millis(100), "p99 {p99:?} capped by observed max");
        assert!(p50 <= p99);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // All samples land in one bucket [1024, 2048) µs; different
        // quantiles must spread across it rather than all reporting the
        // 2048 µs upper bound.
        let h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(Duration::from_micros(1500));
        }
        let p10 = h.quantile(0.10);
        let p90 = h.quantile(0.90);
        assert!(p10 >= Duration::from_micros(1024), "p10 {p10:?}");
        assert!(p10 < p90, "p10 {p10:?} must interpolate below p90 {p90:?}");
        assert!(p90 <= Duration::from_micros(1500), "p90 {p90:?} capped by observed max");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }
}
