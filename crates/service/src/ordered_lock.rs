//! Rank-ordered, poison-tolerant mutexes — the scheduler's lock order as an
//! executable invariant.
//!
//! The scheduler documents a total acquisition order over its three lock
//! kinds (see the table in the crate-internal scheduler docs):
//!
//! ```text
//! output (rank 0)  →  state (rank 1)  →  claim (rank 2)
//! ```
//!
//! [`OrderedMutex<T, RANK>`] makes that order checkable. In release builds
//! it is exactly a [`Mutex`] plus the crate's poison-tolerance policy
//! (recover the guard with [`PoisonError::into_inner`] instead of cascading
//! a peer's panic) — no bookkeeping, no overhead. Under
//! `cfg(debug_assertions)` every thread keeps a stack of the ranks it
//! holds, and acquiring a lock whose rank is not *strictly greater* than
//! the top of the stack panics immediately, turning a potential deadlock
//! into a deterministic test failure at the exact acquisition site.
//!
//! Strictness matters: two locks of the *same* rank (two requests' `output`
//! locks, say) must never be held together either, or two workers could
//! take them in opposite orders.
//!
//! [`Condvar`] waits release the mutex, so [`OrderedGuard::wait_on`] pops
//! the rank for the duration of the wait and re-checks it on wake.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// The scheduler's lock ranks, lowest first. Acquire in strictly increasing
/// rank; release in any order.
pub mod rank {
    /// A request's `output` lock (score span, segmentation, completion).
    pub const OUTPUT: u8 = 0;
    /// The scheduler `state` lock (ready queue + in-flight count).
    pub const STATE: u8 = 1;
    /// A request's `claim` lock (claim cursor over the current chunk).
    pub const CLAIM: u8 = 2;
}

#[cfg(debug_assertions)]
mod held {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks of the ordered locks this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    }

    /// Checks `rank` against the top of the held stack and pushes it.
    /// Called *after* the inner mutex is acquired, so a violation panic
    /// releases the lock on unwind without corrupting the stack.
    pub fn push(rank: u8) {
        // try_with: never panic from lock bookkeeping during thread
        // teardown, when the thread-local may already be gone.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&top) = held.last() {
                assert!(
                    rank > top,
                    "lock order violation: acquiring rank {rank} while holding rank {top} \
                     (locks must be taken in strictly increasing rank: \
                     output(0) → state(1) → claim(2))"
                );
            }
            held.push(rank);
        });
    }

    /// Removes the most recent occurrence of `rank` (guards may be dropped
    /// out of acquisition order).
    pub fn pop(rank: u8) {
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|&r| r == rank) {
                held.remove(i);
            }
        });
    }
}

/// A [`Mutex`] with a compile-time rank, checked against the thread's held
/// ranks in debug builds (see the module docs). Locking is always
/// poison-tolerant.
#[derive(Debug, Default)]
pub struct OrderedMutex<T, const RANK: u8> {
    inner: Mutex<T>,
}

impl<T, const RANK: u8> OrderedMutex<T, RANK> {
    /// Wraps `value` in a rank-`RANK` mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: Mutex::new(value) }
    }

    /// Acquires the lock, recovering from poisoning.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if this thread already holds an ordered lock
    /// of rank `>= RANK`.
    pub fn lock(&self) -> OrderedGuard<'_, T, RANK> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        held::push(RANK);
        OrderedGuard { guard: Some(guard) }
    }
}

/// The guard of an [`OrderedMutex`]; releases the rank on drop.
///
/// The inner guard rides in an `Option` so [`OrderedGuard::wait_on`] can
/// hand it to a [`Condvar`] without the drop bookkeeping firing twice.
#[derive(Debug)]
pub struct OrderedGuard<'a, T, const RANK: u8> {
    guard: Option<MutexGuard<'a, T>>,
}

impl<'a, T, const RANK: u8> OrderedGuard<'a, T, RANK> {
    /// Waits on `condvar`, releasing the mutex (and its rank) for the
    /// duration and re-acquiring both on wake — poison-tolerantly, like
    /// every lock in this crate. Spurious wakes pass through, as with
    /// [`Condvar::wait`].
    pub fn wait_on(mut self, condvar: &Condvar) -> Self {
        let inner = self.guard.take().expect("guard invariant: present until drop/wait");
        #[cfg(debug_assertions)]
        held::pop(RANK);
        drop(self); // guard is None: the Drop impl will not pop again
        let inner = condvar.wait(inner).unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        held::push(RANK);
        Self { guard: Some(inner) }
    }
}

impl<T, const RANK: u8> Deref for OrderedGuard<'_, T, RANK> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard invariant: present until drop/wait")
    }
}

impl<T, const RANK: u8> DerefMut for OrderedGuard<'_, T, RANK> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard invariant: present until drop/wait")
    }
}

impl<T, const RANK: u8> Drop for OrderedGuard<'_, T, RANK> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        if self.guard.is_some() {
            held::pop(RANK);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::{Arc, Condvar};
    use std::time::Duration;

    use super::{rank, OrderedMutex};

    #[test]
    fn in_order_acquisition_and_out_of_order_release() {
        let output: OrderedMutex<u32, { rank::OUTPUT }> = OrderedMutex::new(1);
        let state: OrderedMutex<u32, { rank::STATE }> = OrderedMutex::new(2);
        let claim: OrderedMutex<u32, { rank::CLAIM }> = OrderedMutex::new(3);
        let a = output.lock();
        let b = state.lock();
        let c = claim.lock();
        assert_eq!(*a + *b + *c, 6);
        // Out-of-order release must leave the stack usable: after dropping
        // the middle rank and then the top one, `state` can be retaken
        // against the still-held rank-0 guard.
        drop(b);
        drop(c);
        let b2 = state.lock();
        assert_eq!(*b2, 2);
        drop(a);
        drop(b2);
        // Skipping ranks is fine — only the relative order matters.
        let _c = claim.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock order violation")]
    fn inversion_panics_in_debug() {
        let state: OrderedMutex<(), { rank::STATE }> = OrderedMutex::new(());
        let output: OrderedMutex<(), { rank::OUTPUT }> = OrderedMutex::new(());
        let _st = state.lock();
        let _out = output.lock(); // state → output inverts output → state
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock order violation")]
    fn same_rank_nesting_panics_in_debug() {
        let a: OrderedMutex<(), { rank::OUTPUT }> = OrderedMutex::new(());
        let b: OrderedMutex<(), { rank::OUTPUT }> = OrderedMutex::new(());
        let _a = a.lock();
        let _b = b.lock();
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_builds_do_not_check() {
        // The wrapper must be zero-cost in release: the same inversion that
        // panics under debug_assertions goes through (the locks are
        // distinct, so no deadlock either).
        let state: OrderedMutex<(), { rank::STATE }> = OrderedMutex::new(());
        let output: OrderedMutex<(), { rank::OUTPUT }> = OrderedMutex::new(());
        let _st = state.lock();
        let _out = output.lock();
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(OrderedMutex::<u32, { rank::STATE }>::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn wait_on_releases_and_reacquires_the_rank() {
        let pair = Arc::new((OrderedMutex::<bool, { rank::STATE }>::new(false), Condvar::new()));
        let notifier = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *notifier.0.lock() = true;
            notifier.1.notify_all();
        });
        let mut ready = pair.0.lock();
        while !*ready {
            ready = ready.wait_on(&pair.1);
        }
        // The rank is held again after the wait: a lower rank must refuse
        // to nest (checked via the dedicated should_panic tests); a higher
        // one must succeed.
        let claim: OrderedMutex<(), { rank::CLAIM }> = OrderedMutex::new(());
        let _c = claim.lock();
        drop(ready);
        t.join().unwrap();
    }
}
