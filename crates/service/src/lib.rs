//! # locsvc — the concurrent locate service
//!
//! [`sca_locator::LocatorEngine`] is `Send + Sync` and persistable, but every
//! caller so far drives it synchronously: one thread, one trace, one result.
//! A serving deployment sees something else entirely — many clients
//! submitting traces of wildly different sizes at once, some in memory, some
//! streamed from disk, some arriving over a socket that cannot seek, against
//! a *matrix* of scenario models that come and go while requests are in
//! flight. This crate is the request-queue front-end for that workload:
//!
//! * **Bounded admission.** [`LocatorService::submit_trace`] and friends
//!   either enqueue the request or refuse it *immediately* with a typed
//!   [`Rejected`] — [`Rejected::QueueFull`] is backpressure, not an
//!   afterthought. Nothing inside the service buffers without bound.
//! * **Name-keyed models, hot swap, eviction.** Requests address models by
//!   scenario *name* through a [`ModelRegistry`]: lazily loaded from
//!   `SCALOCEN` files on first request, reference-counted so admitted work
//!   pins the generation it resolved, LRU-evicted under a byte budget, and
//!   [`ModelRegistry::swap`]-able at runtime — new admissions route to the
//!   new weights while in-flight requests complete **bit-identically** on
//!   the old ones. See the [`registry`] module docs.
//! * **Cross-request window coalescing.** Worker threads do not score one
//!   request at a time: they pull up to a tile's worth of windows from *as
//!   many queued requests as it takes* (front of the queue first, same
//!   resident weights only) and pack them into one `[B, 1, N]` batch, so
//!   the packed `MR=4×NR=16` GEMM micro-kernels of `tinynn` run full tiles
//!   even when every individual request is tiny. Per-window scores are
//!   independent of batch composition (the invariant every chunked/threaded
//!   parity test in `sca-locator` pins), so the demuxed per-request results
//!   are **bit-identical** to [`sca_locator::LocatorEngine::locate`] /
//!   [`sca_locator::LocatorEngine::locate_streamed`].
//! * **Per-request deadlines + load shedding.** A request that outsits its
//!   deadline in the queue is dropped at the next scheduling point and
//!   completes with [`ServiceError::DeadlineExceeded`] instead of occupying
//!   the cores that could still serve fresher work — and a request whose
//!   deadline is *already* doomed at admission (queue depth × observed
//!   per-batch latency exceeds it) is shed at the door with
//!   [`Rejected::Overloaded`] before any work is wasted on it.
//! * **Fault isolation.** A panic while scoring fails *that batch's*
//!   requests with a typed [`ServiceError::WorkerFailed`] and is counted in
//!   [`MetricsSnapshot::worker_panics`]; every scheduler lock recovers from
//!   poisoning, the remaining workers keep serving, and
//!   [`LocatorService::shutdown`] reports rather than propagates.
//! * **Graceful drain.** [`LocatorService::shutdown`] (also run on drop)
//!   stops admission, lets the workers finish every admitted request, then
//!   joins them — no request already accepted is ever dropped.
//! * **Non-seekable ingest.** [`LocatorService::submit_reader`] accepts a
//!   plain [`std::io::Read`] — a pipe, a socket — through
//!   [`sca_trace::SequentialTraceSource`], which carries the window-tail
//!   overlap between chunks in memory so the forward-only stream still
//!   yields the exact chunk geometry of the seekable path.
//! * **Wire protocol.** [`net`] adds a thin length-prefixed frame protocol
//!   over [`std::net::TcpListener`]: clients ship a model *name* and
//!   little-endian `f32` samples, the service answers with located CO start
//!   samples; admin frames drive swap/evict remotely. Frames are parsed
//!   with the same bounded, typed-error discipline as the model and trace
//!   file formats.
//! * **Observability.** [`LocatorService::metrics`] snapshots queue depth,
//!   batch fill ratio, rejection counters, interpolated p50/p99 latency and
//!   the registry's load/evict/swap counters and resident-bytes gauge
//!   ([`MetricsSnapshot`]), plus the failure-domain counters (I/O errors,
//!   retries, connection timeouts, sheds, quarantines, corrupt loads).
//! * **Deterministic fault injection.** The [`faults`] module provides a
//!   seed-driven [`FaultPlan`] threaded through [`ServiceConfig::faults`] /
//!   [`net::ServerConfig::faults`] / [`RegistryConfig::faults`] that injects
//!   typed failures at trace reads, model loads, socket I/O and scoring —
//!   the chaos harness (`tests/chaos.rs`) drives it through live traffic and
//!   reconciles every fired fault against typed errors and metrics.
//!
//! ## Scheduling in one paragraph
//!
//! Every admitted request owns a *current chunk* (the whole trace for
//! in-memory requests; one streaming chunk otherwise) and sits in a FIFO
//! ready queue. A worker claims up to `tile_windows` consecutive windows,
//! crossing request boundaries but never weight boundaries (requests batch
//! together exactly when they pin the *same resident engine* — same name
//! **and** same generation); fully-claimed requests leave the queue while
//! their scores are still in flight. Scores scatter back into a per-request
//! span; the worker that completes a span either segments it (in-memory:
//! [`sca_locator::Segmenter`] on the full signal, exactly `locate`) or
//! pushes it into the request's [`sca_locator::StreamingSegmenter`] and
//! re-enqueues the request for its next chunk (exactly `locate_streamed`).
//! FIFO claiming keeps head-of-line latency low; coalescing keeps the
//! kernels fed when the queue is a crowd of small requests.
//!
//! ## Example
//!
//! ```
//! use locsvc::{LocatorService, RequestOptions, ServiceConfig};
//! use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
//! use sca_trace::Trace;
//!
//! let engine = LocatorEngine::new(
//!     CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 1 }),
//!     SlidingWindowClassifier::new(16, 4),
//!     Segmenter::default(),
//! );
//! let expected: Vec<Vec<usize>> = (0..4)
//!     .map(|i| Trace::from_samples((0..200).map(|x| ((x + i) as f32 * 0.1).sin()).collect()))
//!     .map(|t| engine.locate(&t))
//!     .collect();
//!
//! let service = LocatorService::start(vec![engine], ServiceConfig::default());
//! let tickets: Vec<_> = (0..4)
//!     .map(|i| {
//!         let trace =
//!             Trace::from_samples((0..200).map(|x| ((x + i) as f32 * 0.1).sin()).collect());
//!         service.submit_trace("model-0", trace, RequestOptions::default()).unwrap()
//!     })
//!     .collect();
//! for (ticket, expected) in tickets.into_iter().zip(expected) {
//!     assert_eq!(ticket.wait().unwrap().starts, expected);
//! }
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod metrics;
pub mod net;
pub mod ordered_lock;
pub mod registry;

use std::collections::VecDeque;
use std::io::Read;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sca_locator::{LocatorEngine, StreamingSegmenter, WindowScorer};
use sca_trace::{SequentialTraceSource, Trace, TraceError, TraceSource};
use tinynn::Workspace;

use crate::ordered_lock::{rank, OrderedMutex};

pub use faults::{FaultKind, FaultPlan, FaultPlanBuilder, FaultSite};
pub use metrics::MetricsSnapshot;
pub use registry::{ModelHandle, ModelRegistry, RegistryConfig, RegistryError, RegistryStats};

// ---------------------------------------------------------------------------
// Public request/response surface
// ---------------------------------------------------------------------------

/// Per-request knobs; `Default` is a no-deadline, service-default request.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Complete with [`ServiceError::DeadlineExceeded`] instead of scoring
    /// if this much time passes before the scheduler can serve the request.
    pub deadline: Option<Duration>,
    /// Chunk size (samples) for streamed requests; `None` uses
    /// [`ServiceConfig::chunk_len`]. Ignored for in-memory traces.
    pub chunk_len: Option<usize>,
    /// Also return the raw sliding-window score signal in
    /// [`LocateResult::scores`] (costs O(windows) memory per request).
    pub collect_scores: bool,
}

/// Why a submission was refused at the door (admission control). The request
/// was **not** enqueued; nothing was buffered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is at capacity — backpressure; retry later.
    QueueFull {
        /// The configured in-flight request bound.
        capacity: usize,
    },
    /// The service no longer accepts work (shutdown in progress).
    ShuttingDown,
    /// No model is registered under the given name.
    UnknownModel {
        /// The unresolved model name.
        name: String,
    },
    /// The model is registered but could not be made resident (its backing
    /// file failed to load). The registration stays; a later submission
    /// retries the load.
    ModelUnavailable {
        /// The model whose load failed.
        name: String,
        /// The load failure, rendered.
        reason: String,
    },
    /// The declared trace length exceeds [`ServiceConfig::max_trace_len`].
    TooLong {
        /// Declared sample count.
        len: usize,
        /// The configured admission bound.
        max: usize,
    },
    /// A request parameter is invalid (e.g. a zero chunk length).
    InvalidRequest(String),
    /// Deadline-aware load shedding: at admission time, the backlog already
    /// ahead of this request (queue depth × the observed per-batch scoring
    /// latency) exceeds the request's deadline, so it would expire in the
    /// queue — shed it now rather than after wasted work. Only requests
    /// carrying a [`RequestOptions::deadline`] are ever shed.
    Overloaded {
        /// Admitted-but-incomplete requests ahead at admission time.
        queue_depth: usize,
        /// Estimated time to drain the backlog plus this request.
        estimate: Duration,
        /// The deadline the estimate already exceeds.
        deadline: Duration,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "request queue full ({capacity} in flight)")
            }
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
            Rejected::UnknownModel { name } => write!(f, "unknown model {name:?}"),
            Rejected::ModelUnavailable { name, reason } => {
                write!(f, "model {name:?} unavailable: {reason}")
            }
            Rejected::TooLong { len, max } => {
                write!(f, "declared trace length {len} exceeds the admission bound {max}")
            }
            Rejected::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            Rejected::Overloaded { queue_depth, estimate, deadline } => write!(
                f,
                "shed: estimated backlog drain {estimate:?} ({queue_depth} in flight) \
                 exceeds the {deadline:?} deadline"
            ),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why an *admitted* request failed to produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request's deadline passed before (or while) it was scheduled.
    DeadlineExceeded,
    /// The request's trace source failed mid-stream (I/O error, truncated
    /// stream, rewind on a pipe, …).
    Source(TraceError),
    /// A worker panicked while scoring a batch containing this request.
    /// The panic was contained: other requests and the remaining workers
    /// are unaffected (see [`MetricsSnapshot::worker_panics`]).
    WorkerFailed,
    /// The service stopped before the request completed (worker panic —
    /// graceful shutdown drains instead).
    Stopped,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded before scoring"),
            ServiceError::Source(e) => write!(f, "trace source failed: {e}"),
            ServiceError::WorkerFailed => {
                write!(f, "a worker panicked while scoring this request's batch")
            }
            ServiceError::Stopped => write!(f, "service stopped before completion"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A completed locate request.
#[derive(Debug, Clone, PartialEq)]
pub struct LocateResult {
    /// Located CO start samples — bit-identical to
    /// [`sca_locator::LocatorEngine::locate`] (in-memory) /
    /// [`sca_locator::LocatorEngine::locate_streamed`] (streamed).
    pub starts: Vec<usize>,
    /// Number of sliding windows scored.
    pub windows: usize,
    /// The raw score signal, if [`RequestOptions::collect_scores`] was set.
    pub scores: Option<Vec<f32>>,
    /// The model generation this request was admitted against (see
    /// [`ModelHandle::generation`]); a request admitted before a
    /// [`ModelRegistry::swap`] completes on the old generation and reports
    /// it here.
    pub generation: u64,
    /// Admission-to-completion latency.
    pub latency: Duration,
}

/// A claim check for an admitted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<LocateResult, ServiceError>>,
}

impl Ticket {
    /// Blocks until the request completes (result or typed failure).
    pub fn wait(self) -> Result<LocateResult, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Stopped))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<LocateResult, ServiceError>> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the result. `None` means the request is
    /// still in flight when the timeout elapses — the ticket stays
    /// redeemable, so callers can bound each wait on a possibly-wedged
    /// service instead of blocking forever, and retry or abandon at their
    /// own pace. A service that stopped without completing the request
    /// yields `Some(Err(ServiceError::Stopped))`, exactly like
    /// [`Ticket::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<LocateResult, ServiceError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Some(Err(ServiceError::Stopped))
            }
        }
    }
}

/// Service sizing and limits; `Default` suits tests and single-host serving.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker thread count (`0` = one per available core).
    pub workers: usize,
    /// Maximum admitted-but-incomplete requests; submissions beyond it are
    /// rejected with [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Windows per packed cross-request batch. The default matches the
    /// sliding classifier's batch size; per-window scores do not depend on
    /// it (only throughput does).
    pub tile_windows: usize,
    /// Default chunk length (samples) for streamed requests.
    pub chunk_len: usize,
    /// Admission bound on declared trace lengths (`usize::MAX` = unbounded).
    pub max_trace_len: usize,
    /// Deterministic fault injection for chaos testing (see [`faults`]).
    /// The default empty plan injects nothing and costs nothing; the
    /// `fault-plan-confined` xcheck rule bans non-test library code from
    /// ever building a non-empty plan.
    pub faults: FaultPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 64,
            tile_windows: 64,
            chunk_len: 1 << 20,
            max_trace_len: usize::MAX,
            faults: FaultPlan::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Internal scheduler state
// ---------------------------------------------------------------------------
//
// Lock order (acquire left before right, release any time):
//
//     output (rank 0)  →  state (rank 1)  →  claim (rank 2)
//
// The order is *enforced*, not just documented: the three lock kinds are
// `ordered_lock::OrderedMutex`es carrying the `ordered_lock::rank`
// constants, and debug builds panic at the acquisition site of any
// inversion (see that module's docs; `cargo test -p locsvc` exercises the
// checker, release builds compile the bookkeeping away).
//
// * `state` (the scheduler mutex + condvar) guards the ready queue and the
//   in-flight count.
// * each request's `claim` guards its claim cursor over the current chunk;
//   claimed only with `state` held (or from the exclusive Load step).
// * each request's `output` guards its score span, segmentation state and
//   completion channel; never acquired while holding `state` or `claim`.
//
// Every lock recovers from poisoning (`OrderedMutex::lock`, and
// `lock_poisoned` for the unranked worker-handle list): a panicking worker
// must not take the service down with it, and each critical section
// restores the scheduler invariants before unwinding can observe them
// (requests touched by the panicking batch are failed explicitly by
// `fail_batch`).
//
// A request's current chunk is immutable behind an `Arc` from the moment it
// is published in the claim state until every score landed, so workers read
// its samples without any lock.

/// Poison-tolerant lock: recover the guard from a peer's panic instead of
/// cascading it. Scheduler invariants hold at every unlock point, so the
/// recovered state is consistent; the panicking worker's own requests are
/// failed separately with [`ServiceError::WorkerFailed`].
pub(crate) fn lock_poisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An immutable span of samples backing a contiguous run of windows. Window
/// `w` of the chunk starts at sample `w * stride` of `samples` (the chunk is
/// cut on the stride grid, exactly like the streaming classifier's chunks).
struct Chunk {
    window_count: usize,
    samples: Vec<f32>,
}

struct ClaimState {
    chunk: Option<Arc<Chunk>>,
    /// Next unclaimed window offset within the chunk.
    next: usize,
}

/// Where completed score spans go.
enum Sink {
    /// Single-chunk in-memory request: segment the full signal at the end
    /// (the `locate` path).
    Whole,
    /// Multi-chunk streamed request: incremental segmentation, next chunk
    /// loaded on demand (the `locate_streamed` path).
    Streaming {
        source: Box<dyn TraceSource + Send>,
        segmenter: Option<StreamingSegmenter>,
        windows_per_chunk: usize,
        total_windows: usize,
        /// First window of the next chunk to load.
        next_first: usize,
    },
}

struct OutputState {
    /// Completion channel; `None` once the request completed (ok or error).
    done: Option<SyncSender<Result<LocateResult, ServiceError>>>,
    /// Set when the request was dropped (deadline/source failure/worker
    /// panic); late scatters from in-flight batches are discarded.
    canceled: bool,
    /// Score span of the current chunk (window offset → score).
    span: Vec<f32>,
    /// Unscored windows remaining in the current chunk.
    remaining: usize,
    /// Total windows scored across all chunks.
    scored: usize,
    /// Full score signal, when the request asked for it.
    collected: Option<Vec<f32>>,
    sink: Sink,
}

struct ActiveRequest {
    /// The model resolved at admission: name, generation and the pinned
    /// engine `Arc`. Swaps and evictions after admission cannot affect this
    /// request — it completes on exactly these weights.
    handle: ModelHandle,
    deadline: Option<Instant>,
    submitted: Instant,
    claim: OrderedMutex<ClaimState, { rank::CLAIM }>,
    output: OrderedMutex<OutputState, { rank::OUTPUT }>,
}

struct SchedState {
    ready: VecDeque<Arc<ActiveRequest>>,
    /// Admitted and not yet completed (the queue-capacity gauge).
    pending: usize,
    accepting: bool,
    shutdown: bool,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: ServiceConfig,
    state: OrderedMutex<SchedState, { rank::STATE }>,
    work_ready: Condvar,
    counters: metrics::Counters,
}

/// One window-run claimed from a request's current chunk.
struct Claim {
    req: Arc<ActiveRequest>,
    chunk: Arc<Chunk>,
    /// First claimed window offset within the chunk.
    first: usize,
    count: usize,
}

enum Step {
    Exit,
    Batch(Vec<Claim>),
    Load(Arc<ActiveRequest>),
    Expire(Arc<ActiveRequest>),
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A running locate service: worker threads, a bounded request queue and a
/// [`ModelRegistry`] of engines addressed by name (see the
/// [crate docs](crate) for the architecture).
#[derive(Debug)]
pub struct LocatorService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("registry", &self.registry).finish_non_exhaustive()
    }
}

impl LocatorService {
    /// Starts a service over in-process engines, installed pinned in a
    /// fresh unbounded registry as `"model-0"`, `"model-1"`, … in order.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty or a config limit is zero — these are
    /// deployment constants, not request data.
    pub fn start(engines: Vec<LocatorEngine>, cfg: ServiceConfig) -> Self {
        assert!(!engines.is_empty(), "a service needs at least one engine");
        let registry = Arc::new(ModelRegistry::default());
        for (i, engine) in engines.into_iter().enumerate() {
            registry.install(format!("model-{i}"), engine).expect("fresh registry names clash");
        }
        Self::with_registry(registry, cfg)
    }

    /// Starts a service over a caller-built [`ModelRegistry`] — the
    /// multi-scenario deployment path: register/install models (before or
    /// after start), swap and evict them live through
    /// [`Self::registry`].
    ///
    /// # Panics
    ///
    /// Panics if a config limit is zero.
    pub fn with_registry(registry: Arc<ModelRegistry>, cfg: ServiceConfig) -> Self {
        assert!(cfg.queue_capacity > 0, "queue capacity must be non-zero");
        assert!(cfg.tile_windows > 0, "tile window count must be non-zero");
        assert!(cfg.chunk_len > 0, "chunk length must be non-zero");
        let workers = if cfg.workers == 0 { tinynn::parallel::max_threads() } else { cfg.workers };
        let shared = Arc::new(Shared {
            registry,
            cfg,
            state: OrderedMutex::new(SchedState {
                ready: VecDeque::new(),
                pending: 0,
                accepting: true,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            counters: metrics::Counters::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("locsvc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a service worker failed")
            })
            .collect();
        Self { shared, workers: Mutex::new(handles) }
    }

    /// The model registry: register, swap and evict models on a running
    /// service. New admissions observe changes immediately; requests
    /// already admitted complete on the generation they resolved.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// The registered model names, in registration order.
    pub fn model_names(&self) -> Vec<Arc<str>> {
        self.shared.registry.names()
    }

    /// Resolves a model name to its current engine (loading it if cold) —
    /// the reference for parity checks. `None` if the name is unknown or
    /// its file fails to load.
    pub fn engine(&self, name: &str) -> Option<Arc<LocatorEngine>> {
        self.shared.registry.resolve(name).ok().map(|h| Arc::clone(h.engine()))
    }

    /// Submits an in-memory trace against the named model. The result's
    /// starts are bit-identical to [`LocatorEngine::locate`] on the same
    /// trace with the engine generation the request was admitted against.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Rejected`] — queue full, unknown model, model file
    /// unloadable, over the length bound, or shutting down — without
    /// buffering anything.
    pub fn submit_trace(
        &self,
        model: &str,
        trace: Trace,
        opts: RequestOptions,
    ) -> Result<Ticket, Rejected> {
        let handle = self.checked_handle(model, trace.len())?;
        let sliding = *handle.engine().sliding();
        let total = sliding.output_len(trace.len());
        let chunk = Arc::new(Chunk { window_count: total, samples: trace.into_samples() });
        self.enqueue(handle, opts, total, Some(chunk), Sink::Whole)
    }

    /// Submits a request served by a [`TraceSource`] — typically an on-disk
    /// [`sca_trace::FileTraceSource`] — scored chunk by chunk in
    /// O(chunk) memory. The result's starts are bit-identical to
    /// [`LocatorEngine::locate_streamed`] with the same chunk length.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Rejected`] on admission failure; source I/O errors
    /// after admission surface through the ticket as
    /// [`ServiceError::Source`].
    pub fn submit_source(
        &self,
        model: &str,
        source: Box<dyn TraceSource + Send>,
        opts: RequestOptions,
    ) -> Result<Ticket, Rejected> {
        // With a fault plan active, every streamed fill passes the
        // `TraceRead` injection site; the empty plan skips the wrapper.
        let source: Box<dyn TraceSource + Send> = if self.shared.cfg.faults.is_empty() {
            source
        } else {
            Box::new(faults::FaultedSource::new(source, self.shared.cfg.faults.clone()))
        };
        let handle = self.checked_handle(model, source.len())?;
        let sliding = *handle.engine().sliding();
        let chunk_len = opts.chunk_len.unwrap_or(self.shared.cfg.chunk_len);
        if chunk_len == 0 {
            return Err(
                self.reject_other(Rejected::InvalidRequest("chunk length must be non-zero".into()))
            );
        }
        let total = sliding.output_len(source.len());
        let sink = Sink::Streaming {
            source,
            segmenter: Some(StreamingSegmenter::new(
                *handle.engine().segmenter().config(),
                sliding.stride(),
            )),
            windows_per_chunk: sliding.output_len(chunk_len).max(1),
            total_windows: total,
            next_first: 0,
        };
        self.enqueue(handle, opts, total, None, sink)
    }

    /// Submits a request ingesting `declared_len` little-endian `f32`
    /// samples from a forward-only byte stream (pipe, socket) through a
    /// [`SequentialTraceSource`]. Chunk geometry — and therefore every
    /// score — matches [`Self::submit_source`] over a seekable source of the
    /// same samples.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Rejected`] on admission failure (including a
    /// declared length whose byte size overflows); stream truncation after
    /// admission surfaces through the ticket as [`ServiceError::Source`].
    pub fn submit_reader<R: Read + Send + 'static>(
        &self,
        model: &str,
        reader: R,
        declared_len: usize,
        opts: RequestOptions,
    ) -> Result<Ticket, Rejected> {
        let source = SequentialTraceSource::new(reader, declared_len)
            .map_err(|e| self.reject_other(Rejected::InvalidRequest(e.to_string())))?;
        self.submit_source(model, Box::new(source), opts)
    }

    /// A point-in-time copy of the service counters, latency quantiles and
    /// registry gauges.
    pub fn metrics(&self) -> MetricsSnapshot {
        let (depth, in_flight) = {
            let st = self.shared.state.lock();
            (st.ready.len(), st.pending)
        };
        self.shared.counters.snapshot(
            depth,
            in_flight,
            self.shared.cfg.tile_windows,
            self.shared.registry.stats(),
        )
    }

    /// Stops admission, drains every admitted request, then joins the
    /// workers. Idempotent; also run on drop. Submissions during or after
    /// the drain are rejected with [`Rejected::ShuttingDown`]. A worker
    /// that died of an uncontained panic is *reported* (counted in
    /// [`MetricsSnapshot::worker_panics`]) — never propagated to the
    /// caller.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock();
            st.accepting = false;
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        let handles = std::mem::take(&mut *lock_poisoned(&self.workers));
        for handle in handles {
            if handle.join().is_err() {
                self.shared.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // -- internals ----------------------------------------------------------

    /// Resolves the model at admission time, pinning the current generation
    /// for the whole request, and checks the length bound.
    fn checked_handle(&self, model: &str, len: usize) -> Result<ModelHandle, Rejected> {
        let handle = match self.shared.registry.resolve(model) {
            Ok(handle) => handle,
            Err(RegistryError::UnknownModel { name }) => {
                return Err(self.reject_other(Rejected::UnknownModel { name }));
            }
            Err(RegistryError::Load { name, error }) => {
                return Err(self
                    .reject_other(Rejected::ModelUnavailable { name, reason: error.to_string() }));
            }
            Err(RegistryError::Quarantined { name, retry_in }) => {
                return Err(self.reject_other(Rejected::ModelUnavailable {
                    name,
                    reason: format!(
                        "quarantined after repeated load failures (next attempt in {retry_in:?})"
                    ),
                }));
            }
            Err(other) => {
                return Err(self.reject_other(Rejected::InvalidRequest(other.to_string())));
            }
        };
        if len > self.shared.cfg.max_trace_len {
            return Err(
                self.reject_other(Rejected::TooLong { len, max: self.shared.cfg.max_trace_len })
            );
        }
        Ok(handle)
    }

    fn reject_other(&self, why: Rejected) -> Rejected {
        self.shared.counters.rejected_other.fetch_add(1, Ordering::Relaxed);
        why
    }

    /// Records one TCP connection reaped by a per-connection read/write
    /// timeout (called by [`net`]'s connection wrapper).
    pub(crate) fn note_conn_timeout(&self) {
        self.shared.counters.conn_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission + enqueue, or the zero-window fast path.
    fn enqueue(
        &self,
        handle: ModelHandle,
        opts: RequestOptions,
        total_windows: usize,
        chunk: Option<Arc<Chunk>>,
        sink: Sink,
    ) -> Result<Ticket, Rejected> {
        let shared = &self.shared;
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        if total_windows == 0 {
            // Too short for a single window: same answer `locate` gives,
            // without occupying a queue slot.
            {
                let st = shared.state.lock();
                if !st.accepting {
                    return Err(Rejected::ShuttingDown);
                }
            }
            let engine = handle.engine();
            let starts = engine.segmenter().segment(&[], engine.sliding().stride());
            shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.counters.latency.record(Duration::ZERO);
            let scores = opts.collect_scores.then(Vec::new);
            let _ = tx.send(Ok(LocateResult {
                starts,
                windows: 0,
                scores,
                generation: handle.generation(),
                latency: Duration::ZERO,
            }));
            return Ok(Ticket { rx });
        }
        let submitted = Instant::now();
        let req = Arc::new(ActiveRequest {
            handle,
            deadline: opts.deadline.map(|d| submitted + d),
            submitted,
            claim: OrderedMutex::new(ClaimState {
                next: 0,
                chunk: match &chunk {
                    Some(c) => Some(Arc::clone(c)),
                    None => None,
                },
            }),
            output: OrderedMutex::new(OutputState {
                done: Some(tx),
                canceled: false,
                span: match &chunk {
                    Some(c) => vec![0.0; c.window_count],
                    None => Vec::new(),
                },
                remaining: chunk.as_ref().map_or(0, |c| c.window_count),
                scored: 0,
                collected: opts.collect_scores.then(|| Vec::with_capacity(total_windows)),
                sink,
            }),
        });
        {
            let mut st = shared.state.lock();
            if !st.accepting {
                return Err(Rejected::ShuttingDown);
            }
            if st.pending >= shared.cfg.queue_capacity {
                shared.counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::QueueFull { capacity: shared.cfg.queue_capacity });
            }
            // Deadline-aware load shedding: if the backlog already ahead of
            // this request is estimated (queue depth × observed per-batch
            // scoring latency, an EWMA kept by `score_batch`) to outlast the
            // deadline, the request would only expire in the queue — reject
            // it at the door instead of after wasted work. A cold EWMA (no
            // batch observed yet) never sheds.
            if let Some(deadline) = opts.deadline {
                let batch_nanos = shared.counters.ewma_batch_nanos.load(Ordering::Relaxed);
                if batch_nanos > 0 {
                    let estimate =
                        Duration::from_nanos(batch_nanos.saturating_mul(st.pending as u64 + 1));
                    if estimate > deadline {
                        shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
                        return Err(Rejected::Overloaded {
                            queue_depth: st.pending,
                            estimate,
                            deadline,
                        });
                    }
                }
            }
            st.pending += 1;
            st.ready.push_back(req);
            shared.work_ready.notify_all();
        }
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket { rx })
    }
}

impl Drop for LocatorService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    // Scoring must stay sequential inside a worker: the workers themselves
    // are the parallelism (same rule as `locate_batch`'s trace stealing).
    let _serial = tinynn::parallel::serial_region();
    let mut ws = Workspace::new();
    let mut scores = Vec::new();
    loop {
        match next_step(shared) {
            Step::Exit => break,
            Step::Batch(batch) => {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    score_batch(shared, &mut ws, &mut scores, &batch);
                }));
                if outcome.is_err() {
                    // The workspace and score buffer may hold torn state;
                    // replace them and fail exactly this batch's requests.
                    ws = Workspace::new();
                    scores = Vec::new();
                    fail_batch(shared, &batch);
                }
            }
            Step::Load(req) => {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    load_chunk(shared, &req);
                }));
                if outcome.is_err() {
                    fail_request(shared, &req);
                }
            }
            Step::Expire(req) => expire(shared, &req),
        }
    }
}

/// Fails every request of a batch whose scoring panicked, with the typed
/// [`ServiceError::WorkerFailed`]; requests the batch already completed (or
/// that completed elsewhere) are left alone.
fn fail_batch(shared: &Shared, batch: &[Claim]) {
    shared.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
    for c in batch {
        let mut out = c.req.output.lock();
        if out.done.is_none() {
            continue;
        }
        out.canceled = true;
        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
        complete(shared, &c.req, &mut out, Err(ServiceError::WorkerFailed));
    }
}

/// Fails one request whose chunk load panicked.
fn fail_request(shared: &Shared, req: &Arc<ActiveRequest>) {
    shared.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
    let mut out = req.output.lock();
    if out.done.is_none() {
        return;
    }
    out.canceled = true;
    shared.counters.failed.fetch_add(1, Ordering::Relaxed);
    complete(shared, req, &mut out, Err(ServiceError::WorkerFailed));
}

/// Blocks until there is something to do and returns it. Claiming crosses
/// request boundaries (FIFO order) but not weight boundaries — two requests
/// batch together exactly when they pin the same resident engine
/// (`Arc::ptr_eq`), i.e. same model name *and* same generation — and stops
/// at a request whose next chunk is not loaded yet — loading is its own
/// step so no lock is held across I/O.
fn next_step(shared: &Shared) -> Step {
    let mut st = shared.state.lock();
    loop {
        let now = Instant::now();
        let mut batch: Vec<Claim> = Vec::new();
        let mut claimed = 0usize;
        let mut engine: Option<Arc<LocatorEngine>> = None;
        while claimed < shared.cfg.tile_windows {
            let Some(front) = st.ready.front() else { break };
            if front.deadline.is_some_and(|d| d <= now) {
                let req = st.ready.pop_front().expect("front just observed");
                if batch.is_empty() {
                    return Step::Expire(req);
                }
                // Score the batch in hand first; the expired request is
                // re-examined (and expired) on the next pass.
                st.ready.push_front(req);
                break;
            }
            if engine.as_ref().is_some_and(|e| !Arc::ptr_eq(e, front.handle.engine())) {
                break;
            }
            let mut claim = front.claim.lock();
            match claim.chunk.clone() {
                None => {
                    drop(claim);
                    let req = st.ready.pop_front().expect("front just observed");
                    if batch.is_empty() {
                        return Step::Load(req);
                    }
                    // Batch in hand: leave the load for the next pass.
                    st.ready.push_front(req);
                    break;
                }
                Some(chunk) => {
                    let avail = chunk.window_count - claim.next;
                    if avail == 0 {
                        // Fully claimed; scores still in flight elsewhere.
                        drop(claim);
                        st.ready.pop_front();
                        continue;
                    }
                    let take = avail.min(shared.cfg.tile_windows - claimed);
                    let first = claim.next;
                    claim.next += take;
                    let drained = claim.next == chunk.window_count;
                    drop(claim);
                    engine = Some(Arc::clone(front.handle.engine()));
                    batch.push(Claim { req: Arc::clone(front), chunk, first, count: take });
                    claimed += take;
                    if drained {
                        st.ready.pop_front();
                    }
                }
            }
        }
        if !batch.is_empty() {
            return Step::Batch(batch);
        }
        if st.shutdown && st.pending == 0 {
            return Step::Exit;
        }
        st = st.wait_on(&shared.work_ready);
    }
}

/// Packs the claimed windows into one `[B, 1, N]` tensor, scores it through
/// the shared weights, and scatters the scores back per request. Row
/// staging is byte-for-byte the sliding classifier's (copy, standardize in
/// place, score via `score_windows_into`), so the scores are bit-identical
/// to the single-request paths regardless of how requests were packed.
fn score_batch(shared: &Shared, ws: &mut Workspace, scores: &mut Vec<f32>, batch: &[Claim]) {
    let started = Instant::now();
    match shared.cfg.faults.check(faults::FaultSite::Score) {
        Some(faults::FaultKind::ScorePanic) => {
            panic!("injected scoring fault (FaultPlan, site Score)");
        }
        Some(faults::FaultKind::Stall(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(_) | None => {}
    }
    let engine = batch[0].req.handle.engine();
    let sliding = engine.sliding();
    let (n, stride, standardize) = (sliding.window_len(), sliding.stride(), sliding.standardize());
    let total: usize = batch.iter().map(|c| c.count).sum();
    let mut input = ws.uninit_tensor(&[total, 1, n]);
    let mut row = 0usize;
    for c in batch {
        let data = input.data_mut();
        for w in c.first..c.first + c.count {
            let dst = &mut data[row * n..(row + 1) * n];
            dst.copy_from_slice(&c.chunk.samples[w * stride..w * stride + n]);
            if standardize {
                sca_trace::dsp::standardize_in_place(dst);
            }
            row += 1;
        }
    }
    engine.model().score_windows_into(&input, ws, scores);
    ws.recycle(input);
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    shared.counters.batched_windows.fetch_add(total as u64, Ordering::Relaxed);
    // Per-batch latency EWMA (α = 1/8) feeding admission-time load shedding.
    // The read-modify-write is deliberately unsynchronized across workers:
    // a lost update skews an *estimate*, and the shed check only needs the
    // right order of magnitude. Stalls (injected or real) inflate it, which
    // is exactly what an overload estimator should see. `max(1)` keeps a
    // warm estimator distinguishable from the cold `0`.
    let nanos = (started.elapsed().as_nanos() as u64).max(1);
    let prev = shared.counters.ewma_batch_nanos.load(Ordering::Relaxed);
    let next = if prev == 0 { nanos } else { prev - prev / 8 + nanos / 8 };
    shared.counters.ewma_batch_nanos.store(next.max(1), Ordering::Relaxed);

    let mut offset = 0usize;
    for c in batch {
        let span = &scores[offset..offset + c.count];
        offset += c.count;
        let mut out = c.req.output.lock();
        if out.canceled {
            continue;
        }
        out.span[c.first..c.first + c.count].copy_from_slice(span);
        out.remaining -= c.count;
        if out.remaining == 0 {
            finish_chunk(shared, &c.req, &mut out);
        }
    }
}

/// Runs with the request's output lock held, after the last score of the
/// current chunk landed: feed the span to segmentation and either complete
/// the request or queue it for its next chunk.
fn finish_chunk(shared: &Shared, req: &Arc<ActiveRequest>, out: &mut OutputState) {
    let engine = req.handle.engine();
    out.scored += out.span.len();
    if let Some(collected) = &mut out.collected {
        collected.extend_from_slice(&out.span);
    }
    match &mut out.sink {
        Sink::Whole => {
            let starts = engine.segmenter().segment(&out.span, engine.sliding().stride());
            complete(shared, req, out, Ok(starts));
        }
        Sink::Streaming { segmenter, total_windows, next_first, .. } => {
            segmenter
                .as_mut()
                .expect("streaming segmenter taken before the last chunk")
                .push(&out.span);
            if *next_first >= *total_windows {
                let starts = segmenter
                    .take()
                    .expect("streaming segmenter taken before the last chunk")
                    .finish();
                complete(shared, req, out, Ok(starts));
            } else {
                // Hand the request back to the queue; a worker will load
                // its next chunk (the claim state already shows "no
                // chunk": the drained one is cleared here).
                req.claim.lock().chunk = None;
                let mut st = shared.state.lock();
                st.ready.push_back(Arc::clone(req));
                shared.work_ready.notify_all();
            }
        }
    }
}

/// Loads the next chunk of a streamed request (the exclusive owner while the
/// request is out of the queue), then puts it back at the *front* — it was
/// at the head, and FIFO latency order should survive the I/O detour.
fn load_chunk(shared: &Shared, req: &Arc<ActiveRequest>) {
    let engine = req.handle.engine();
    let sliding = engine.sliding();
    let (n, stride) = (sliding.window_len(), sliding.stride());
    let mut out = req.output.lock();
    if out.canceled || out.done.is_none() {
        return;
    }
    let Sink::Streaming { source, windows_per_chunk, total_windows, next_first, .. } =
        &mut out.sink
    else {
        unreachable!("only streamed requests ever need a chunk load")
    };
    let first = *next_first;
    let last = (first + *windows_per_chunk).min(*total_windows);
    let sample_start = first * stride;
    let sample_end = (last - 1) * stride + n;
    let mut samples = vec![0.0f32; sample_end - sample_start];
    if let Err(e) = source.fill(sample_start, &mut samples) {
        out.canceled = true;
        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
        if matches!(e, TraceError::Io(_)) {
            shared.counters.io_errors.fetch_add(1, Ordering::Relaxed);
        }
        complete(shared, req, &mut out, Err(ServiceError::Source(e)));
        return;
    }
    *next_first = last;
    let count = last - first;
    out.span.clear();
    out.span.resize(count, 0.0);
    out.remaining = count;
    let chunk = Arc::new(Chunk { window_count: count, samples });
    {
        let mut claim = req.claim.lock();
        claim.chunk = Some(chunk);
        claim.next = 0;
    }
    drop(out);
    let mut st = shared.state.lock();
    st.ready.push_front(Arc::clone(req));
    shared.work_ready.notify_all();
}

/// Completes a request whose deadline passed while it waited.
fn expire(shared: &Shared, req: &Arc<ActiveRequest>) {
    let mut out = req.output.lock();
    if out.done.is_none() {
        return; // completed in the meantime
    }
    out.canceled = true;
    shared.counters.rejected_deadline.fetch_add(1, Ordering::Relaxed);
    complete(shared, req, &mut out, Err(ServiceError::DeadlineExceeded));
}

/// Delivers the final result (with the output lock held) and releases the
/// request's queue slot.
fn complete(
    shared: &Shared,
    req: &Arc<ActiveRequest>,
    out: &mut OutputState,
    result: Result<Vec<usize>, ServiceError>,
) {
    let Some(tx) = out.done.take() else { return };
    let latency = req.submitted.elapsed();
    let result = result.map(|starts| {
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        shared.counters.latency.record(latency);
        LocateResult {
            starts,
            windows: out.scored,
            scores: out.collected.take(),
            generation: req.handle.generation(),
            latency,
        }
    });
    // The ticket may have been dropped; completion still releases the slot.
    let _ = tx.send(result);
    let mut st = shared.state.lock();
    st.pending -= 1;
    shared.work_ready.notify_all();
}
