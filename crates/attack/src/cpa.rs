//! Correlation Power Analysis over aligned CO traces.

use sca_trace::stats::CorrelationAccumulator;
use serde::{Deserialize, Serialize};

use crate::aggregate::aggregate_trace;
use crate::leakage::LeakageModel;
use crate::rank::{key_byte_rank, KeyRankReport};

/// CPA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpaConfig {
    /// Leakage model used to build hypotheses.
    pub model: LeakageModel,
    /// Time-aggregation window applied to every aligned trace before the
    /// correlation (1 disables aggregation).
    pub aggregation_window: usize,
    /// Key bytes to attack (typically all 16).
    pub num_key_bytes: usize,
}

impl Default for CpaConfig {
    fn default() -> Self {
        Self { model: LeakageModel::HwSboxOutput, aggregation_window: 4, num_key_bytes: 16 }
    }
}

/// Rank evolution recorded while feeding traces incrementally.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CpaProgress {
    /// `(number of traces, worst rank over the attacked bytes)` checkpoints.
    pub checkpoints: Vec<(usize, usize)>,
    /// Number of traces after which every attacked byte first reached rank 1
    /// (and stayed there until the end of the run), if that happened.
    pub cos_to_rank1: Option<usize>,
}

/// An incremental CPA attack over aligned traces.
#[derive(Debug, Clone)]
pub struct CpaAttack {
    config: CpaConfig,
    /// One accumulator per (key byte, key guess).
    accumulators: Vec<Vec<CorrelationAccumulator>>,
    trace_len: Option<usize>,
    traces_seen: usize,
}

impl CpaAttack {
    /// Creates a CPA attack.
    pub fn new(config: CpaConfig) -> Self {
        assert!(config.num_key_bytes >= 1 && config.num_key_bytes <= 16);
        Self { config, accumulators: Vec::new(), trace_len: None, traces_seen: 0 }
    }

    /// The attack configuration.
    pub fn config(&self) -> &CpaConfig {
        &self.config
    }

    /// Number of traces ingested so far.
    pub fn traces_seen(&self) -> usize {
        self.traces_seen
    }

    fn ensure_accumulators(&mut self, trace_len: usize) {
        if self.trace_len.is_none() {
            self.trace_len = Some(trace_len);
            self.accumulators = (0..self.config.num_key_bytes)
                .map(|_| (0..256).map(|_| CorrelationAccumulator::new(trace_len)).collect())
                .collect();
        }
    }

    /// Feeds one aligned CO trace and the plaintext of that CO.
    ///
    /// # Panics
    ///
    /// Panics if the (aggregated) trace length differs from the first trace.
    pub fn add_trace(&mut self, trace: &[f32], plaintext: &[u8; 16]) {
        let aggregated = aggregate_trace(trace, self.config.aggregation_window);
        self.ensure_accumulators(aggregated.len());
        assert_eq!(
            Some(aggregated.len()),
            self.trace_len,
            "aggregated trace length changed between traces"
        );
        for (accs, &pt) in self.accumulators.iter_mut().zip(plaintext.iter()) {
            for (guess, acc) in accs.iter_mut().enumerate() {
                let h = self.config.model.hypothesis(pt, guess as u8);
                acc.update(h, &aggregated);
            }
        }
        self.traces_seen += 1;
    }

    /// Distinguisher scores (max |correlation| over time) for one key byte.
    pub fn scores(&self, byte: usize) -> [f32; 256] {
        let mut scores = [0.0f32; 256];
        if byte >= self.accumulators.len() {
            return scores;
        }
        for (score, acc) in scores.iter_mut().zip(self.accumulators[byte].iter()) {
            *score = acc.max_abs_correlation();
        }
        scores
    }

    /// Best key guess per attacked byte.
    pub fn best_guesses(&self) -> Vec<u8> {
        (0..self.config.num_key_bytes)
            .map(|byte| {
                let scores = self.scores(byte);
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(k, _)| k as u8)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Per-byte ranks of the true key.
    pub fn rank_report(&self, true_key: &[u8; 16]) -> KeyRankReport {
        let mut ranks = [256usize; 16];
        for byte in 0..self.config.num_key_bytes {
            let scores = self.scores(byte);
            ranks[byte] = key_byte_rank(&scores, true_key[byte]);
        }
        // Unattacked bytes count as recovered so `all_rank1` reflects the
        // attacked subset only.
        for rank in ranks.iter_mut().skip(self.config.num_key_bytes) {
            *rank = 1;
        }
        KeyRankReport { ranks }
    }

    /// Runs a full attack over a set of aligned traces, checking the rank
    /// every `checkpoint_every` traces, and reports the rank evolution plus
    /// the number of COs needed for a full rank-1 recovery (Table II metric).
    pub fn run(
        traces: &[Vec<f32>],
        plaintexts: &[[u8; 16]],
        true_key: &[u8; 16],
        config: CpaConfig,
        checkpoint_every: usize,
    ) -> (Self, CpaProgress) {
        assert_eq!(traces.len(), plaintexts.len(), "traces/plaintexts length mismatch");
        let mut attack = Self::new(config);
        let mut progress = CpaProgress::default();
        let step = checkpoint_every.max(1);
        for (i, (trace, pt)) in traces.iter().zip(plaintexts.iter()).enumerate() {
            attack.add_trace(trace, pt);
            let n = i + 1;
            if n % step == 0 || n == traces.len() {
                let report = attack.rank_report(true_key);
                progress.checkpoints.push((n, report.worst_rank()));
                if report.all_rank1() && progress.cos_to_rank1.is_none() {
                    progress.cos_to_rank1 = Some(n);
                } else if !report.all_rank1() {
                    // The key fell out of rank 1 again: the earlier checkpoint
                    // no longer counts as a stable recovery.
                    progress.cos_to_rank1 = None;
                }
            }
        }
        (attack, progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds noiseless synthetic traces whose sample at position `3 + byte`
    /// is exactly the Hamming weight of the SubBytes output for that byte.
    fn synthetic_traces(
        n: usize,
        key: &[u8; 16],
        bytes: usize,
        noise: f32,
    ) -> (Vec<Vec<f32>>, Vec<[u8; 16]>) {
        let mut traces = Vec::with_capacity(n);
        let mut plaintexts = Vec::with_capacity(n);
        let mut state = 0x1234_5678u32;
        let mut rng = move || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            state
        };
        for _ in 0..n {
            let mut pt = [0u8; 16];
            for b in pt.iter_mut() {
                *b = (rng() >> 13) as u8;
            }
            let mut trace = vec![0.0f32; 3 + bytes + 4];
            for byte in 0..bytes {
                let hw = crate::leakage::hw_sbox_output(pt[byte], key[byte]);
                let jitter = ((rng() >> 20) as f32 / 4096.0 - 0.5) * noise;
                trace[3 + byte] = hw + jitter;
            }
            traces.push(trace);
            plaintexts.push(pt);
        }
        (traces, plaintexts)
    }

    #[test]
    fn recovers_key_from_noiseless_traces() {
        let key = [0x2Bu8; 16];
        let (traces, pts) = synthetic_traces(60, &key, 2, 0.0);
        let config = CpaConfig { aggregation_window: 1, num_key_bytes: 2, ..CpaConfig::default() };
        let (attack, progress) = CpaAttack::run(&traces, &pts, &key, config, 10);
        assert_eq!(&attack.best_guesses()[..2], &key[..2]);
        assert!(attack.rank_report(&key).all_rank1());
        assert!(progress.cos_to_rank1.is_some());
        assert!(progress.cos_to_rank1.unwrap() <= 60);
    }

    #[test]
    fn noisy_traces_need_more_cos() {
        let key = [0xA5u8; 16];
        let (clean, pts_clean) = synthetic_traces(120, &key, 1, 0.0);
        let (noisy, pts_noisy) = synthetic_traces(120, &key, 1, 6.0);
        let config = CpaConfig { aggregation_window: 1, num_key_bytes: 1, ..CpaConfig::default() };
        let (_, p_clean) = CpaAttack::run(&clean, &pts_clean, &key, config, 5);
        let (_, p_noisy) = CpaAttack::run(&noisy, &pts_noisy, &key, config, 5);
        let clean_n = p_clean.cos_to_rank1.unwrap_or(usize::MAX);
        let noisy_n = p_noisy.cos_to_rank1.unwrap_or(usize::MAX);
        assert!(clean_n <= noisy_n, "clean {clean_n} vs noisy {noisy_n}");
    }

    #[test]
    fn wrong_key_is_not_rank1() {
        let key = [0x11u8; 16];
        let (traces, pts) = synthetic_traces(80, &key, 1, 0.0);
        let config = CpaConfig { aggregation_window: 1, num_key_bytes: 1, ..CpaConfig::default() };
        let (attack, _) = CpaAttack::run(&traces, &pts, &key, config, 20);
        let mut wrong = key;
        wrong[0] ^= 0xFF;
        assert!(!attack.rank_report(&wrong).all_rank1());
    }

    #[test]
    fn aggregation_reduces_trace_length() {
        let mut attack = CpaAttack::new(CpaConfig {
            aggregation_window: 4,
            num_key_bytes: 1,
            ..CpaConfig::default()
        });
        attack.add_trace(&[1.0; 40], &[0u8; 16]);
        assert_eq!(attack.trace_len, Some(10));
        assert_eq!(attack.traces_seen(), 1);
    }

    #[test]
    #[should_panic(expected = "length changed between traces")]
    fn mismatched_trace_length_panics() {
        let mut attack = CpaAttack::new(CpaConfig {
            aggregation_window: 1,
            num_key_bytes: 1,
            ..CpaConfig::default()
        });
        attack.add_trace(&[1.0; 16], &[0u8; 16]);
        attack.add_trace(&[1.0; 17], &[0u8; 16]);
    }
}
