//! # sca-attack
//!
//! Correlation Power Analysis (CPA) over aligned side-channel traces — the
//! attack used in Section IV-C of the reproduced paper to demonstrate that
//! the localisation quality is sufficient to recover the AES-128 key.
//!
//! The attack targets the AES SubBytes output of the first round
//! (`SBOX[plaintext[i] ^ key[i]]`) under a Hamming-weight leakage model, uses
//! an incremental Pearson-correlation accumulator (so traces can be streamed),
//! and reports per-byte key ranks. [`cpa::CpaAttack::cos_to_rank1`] reproduces
//! the "CPA (N. COs)" column of Table II: the number of located-and-aligned
//! COs needed before every key byte reaches rank 1.
//!
//! A small time aggregation ([`aggregate`]) compensates the stride-quantised
//! localisation and the residual random-delay jitter, as described in the
//! paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cpa;
pub mod leakage;
pub mod rank;

pub use aggregate::aggregate_trace;
pub use cpa::{CpaAttack, CpaConfig, CpaProgress};
pub use leakage::{hw_sbox_output, LeakageModel};
pub use rank::{key_byte_rank, KeyRankReport};
