//! Time aggregation of aligned traces.
//!
//! The paper applies "a minor aggregation over time" before the CPA to absorb
//! the stride-quantised localisation error and the residual random-delay
//! jitter inside each CO: consecutive groups of `window` samples are summed,
//! so a leaking sample that drifts by a few positions between COs still
//! contributes to the same aggregated bin.

/// Sums consecutive non-overlapping groups of `window` samples.
///
/// The trailing partial group (if any) is also emitted. `window = 1` returns
/// the input unchanged.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn aggregate_trace(samples: &[f32], window: usize) -> Vec<f32> {
    assert!(window > 0, "aggregation window must be non-zero");
    if window == 1 {
        return samples.to_vec();
    }
    samples.chunks(window).map(|chunk| chunk.iter().sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_is_identity() {
        let s = vec![1.0, 2.0, 3.0];
        assert_eq!(aggregate_trace(&s, 1), s);
    }

    #[test]
    fn sums_groups_and_trailing_partial() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(aggregate_trace(&s, 2), vec![3.0, 7.0, 5.0]);
    }

    #[test]
    fn aggregation_absorbs_small_shifts() {
        // A spike at position 10 or 12 lands in the same bin with window 8.
        let mut a = vec![0.0f32; 32];
        let mut b = vec![0.0f32; 32];
        a[10] = 1.0;
        b[12] = 1.0;
        let aa = aggregate_trace(&a, 8);
        let bb = aggregate_trace(&b, 8);
        assert_eq!(aa, bb);
    }

    #[test]
    #[should_panic(expected = "aggregation window must be non-zero")]
    fn zero_window_panics() {
        aggregate_trace(&[1.0], 0);
    }
}
