//! Key-rank computation: where does the correct key byte sit among the 256
//! hypotheses when sorted by the CPA distinguisher score?

use serde::{Deserialize, Serialize};

/// Rank of the correct key guess among the candidate scores.
///
/// Rank 1 means the correct key byte has the (strictly) highest score; ties
/// are counted pessimistically (a tie pushes the rank down).
///
/// # Panics
///
/// Panics if `scores` does not have exactly 256 entries.
pub fn key_byte_rank(scores: &[f32; 256], correct_key: u8) -> usize {
    let correct_score = scores[correct_key as usize];
    let better = scores
        .iter()
        .enumerate()
        .filter(|&(k, &s)| {
            k != correct_key as usize
                && (s > correct_score || (s == correct_score && k < correct_key as usize))
        })
        .count();
    better + 1
}

/// Per-byte key ranks for a full 16-byte key recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyRankReport {
    /// Rank of every key byte (1 = recovered).
    pub ranks: [usize; 16],
}

impl KeyRankReport {
    /// `true` when every key byte is at rank 1.
    pub fn all_rank1(&self) -> bool {
        self.ranks.iter().all(|&r| r == 1)
    }

    /// Worst (largest) rank over the 16 bytes.
    pub fn worst_rank(&self) -> usize {
        self.ranks.iter().copied().max().unwrap_or(256)
    }

    /// Mean rank over the 16 bytes.
    pub fn mean_rank(&self) -> f64 {
        self.ranks.iter().sum::<usize>() as f64 / 16.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_key_with_highest_score_is_rank1() {
        let mut scores = [0.1f32; 256];
        scores[0x2B] = 0.9;
        assert_eq!(key_byte_rank(&scores, 0x2B), 1);
    }

    #[test]
    fn rank_counts_better_candidates() {
        let mut scores = [0.0f32; 256];
        scores[10] = 0.5;
        scores[20] = 0.8;
        scores[30] = 0.9;
        assert_eq!(key_byte_rank(&scores, 10), 3);
        assert_eq!(key_byte_rank(&scores, 30), 1);
    }

    #[test]
    fn ties_are_pessimistic() {
        let scores = [0.5f32; 256];
        // All tied: key 0 is "first", key 255 is last.
        assert_eq!(key_byte_rank(&scores, 0), 1);
        assert_eq!(key_byte_rank(&scores, 255), 256);
    }

    #[test]
    fn report_helpers() {
        let mut ranks = [1usize; 16];
        assert!(KeyRankReport { ranks }.all_rank1());
        ranks[7] = 12;
        let report = KeyRankReport { ranks };
        assert!(!report.all_rank1());
        assert_eq!(report.worst_rank(), 12);
        assert!(report.mean_rank() > 1.0);
    }
}
