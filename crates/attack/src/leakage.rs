//! Leakage models for CPA key hypotheses.

use serde::{Deserialize, Serialize};

/// The intermediate value and power model used to build key hypotheses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LeakageModel {
    /// Hamming weight of the first-round SubBytes output
    /// `SBOX[pt[i] ^ k[i]]` (the model used in the paper's CPA).
    #[default]
    HwSboxOutput,
    /// Hamming weight of the AddRoundKey output `pt[i] ^ k[i]`.
    HwAddRoundKey,
}

impl LeakageModel {
    /// Hypothetical leakage of key byte `key_guess` for plaintext byte `pt`.
    pub fn hypothesis(&self, pt: u8, key_guess: u8) -> f32 {
        match self {
            LeakageModel::HwSboxOutput => hw_sbox_output(pt, key_guess),
            LeakageModel::HwAddRoundKey => (pt ^ key_guess).count_ones() as f32,
        }
    }
}

/// Hamming weight of `SBOX[pt ^ key_guess]` as an `f32`.
pub fn hw_sbox_output(pt: u8, key_guess: u8) -> f32 {
    sca_ciphers::aes::sbox(pt ^ key_guess).count_ones() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_output_model_matches_reference_sbox() {
        // SBOX[0x00] = 0x63 has Hamming weight 4.
        assert_eq!(hw_sbox_output(0x00, 0x00), 4.0);
        // SBOX[0x53] = 0xED has Hamming weight 6.
        assert_eq!(hw_sbox_output(0x50, 0x03), 6.0);
    }

    #[test]
    fn models_differ() {
        let m1 = LeakageModel::HwSboxOutput;
        let m2 = LeakageModel::HwAddRoundKey;
        // For at least one input the two models disagree.
        let disagreement = (0..=255u8).any(|pt| m1.hypothesis(pt, 0x2B) != m2.hypothesis(pt, 0x2B));
        assert!(disagreement);
    }

    #[test]
    fn hypotheses_are_bounded_by_8_bits() {
        for pt in [0u8, 1, 77, 255] {
            for k in [0u8, 13, 200] {
                for model in [LeakageModel::HwSboxOutput, LeakageModel::HwAddRoundKey] {
                    let h = model.hypothesis(pt, k);
                    assert!((0.0..=8.0).contains(&h));
                }
            }
        }
    }
}
