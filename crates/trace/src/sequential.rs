//! Forward-only trace ingest for non-seekable inputs: [`SequentialTraceSource`].
//!
//! [`crate::FileTraceSource`] needs random access (seek or positional
//! reads), which pipes, sockets and other live capture feeds cannot provide.
//! [`SequentialTraceSource`] adapts any [`std::io::Read`] of little-endian
//! `f32` samples with a *declared* length into a [`TraceSource`] whose
//! [`TraceSource::fill`] accepts any **monotone** access pattern — each
//! request may start at or after the previous request's start — which is
//! exactly the pattern of the chunked sliding-window classifier: forward
//! chunks whose heads overlap the previous chunk's tail by up to one window.
//!
//! The adapter keeps a *carry buffer* holding every sample from the current
//! request's start up to the read frontier, so the overlapping head of the
//! next chunk is served from memory while only the new tail is pulled from
//! the reader. Memory is O(largest single fill) — for the streaming locate
//! path that is one chunk — independent of the trace length. Requests that
//! jump forward past the frontier discard the skipped samples; requests that
//! reach back before the current carry fail with a typed
//! [`TraceError::Io`] ("cannot rewind") instead of silently corrupting the
//! stream.
//!
//! Decoding reuses the bounded-chunk primitives of [`crate::io`]
//! ([`crate::io::read_f32s_le_into`]): the declared length is untrusted
//! wire/header data, so no allocation is ever sized by it up front, a
//! `len * 4` byte overflow is rejected at construction, and a stream that
//! ends early surfaces a typed truncation error naming the missing range.

use std::io::Read;
use std::sync::Mutex;

use crate::source::TraceSource;
use crate::{Result, TraceError};

/// A [`TraceSource`] over a non-seekable byte stream of little-endian `f32`
/// samples with a declared sample count.
///
/// See the [module docs](self) for the access contract. `Sync` (required by
/// [`TraceSource`]) is provided by an internal mutex; the intended use is
/// still one logical consumer making monotone requests — concurrent fillers
/// would interleave their positions and trip the rewind check.
///
/// # Example
///
/// ```
/// use sca_trace::{SequentialTraceSource, TraceSource};
///
/// // Any `io::Read` works; a byte slice stands in for a pipe or socket.
/// let bytes: Vec<u8> = [1.0f32, 2.0, 3.0, 4.0].iter().flat_map(|v| v.to_le_bytes()).collect();
/// let source = SequentialTraceSource::new(&bytes[..], 4).unwrap();
/// let mut chunk = [0.0f32; 2];
/// source.fill(0, &mut chunk).unwrap();
/// assert_eq!(chunk, [1.0, 2.0]);
/// // Overlapping forward read: the head comes from the carry buffer.
/// source.fill(1, &mut chunk).unwrap();
/// assert_eq!(chunk, [2.0, 3.0]);
/// // Rewinding is impossible on a pipe — typed error, not corruption.
/// assert!(source.fill(0, &mut chunk).is_err());
/// ```
pub struct SequentialTraceSource<R> {
    len: usize,
    inner: Mutex<Inner<R>>,
}

struct Inner<R> {
    reader: R,
    /// Absolute sample index of the next sample the reader will produce.
    frontier: usize,
    /// Absolute sample index of `carry[0]`.
    carry_start: usize,
    /// Retained samples `[carry_start, frontier)`.
    carry: Vec<f32>,
}

impl<R: Read> SequentialTraceSource<R> {
    /// Wraps `reader`, declaring that it carries exactly `len` little-endian
    /// `f32` samples. The reader is only consumed as far as fills demand;
    /// trailing bytes beyond `len * 4` are never touched (so a framed wire
    /// stream stays aligned for whatever follows the sample payload).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if `len * 4` overflows the addressable
    /// byte range — the declared length is untrusted wire data.
    pub fn new(reader: R, len: usize) -> Result<Self> {
        if len.checked_mul(4).is_none() {
            return Err(TraceError::Io(format!(
                "declared sample count {len} overflows the addressable byte range"
            )));
        }
        Ok(Self {
            len,
            inner: Mutex::new(Inner { reader, frontier: 0, carry_start: 0, carry: Vec::new() }),
        })
    }

    /// Number of samples already pulled from the underlying reader.
    pub fn consumed(&self) -> usize {
        // Poison-tolerant: a panicking consumer (e.g. an injected scoring
        // fault in a service worker) must not wedge other observers — the
        // guarded state is position bookkeeping that stays consistent
        // between fills.
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).frontier
    }

    /// Consumes the adapter and returns the underlying reader, positioned
    /// after the last sample any fill required.
    pub fn into_inner(self) -> R {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner()).reader
    }
}

impl<R> std::fmt::Debug for SequentialTraceSource<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (frontier, carried) = match self.inner.lock() {
            Ok(inner) => (inner.frontier, inner.carry.len()),
            Err(_) => (0, 0),
        };
        f.debug_struct("SequentialTraceSource")
            .field("len", &self.len)
            .field("frontier", &frontier)
            .field("carried", &carried)
            .finish()
    }
}

impl<R: Read + Send> TraceSource for SequentialTraceSource<R> {
    fn len(&self) -> usize {
        self.len
    }

    fn fill(&self, start: usize, out: &mut [f32]) -> Result<()> {
        let end = match start.checked_add(out.len()) {
            Some(end) if end <= self.len => end,
            _ => {
                return Err(TraceError::WindowOutOfBounds {
                    start,
                    len: out.len(),
                    trace_len: self.len,
                })
            }
        };
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if start < inner.carry_start {
            return Err(TraceError::Io(format!(
                "non-seekable trace source cannot rewind to sample {start} \
                 (already advanced past {})",
                inner.carry_start
            )));
        }
        if start >= inner.frontier {
            // Jump forward: the skipped samples [frontier, start) are read
            // and discarded in bounded chunks (a pipe cannot seek either).
            let mut skip = start - inner.frontier;
            let mut void = [0.0f32; 4096];
            while skip > 0 {
                let take = skip.min(void.len());
                let frontier = inner.frontier;
                crate::io::read_f32s_le_into(&mut inner.reader, &mut void[..take])
                    .map_err(|e| truncation(e, frontier, self.len))?;
                inner.frontier += take;
                skip -= take;
            }
            inner.carry.clear();
            inner.carry_start = start;
        } else {
            // Drop the part of the carry below the new start; monotone
            // requests never need it again.
            let drop = start - inner.carry_start;
            inner.carry.drain(..drop);
            inner.carry_start = start;
        }
        // Extend the carry up to `end` with fresh samples from the reader.
        if end > inner.frontier {
            let have = inner.carry.len();
            let need = end - inner.frontier;
            inner.carry.resize(have + need, 0.0);
            let frontier = inner.frontier;
            let Inner { reader, carry, .. } = &mut *inner;
            crate::io::read_f32s_le_into(reader, &mut carry[have..])
                .map_err(|e| truncation(e, frontier, self.len))?;
            inner.frontier = end;
        }
        out.copy_from_slice(&inner.carry[..out.len()]);
        Ok(())
    }
}

/// Maps a decode failure to a typed trace error; an early EOF names the
/// sample range the stream failed to deliver.
fn truncation(e: std::io::Error, frontier: usize, declared: usize) -> TraceError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        TraceError::Io(format!(
            "sequential trace stream truncated: ended within samples \
             [{frontier}, {declared}) it declared"
        ))
    } else {
        TraceError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn encode(samples: &[f32]) -> Vec<u8> {
        samples.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn ramp(len: usize) -> Vec<f32> {
        (0..len).map(|i| (i as f32) * 0.5 - 7.0).collect()
    }

    #[test]
    fn monotone_overlapping_fills_match_in_memory() {
        let samples = ramp(4096);
        let bytes = encode(&samples);
        let source = SequentialTraceSource::new(&bytes[..], samples.len()).unwrap();
        // Forward chunks with overlapping heads — the classifier's pattern.
        for (start, len) in [(0usize, 300usize), (256, 300), (512, 300), (700, 64), (700, 64)] {
            let mut out = vec![0.0f32; len];
            source.fill(start, &mut out).unwrap();
            for (a, b) in out.iter().zip(samples[start..start + len].iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "start {start} len {len}");
            }
        }
    }

    #[test]
    fn forward_jump_discards_skipped_samples() {
        let samples = ramp(1000);
        let bytes = encode(&samples);
        let source = SequentialTraceSource::new(&bytes[..], samples.len()).unwrap();
        let mut out = vec![0.0f32; 10];
        source.fill(900, &mut out).unwrap();
        assert_eq!(out, samples[900..910]);
        assert_eq!(source.consumed(), 910);
    }

    #[test]
    fn rewind_is_a_typed_error() {
        let bytes = encode(&ramp(100));
        let source = SequentialTraceSource::new(&bytes[..], 100).unwrap();
        let mut out = vec![0.0f32; 10];
        source.fill(50, &mut out).unwrap();
        let err = source.fill(40, &mut out).unwrap_err();
        assert!(matches!(err, TraceError::Io(ref m) if m.contains("cannot rewind")), "{err:?}");
        // A re-read of the *current* start is still fine (carry serves it).
        source.fill(50, &mut out).unwrap();
    }

    #[test]
    fn out_of_bounds_and_overflow_are_rejected() {
        let bytes = encode(&ramp(8));
        let source = SequentialTraceSource::new(&bytes[..], 8).unwrap();
        let mut out = vec![0.0f32; 4];
        assert!(matches!(
            source.fill(6, &mut out).unwrap_err(),
            TraceError::WindowOutOfBounds { .. }
        ));
        assert!(source.fill(usize::MAX, &mut out).is_err());
        assert!(SequentialTraceSource::new(&bytes[..], usize::MAX).is_err());
    }

    #[test]
    fn truncated_stream_names_the_missing_range() {
        // Declares 100 samples, delivers 60.
        let bytes = encode(&ramp(60));
        let source = SequentialTraceSource::new(&bytes[..], 100).unwrap();
        let mut out = vec![0.0f32; 80];
        let err = source.fill(0, &mut out).unwrap_err();
        assert!(matches!(err, TraceError::Io(ref m) if m.contains("truncated")), "{err:?}");
    }

    #[test]
    fn trailing_bytes_are_left_unread() {
        let samples = ramp(16);
        let mut bytes = encode(&samples);
        bytes.extend_from_slice(b"NEXTFRAME");
        let mut cursor = std::io::Cursor::new(bytes);
        let source = SequentialTraceSource::new(&mut cursor, 16).unwrap();
        let mut out = vec![0.0f32; 16];
        source.fill(0, &mut out).unwrap();
        let reader = source.into_inner();
        let mut rest = Vec::new();
        std::io::Read::read_to_end(reader, &mut rest).unwrap();
        assert_eq!(rest, b"NEXTFRAME");
    }

    #[test]
    fn read_all_through_trace_source_round_trips() {
        let samples = ramp(2048);
        let bytes = encode(&samples);
        let source = SequentialTraceSource::new(&bytes[..], samples.len()).unwrap();
        let mut all = vec![0.0f32; samples.len()];
        source.fill(0, &mut all).unwrap();
        assert_eq!(Trace::from_samples(all).samples(), &samples[..]);
    }
}
