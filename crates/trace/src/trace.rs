//! Side-channel trace container and metadata.

use serde::{Deserialize, Serialize};

use crate::{Result, TraceError};

/// Metadata attached to a [`Trace`].
///
/// All fields are optional; the simulator fills them in, while traces loaded
/// from raw sample files may leave them empty.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Sampling rate of the oscilloscope in samples per second.
    pub sample_rate_hz: Option<f64>,
    /// Clock frequency of the device under test in Hz.
    pub device_clock_hz: Option<f64>,
    /// Ground-truth start sample of every cryptographic operation contained
    /// in the trace. Only available for simulated traces; used exclusively
    /// for evaluation, never by the locator itself.
    pub co_starts: Vec<usize>,
    /// Ground-truth end sample (exclusive) of every cryptographic operation.
    pub co_ends: Vec<usize>,
    /// Human-readable description (cipher name, scenario, ...).
    pub description: String,
}

impl TraceMeta {
    /// Creates an empty metadata record with a description.
    pub fn with_description(description: impl Into<String>) -> Self {
        Self { description: description.into(), ..Self::default() }
    }

    /// Number of ground-truth cryptographic operations recorded in the metadata.
    pub fn co_count(&self) -> usize {
        self.co_starts.len()
    }
}

/// A one-dimensional side-channel trace (power, EM, ...).
///
/// Samples are stored as `f32` which matches both the 12-bit ADC resolution of
/// the paper's oscilloscope and the input precision of the CNN.
///
/// # Example
///
/// ```rust
/// use sca_trace::Trace;
///
/// let t = Trace::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.slice(1, 2).unwrap(), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    samples: Vec<f32>,
    meta: TraceMeta,
}

impl Trace {
    /// Creates a trace from raw samples with empty metadata.
    pub fn from_samples(samples: Vec<f32>) -> Self {
        Self { samples, meta: TraceMeta::default() }
    }

    /// Creates a trace from raw samples and metadata.
    pub fn with_meta(samples: Vec<f32>, meta: TraceMeta) -> Self {
        Self { samples, meta }
    }

    /// Returns the raw samples.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Returns a mutable view of the raw samples.
    pub fn samples_mut(&mut self) -> &mut [f32] {
        &mut self.samples
    }

    /// Consumes the trace and returns the underlying sample vector.
    pub fn into_samples(self) -> Vec<f32> {
        self.samples
    }

    /// Returns the trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Returns a mutable reference to the trace metadata.
    pub fn meta_mut(&mut self) -> &mut TraceMeta {
        &mut self.meta
    }

    /// Number of samples in the trace.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns a sub-slice of `len` samples starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::WindowOutOfBounds`] if the requested range does
    /// not fit in the trace.
    pub fn slice(&self, start: usize, len: usize) -> Result<&[f32]> {
        if start.checked_add(len).is_none_or(|end| end > self.samples.len()) {
            return Err(TraceError::WindowOutOfBounds {
                start,
                len,
                trace_len: self.samples.len(),
            });
        }
        Ok(&self.samples[start..start + len])
    }

    /// Extracts an owned sub-trace of `len` samples starting at `start`,
    /// carrying over (and re-basing) the ground-truth markers that fall in
    /// the extracted range.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::WindowOutOfBounds`] if the requested range does
    /// not fit in the trace.
    pub fn extract(&self, start: usize, len: usize) -> Result<Trace> {
        let samples = self.slice(start, len)?.to_vec();
        let mut meta = self.meta.clone();
        let end = start + len;
        let rebased: Vec<(usize, usize)> = self
            .meta
            .co_starts
            .iter()
            .zip(self.meta.co_ends.iter().chain(std::iter::repeat(&usize::MAX)))
            .filter(|(s, _)| **s >= start && **s < end)
            .map(|(s, e)| (*s - start, (*e).saturating_sub(start).min(len)))
            .collect();
        meta.co_starts = rebased.iter().map(|(s, _)| *s).collect();
        meta.co_ends = rebased.iter().map(|(_, e)| *e).collect();
        Ok(Trace { samples, meta })
    }

    /// Appends another trace, shifting its ground-truth markers by the current length.
    pub fn append(&mut self, other: &Trace) {
        let offset = self.samples.len();
        self.samples.extend_from_slice(&other.samples);
        self.meta.co_starts.extend(other.meta.co_starts.iter().map(|s| s + offset));
        self.meta.co_ends.extend(other.meta.co_ends.iter().map(|e| e + offset));
    }

    /// Mean of the samples. Returns 0.0 for an empty trace.
    pub fn mean(&self) -> f32 {
        crate::stats::mean(&self.samples)
    }

    /// Standard deviation of the samples (population). Returns 0.0 for an empty trace.
    pub fn std(&self) -> f32 {
        crate::stats::std(&self.samples)
    }

    /// Normalises the trace in place to zero mean and unit variance.
    ///
    /// A trace with zero variance is left centred at zero.
    pub fn standardize(&mut self) {
        crate::dsp::standardize_in_place(&mut self.samples);
    }
}

impl FromIterator<f32> for Trace {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Trace::from_samples(iter.into_iter().collect())
    }
}

impl AsRef<[f32]> for Trace {
    fn as_ref(&self) -> &[f32] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_in_bounds() {
        let t = Trace::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.slice(1, 3).unwrap(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_out_of_bounds_is_error() {
        let t = Trace::from_samples(vec![1.0, 2.0, 3.0]);
        let err = t.slice(2, 5).unwrap_err();
        assert!(matches!(err, TraceError::WindowOutOfBounds { .. }));
    }

    #[test]
    fn slice_overflow_is_error() {
        let t = Trace::from_samples(vec![1.0]);
        assert!(t.slice(usize::MAX, 2).is_err());
    }

    #[test]
    fn extract_rebases_markers() {
        let meta = TraceMeta { co_starts: vec![2, 10], co_ends: vec![5, 14], ..Default::default() };
        let t = Trace::with_meta((0..20).map(|x| x as f32).collect(), meta);
        let sub = t.extract(8, 8).unwrap();
        assert_eq!(sub.meta().co_starts, vec![2]);
        assert_eq!(sub.meta().co_ends, vec![6]);
        assert_eq!(sub.len(), 8);
        assert_eq!(sub.samples()[0], 8.0);
    }

    #[test]
    fn append_shifts_markers() {
        let mut a = Trace::from_samples(vec![0.0; 10]);
        let meta = TraceMeta { co_starts: vec![1], co_ends: vec![4], ..Default::default() };
        let b = Trace::with_meta(vec![1.0; 5], meta);
        a.append(&b);
        assert_eq!(a.len(), 15);
        assert_eq!(a.meta().co_starts, vec![11]);
        assert_eq!(a.meta().co_ends, vec![14]);
    }

    #[test]
    fn standardize_zero_mean_unit_std() {
        let mut t = Trace::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        t.standardize();
        assert!(t.mean().abs() < 1e-6);
        assert!((t.std() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.std(), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = (0..4).map(|x| x as f32).collect();
        assert_eq!(t.len(), 4);
    }
}
