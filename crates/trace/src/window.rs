//! Fixed-size labelled windows and the sliding-window slicer.
//!
//! The paper's classifier operates on `N`-sample windows cut out of a
//! side-channel trace. During training each window carries a label
//! ([`WindowLabel`]): the first window of every cipher trace is the
//! *beginning of the cryptographic operation* (`CipherStart`, class `c1`),
//! every other window (rest of the cipher trace and noise-trace windows) is
//! `c0`.

use serde::{Deserialize, Serialize};

use crate::{Result, Trace, TraceError};

/// Binary label of a training window (Section III-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowLabel {
    /// The window covers the beginning of a cryptographic operation (class `c1`).
    CipherStart,
    /// The window does not cover the beginning of a CO (class `c0`):
    /// either the rest of a cipher trace or a noise window.
    NotStart,
}

impl WindowLabel {
    /// Index of the class used by the cross-entropy loss (c0 = 0, c1 = 1).
    pub fn class_index(self) -> usize {
        match self {
            WindowLabel::NotStart => 0,
            WindowLabel::CipherStart => 1,
        }
    }

    /// Builds a label from a class index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not 0 or 1.
    pub fn from_class_index(index: usize) -> Self {
        match index {
            0 => WindowLabel::NotStart,
            1 => WindowLabel::CipherStart,
            other => panic!("invalid class index {other}, expected 0 or 1"),
        }
    }
}

impl std::fmt::Display for WindowLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowLabel::CipherStart => write!(f, "c1 (cipher start)"),
            WindowLabel::NotStart => write!(f, "c0 (not start)"),
        }
    }
}

/// A labelled `N`-sample window extracted from a side-channel trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    samples: Vec<f32>,
    label: WindowLabel,
    /// Index of the first sample of the window in the originating trace.
    origin: usize,
}

impl Window {
    /// Creates a new labelled window.
    pub fn new(samples: Vec<f32>, label: WindowLabel, origin: usize) -> Self {
        Self { samples, label, origin }
    }

    /// Raw samples of the window.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Label of the window.
    pub fn label(&self) -> WindowLabel {
        self.label
    }

    /// Index of the first sample of the window in the originating trace.
    pub fn origin(&self) -> usize {
        self.origin
    }

    /// Window length in samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Consumes the window and returns its samples.
    pub fn into_samples(self) -> Vec<f32> {
        self.samples
    }

    /// Returns a standardized (zero-mean, unit-variance) copy of the samples.
    pub fn standardized(&self) -> Vec<f32> {
        let mut v = self.samples.clone();
        crate::dsp::standardize_in_place(&mut v);
        v
    }
}

/// Iterator configuration that slices a trace into (possibly overlapping)
/// `N`-sample windows with a fixed stride, as done by the paper's *Slicing*
/// block in the inference pipeline.
///
/// # Example
///
/// ```rust
/// use sca_trace::{Trace, WindowSlicer};
///
/// let trace = Trace::from_samples((0..10).map(|x| x as f32).collect());
/// let slicer = WindowSlicer::new(4, 2).unwrap();
/// let starts: Vec<usize> = slicer.window_starts(trace.len()).collect();
/// assert_eq!(starts, vec![0, 2, 4, 6]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSlicer {
    window_len: usize,
    stride: usize,
}

impl WindowSlicer {
    /// Creates a slicer with the given window length `N` and stride `s`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] if either parameter is zero.
    pub fn new(window_len: usize, stride: usize) -> Result<Self> {
        if window_len == 0 {
            return Err(TraceError::InvalidParameter("window length must be > 0".into()));
        }
        if stride == 0 {
            return Err(TraceError::InvalidParameter("stride must be > 0".into()));
        }
        Ok(Self { window_len, stride })
    }

    /// Window length `N`.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Stride `s` between two consecutive windows.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of complete windows produced for a trace of `trace_len` samples.
    ///
    /// Only *complete* windows count: the last window starts at the largest
    /// stride multiple `m · s` with `m · s + N ≤ trace_len`, so up to
    /// `N + s − 2` trailing samples are never covered by any window (and a
    /// trace shorter than one window yields zero). This is the contract
    /// behind the sliding-window classifier's `output_len` — trailing
    /// samples shorter than one window are never scored, in memory or
    /// streamed.
    pub fn window_count(&self, trace_len: usize) -> usize {
        if trace_len < self.window_len {
            0
        } else {
            (trace_len - self.window_len) / self.stride + 1
        }
    }

    /// Iterator over the start sample of every complete window.
    pub fn window_starts(&self, trace_len: usize) -> impl Iterator<Item = usize> + '_ {
        let count = self.window_count(trace_len);
        (0..count).map(move |i| i * self.stride)
    }

    /// Slices the trace into complete windows, all labelled `NotStart`
    /// (inference-time slicing does not know labels).
    pub fn slice_trace(&self, trace: &Trace) -> Vec<Window> {
        self.window_starts(trace.len())
            .map(|start| {
                Window::new(
                    trace.samples()[start..start + self.window_len].to_vec(),
                    WindowLabel::NotStart,
                    start,
                )
            })
            .collect()
    }

    /// Maps a window index (position in the sliding-window classification
    /// output) back to a sample index in the original trace.
    pub fn window_index_to_sample(&self, window_index: usize) -> usize {
        window_index * self.stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip() {
        for label in [WindowLabel::CipherStart, WindowLabel::NotStart] {
            assert_eq!(WindowLabel::from_class_index(label.class_index()), label);
        }
    }

    #[test]
    #[should_panic(expected = "invalid class index")]
    fn label_invalid_index_panics() {
        WindowLabel::from_class_index(7);
    }

    #[test]
    fn slicer_rejects_zero_params() {
        assert!(WindowSlicer::new(0, 1).is_err());
        assert!(WindowSlicer::new(4, 0).is_err());
    }

    #[test]
    fn slicer_counts_windows() {
        let s = WindowSlicer::new(4, 2).unwrap();
        assert_eq!(s.window_count(10), 4);
        assert_eq!(s.window_count(4), 1);
        assert_eq!(s.window_count(3), 0);
        assert_eq!(s.window_count(0), 0);
    }

    #[test]
    fn slicer_non_overlapping() {
        let s = WindowSlicer::new(3, 3).unwrap();
        let starts: Vec<usize> = s.window_starts(9).collect();
        assert_eq!(starts, vec![0, 3, 6]);
    }

    #[test]
    fn slice_trace_contents() {
        let t = Trace::from_samples((0..8).map(|x| x as f32).collect());
        let s = WindowSlicer::new(4, 2).unwrap();
        let windows = s.slice_trace(&t);
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[1].samples(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(windows[1].origin(), 2);
        assert_eq!(windows[2].origin(), 4);
    }

    #[test]
    fn window_index_back_to_sample() {
        let s = WindowSlicer::new(16, 5).unwrap();
        assert_eq!(s.window_index_to_sample(0), 0);
        assert_eq!(s.window_index_to_sample(7), 35);
    }

    #[test]
    fn standardized_window_has_zero_mean() {
        let w = Window::new(vec![1.0, 2.0, 3.0, 4.0], WindowLabel::CipherStart, 0);
        let z = w.standardized();
        let mean: f32 = z.iter().sum::<f32>() / z.len() as f32;
        assert!(mean.abs() < 1e-6);
    }
}
