//! Simple portable trace and dataset (de)serialisation.
//!
//! Two formats are supported:
//!
//! * a compact little-endian binary format for raw sample vectors
//!   ([`write_samples_binary`] / [`read_samples_binary`]) compatible with
//!   `numpy.fromfile(dtype="<f4")`, convenient for exchanging traces with the
//!   original Python tooling, and
//! * a self-describing text format for [`Trace`] including metadata
//!   ([`write_trace_text`] / [`read_trace_text`]), kept dependency-free on
//!   purpose (no JSON crate in the offline allow-list).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Result, Trace, TraceError, TraceMeta};

const MAGIC: &[u8; 8] = b"SCATRC01";

fn io_err(e: std::io::Error) -> TraceError {
    TraceError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------
//
// Shared building blocks for every binary format in the workspace (raw sample
// dumps here, the locator's model files in `sca-locator::persist`). They
// return plain `std::io::Result` so callers can map failures onto their own
// error types; truncation surfaces as `ErrorKind::UnexpectedEof`.

/// Writes a `u32` in little-endian byte order.
///
/// # Errors
///
/// Propagates the underlying writer error.
pub fn write_u32_le<W: Write>(mut writer: W, value: u32) -> std::io::Result<()> {
    writer.write_all(&value.to_le_bytes())
}

/// Reads a little-endian `u32`.
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` on truncation).
pub fn read_u32_le<R: Read>(mut reader: R) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a `u64` in little-endian byte order.
///
/// # Errors
///
/// Propagates the underlying writer error.
pub fn write_u64_le<W: Write>(mut writer: W, value: u64) -> std::io::Result<()> {
    writer.write_all(&value.to_le_bytes())
}

/// Reads a little-endian `u64`.
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` on truncation).
pub fn read_u64_le<R: Read>(mut reader: R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes an `f32` slice in little-endian byte order (bit-exact: the bytes
/// are the IEEE-754 representation, so a read-back reproduces every value
/// including NaN payloads).
///
/// # Errors
///
/// Propagates the underlying writer error.
pub fn write_f32s_le<W: Write>(mut writer: W, values: &[f32]) -> std::io::Result<()> {
    for &v in values {
        writer.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads exactly `count` little-endian `f32` values.
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` if fewer than
/// `count` values are available).
pub fn read_f32s_le<R: Read>(mut reader: R, count: usize) -> std::io::Result<Vec<f32>> {
    let mut bytes = vec![0u8; count * 4];
    reader.read_exact(&mut bytes)?;
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Writes an `i8` slice as raw bytes (two's complement, endianness-free).
///
/// The counterpart of [`read_i8s`]; used for the quantised weight blocks of
/// the locator's model format v2.
///
/// # Errors
///
/// Propagates the underlying writer error.
pub fn write_i8s<W: Write>(mut writer: W, values: &[i8]) -> std::io::Result<()> {
    // Chunked copy keeps the conversion allocation small and the writes
    // large enough for a buffered writer.
    let mut buf = [0u8; 4096];
    for chunk in values.chunks(buf.len()) {
        for (dst, &v) in buf.iter_mut().zip(chunk.iter()) {
            *dst = v as u8;
        }
        writer.write_all(&buf[..chunk.len()])?;
    }
    Ok(())
}

/// Reads exactly `count` `i8` values (raw two's-complement bytes).
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` if fewer than
/// `count` bytes are available).
pub fn read_i8s<R: Read>(mut reader: R, count: usize) -> std::io::Result<Vec<i8>> {
    let mut bytes = vec![0u8; count];
    reader.read_exact(&mut bytes)?;
    Ok(bytes.into_iter().map(|b| b as i8).collect())
}

/// Writes raw `f32` samples in little-endian binary to `writer`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the underlying writer fails.
pub fn write_samples_binary<W: Write>(writer: W, samples: &[f32]) -> Result<()> {
    write_f32s_le(writer, samples).map_err(io_err)
}

/// Reads raw little-endian `f32` samples from `reader` until EOF.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the reader fails or the byte count is not a
/// multiple of 4.
pub fn read_samples_binary<R: Read>(mut reader: R) -> Result<Vec<f32>> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes).map_err(io_err)?;
    if bytes.len() % 4 != 0 {
        return Err(TraceError::Io(format!("byte length {} is not a multiple of 4", bytes.len())));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Writes a [`Trace`] (samples + metadata) to a self-describing text file.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the file cannot be written.
pub fn write_trace_text<P: AsRef<Path>>(path: P, trace: &Trace) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC).map_err(io_err)?;
    writeln!(w).map_err(io_err)?;
    writeln!(w, "description {}", trace.meta().description.replace('\n', " ")).map_err(io_err)?;
    writeln!(w, "sample_rate_hz {}", trace.meta().sample_rate_hz.unwrap_or(0.0)).map_err(io_err)?;
    writeln!(w, "device_clock_hz {}", trace.meta().device_clock_hz.unwrap_or(0.0))
        .map_err(io_err)?;
    let starts: Vec<String> = trace.meta().co_starts.iter().map(|s| s.to_string()).collect();
    let ends: Vec<String> = trace.meta().co_ends.iter().map(|s| s.to_string()).collect();
    writeln!(w, "co_starts {}", starts.join(",")).map_err(io_err)?;
    writeln!(w, "co_ends {}", ends.join(",")).map_err(io_err)?;
    writeln!(w, "samples {}", trace.len()).map_err(io_err)?;
    for &s in trace.samples() {
        writeln!(w, "{s}").map_err(io_err)?;
    }
    Ok(())
}

/// Reads a [`Trace`] previously written by [`write_trace_text`].
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the file cannot be read or is malformed.
pub fn read_trace_text<P: AsRef<Path>>(path: P) -> Result<Trace> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = BufReader::new(file);
    let mut lines = Vec::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = r.read_line(&mut buf).map_err(io_err)?;
        if n == 0 {
            break;
        }
        lines.push(buf.trim_end().to_string());
    }
    let mut it = lines.into_iter();
    let magic = it.next().ok_or_else(|| TraceError::Io("empty trace file".into()))?;
    if magic.as_bytes() != MAGIC {
        return Err(TraceError::Io("bad magic header".into()));
    }
    let mut meta = TraceMeta::default();
    let mut n_samples = 0usize;
    for line in it.by_ref() {
        let (key, value) = line.split_once(' ').unwrap_or((line.as_str(), ""));
        match key {
            "description" => meta.description = value.to_string(),
            "sample_rate_hz" => {
                let v: f64 = value.parse().map_err(|_| TraceError::Io("bad sample_rate".into()))?;
                meta.sample_rate_hz = if v > 0.0 { Some(v) } else { None };
            }
            "device_clock_hz" => {
                let v: f64 = value.parse().map_err(|_| TraceError::Io("bad clock".into()))?;
                meta.device_clock_hz = if v > 0.0 { Some(v) } else { None };
            }
            "co_starts" => {
                meta.co_starts = parse_usize_list(value)?;
            }
            "co_ends" => {
                meta.co_ends = parse_usize_list(value)?;
            }
            "samples" => {
                n_samples = value.parse().map_err(|_| TraceError::Io("bad sample count".into()))?;
                break;
            }
            other => return Err(TraceError::Io(format!("unknown header field '{other}'"))),
        }
    }
    let mut samples = Vec::with_capacity(n_samples);
    for line in it {
        if line.is_empty() {
            continue;
        }
        samples.push(line.parse::<f32>().map_err(|_| TraceError::Io("bad sample value".into()))?);
    }
    if samples.len() != n_samples {
        return Err(TraceError::Io(format!(
            "expected {n_samples} samples, found {}",
            samples.len()
        )));
    }
    Ok(Trace::with_meta(samples, meta))
}

fn parse_usize_list(value: &str) -> Result<Vec<usize>> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|s| s.parse::<usize>().map_err(|_| TraceError::Io(format!("bad index '{s}'"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_roundtrip() {
        let samples = vec![0.0f32, -1.5, 3.25, f32::MAX, f32::MIN_POSITIVE];
        let mut buf = Vec::new();
        write_samples_binary(&mut buf, &samples).unwrap();
        let back = read_samples_binary(&buf[..]).unwrap();
        assert_eq!(back, samples);
    }

    #[test]
    fn binary_bad_length() {
        let bytes = [0u8; 7];
        assert!(read_samples_binary(&bytes[..]).is_err());
    }

    #[test]
    fn le_primitives_roundtrip_bit_exactly() {
        let mut buf = Vec::new();
        write_u32_le(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64_le(&mut buf, u64::MAX - 7).unwrap();
        let values = [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::NAN, f32::INFINITY];
        write_f32s_le(&mut buf, &values).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_u32_le(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64_le(&mut r).unwrap(), u64::MAX - 7);
        let back = read_f32s_le(&mut r, values.len()).unwrap();
        for (a, b) in back.iter().zip(values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 roundtrip must be bit-exact");
        }
        assert!(r.is_empty());
    }

    #[test]
    fn i8_roundtrip_covers_full_range() {
        let values: Vec<i8> = (-128i16..=127).map(|v| v as i8).collect();
        let mut buf = Vec::new();
        write_i8s(&mut buf, &values).unwrap();
        assert_eq!(buf.len(), values.len());
        let back = read_i8s(&buf[..], values.len()).unwrap();
        assert_eq!(back, values);
        // Truncation surfaces as UnexpectedEof like the other primitives.
        assert_eq!(read_i8s(&buf[..10], 11).unwrap_err().kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn i8_write_handles_chunk_boundaries() {
        // Longer than one internal chunk to exercise the buffered path.
        let values: Vec<i8> = (0..10_000).map(|i| (i % 251) as i8).collect();
        let mut buf = Vec::new();
        write_i8s(&mut buf, &values).unwrap();
        assert_eq!(read_i8s(&buf[..], values.len()).unwrap(), values);
    }

    #[test]
    fn le_reads_report_truncation_as_unexpected_eof() {
        let bytes = [1u8, 2, 3]; // shorter than any primitive
        assert_eq!(read_u32_le(&bytes[..]).unwrap_err().kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(read_u64_le(&bytes[..]).unwrap_err().kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(
            read_f32s_le(&bytes[..], 1).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn text_roundtrip_with_meta() {
        let dir = std::env::temp_dir();
        let path = dir.join("sca_trace_io_test.trc");
        let mut meta = TraceMeta::with_description("unit test trace");
        meta.sample_rate_hz = Some(125e6);
        meta.device_clock_hz = Some(50e6);
        meta.co_starts = vec![10, 200];
        meta.co_ends = vec![100, 320];
        let trace = Trace::with_meta(vec![0.5, -0.25, 1.0, 2.0], meta);
        write_trace_text(&path, &trace).unwrap();
        let back = read_trace_text(&path).unwrap();
        assert_eq!(back.samples(), trace.samples());
        assert_eq!(back.meta().co_starts, trace.meta().co_starts);
        assert_eq!(back.meta().co_ends, trace.meta().co_ends);
        assert_eq!(back.meta().description, "unit test trace");
        assert_eq!(back.meta().sample_rate_hz, Some(125e6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_roundtrip_empty_markers() {
        let dir = std::env::temp_dir();
        let path = dir.join("sca_trace_io_test_empty.trc");
        let trace = Trace::from_samples(vec![1.0, 2.0]);
        write_trace_text(&path, &trace).unwrap();
        let back = read_trace_text(&path).unwrap();
        assert!(back.meta().co_starts.is_empty());
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_error() {
        assert!(read_trace_text("/nonexistent/definitely_missing.trc").is_err());
    }
}
