//! Simple portable trace and dataset (de)serialisation.
//!
//! Two formats are supported:
//!
//! * a compact little-endian binary format for raw sample vectors
//!   ([`write_samples_binary`] / [`read_samples_binary`]) compatible with
//!   `numpy.fromfile(dtype="<f4")`, convenient for exchanging traces with the
//!   original Python tooling, and
//! * a self-describing text format for [`Trace`] including metadata
//!   ([`write_trace_text`] / [`read_trace_text`]), kept dependency-free on
//!   purpose (no JSON crate in the offline allow-list).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Result, Trace, TraceError, TraceMeta};

const MAGIC: &[u8; 8] = b"SCATRC01";

fn io_err(e: std::io::Error) -> TraceError {
    TraceError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------
//
// Shared building blocks for every binary format in the workspace (raw sample
// dumps here, the locator's model files in `sca-locator::persist`). They
// return plain `std::io::Result` so callers can map failures onto their own
// error types; truncation surfaces as `ErrorKind::UnexpectedEof`.

/// Writes a `u32` in little-endian byte order.
///
/// # Errors
///
/// Propagates the underlying writer error.
pub fn write_u32_le<W: Write>(mut writer: W, value: u32) -> std::io::Result<()> {
    writer.write_all(&value.to_le_bytes())
}

/// Reads a little-endian `u32`.
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` on truncation).
pub fn read_u32_le<R: Read>(mut reader: R) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a `u64` in little-endian byte order.
///
/// # Errors
///
/// Propagates the underlying writer error.
pub fn write_u64_le<W: Write>(mut writer: W, value: u64) -> std::io::Result<()> {
    writer.write_all(&value.to_le_bytes())
}

/// Reads a little-endian `u64`.
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` on truncation).
pub fn read_u64_le<R: Read>(mut reader: R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes an `f32` slice in little-endian byte order (bit-exact: the bytes
/// are the IEEE-754 representation, so a read-back reproduces every value
/// including NaN payloads).
///
/// # Errors
///
/// Propagates the underlying writer error.
pub fn write_f32s_le<W: Write>(mut writer: W, values: &[f32]) -> std::io::Result<()> {
    for &v in values {
        writer.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Upper bound on any single transient read buffer and on the *initial*
/// capacity reserved for a length-prefixed read. `count` values usually come
/// from an untrusted file header, so the readers below never allocate
/// `count`-sized buffers up front: they read in bounded chunks and let the
/// output grow only as real data actually arrives. A header lying about its
/// length therefore fails with `UnexpectedEof` after at most one chunk of
/// work instead of a multi-gigabyte allocation (or, on 32-bit targets, a
/// `count * 4` overflow).
const READ_CHUNK_BYTES: usize = 64 * 1024;

/// `InvalidData` error for a length header whose byte size overflows `usize`.
fn count_overflow(what: &str, count: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("{what} count {count} overflows the addressable byte range"),
    )
}

/// Reads exactly `count` little-endian `f32` values.
///
/// `count` is treated as untrusted (it typically comes from a file header):
/// the read proceeds in bounded chunks, so a corrupt or hostile header
/// cannot trigger an up-front `count * 4` allocation and a `count` whose
/// byte size overflows `usize` is rejected with `InvalidData`.
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` if fewer than
/// `count` values are available); `InvalidData` on byte-size overflow.
pub fn read_f32s_le<R: Read>(mut reader: R, count: usize) -> std::io::Result<Vec<f32>> {
    if count.checked_mul(4).is_none() {
        return Err(count_overflow("f32", count));
    }
    let mut out = Vec::with_capacity(count.min(READ_CHUNK_BYTES / 4));
    let mut buf = [0u8; READ_CHUNK_BYTES];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK_BYTES / 4);
        let bytes = &mut buf[..take * 4];
        reader.read_exact(bytes)?;
        out.extend(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])));
        remaining -= take;
    }
    Ok(out)
}

/// Reads exactly `out.len()` little-endian `f32` values into a
/// caller-provided slice, in bounded chunks (no transient buffer ever exceeds
/// [`READ_CHUNK_BYTES`]). The slice-filling counterpart of [`read_f32s_le`]
/// for callers that own the destination — e.g. the carry-buffer sequential
/// trace source, which decodes a socket or pipe straight into its chunk
/// buffer.
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` if the stream
/// ends before `out` is full).
pub fn read_f32s_le_into<R: Read>(mut reader: R, out: &mut [f32]) -> std::io::Result<()> {
    let mut buf = [0u8; READ_CHUNK_BYTES];
    for block in out.chunks_mut(READ_CHUNK_BYTES / 4) {
        let bytes = &mut buf[..block.len() * 4];
        reader.read_exact(bytes)?;
        for (slot, quad) in block.iter_mut().zip(bytes.chunks_exact(4)) {
            *slot = f32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]);
        }
    }
    Ok(())
}

/// Writes an `i8` slice as raw bytes (two's complement, endianness-free).
///
/// The counterpart of [`read_i8s`]; used for the quantised weight blocks of
/// the locator's model format v2.
///
/// # Errors
///
/// Propagates the underlying writer error.
pub fn write_i8s<W: Write>(mut writer: W, values: &[i8]) -> std::io::Result<()> {
    // Chunked copy keeps the conversion allocation small and the writes
    // large enough for a buffered writer.
    let mut buf = [0u8; 4096];
    for chunk in values.chunks(buf.len()) {
        for (dst, &v) in buf.iter_mut().zip(chunk.iter()) {
            *dst = v as u8;
        }
        writer.write_all(&buf[..chunk.len()])?;
    }
    Ok(())
}

/// Reads exactly `count` `i8` values (raw two's-complement bytes).
///
/// Like [`read_f32s_le`], `count` is untrusted: the read proceeds in bounded
/// chunks and the output only grows as data actually arrives, so a corrupt
/// length header fails fast instead of allocating `count` bytes up front.
///
/// # Errors
///
/// Propagates the underlying reader error (`UnexpectedEof` if fewer than
/// `count` bytes are available).
pub fn read_i8s<R: Read>(mut reader: R, count: usize) -> std::io::Result<Vec<i8>> {
    let mut out = Vec::with_capacity(count.min(READ_CHUNK_BYTES));
    let mut buf = [0u8; READ_CHUNK_BYTES];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK_BYTES);
        let bytes = &mut buf[..take];
        reader.read_exact(bytes)?;
        out.extend(bytes.iter().map(|&b| b as i8));
        remaining -= take;
    }
    Ok(out)
}

/// Writes raw `f32` samples in little-endian binary to `writer`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the underlying writer fails.
pub fn write_samples_binary<W: Write>(writer: W, samples: &[f32]) -> Result<()> {
    write_f32s_le(writer, samples).map_err(io_err)
}

/// Reads raw little-endian `f32` samples from `reader` until EOF.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the reader fails or the byte count is not a
/// multiple of 4.
pub fn read_samples_binary<R: Read>(mut reader: R) -> Result<Vec<f32>> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes).map_err(io_err)?;
    if bytes.len() % 4 != 0 {
        return Err(TraceError::Io(format!("byte length {} is not a multiple of 4", bytes.len())));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Writes a [`Trace`] (samples + metadata) to a self-describing text file.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the file cannot be written.
pub fn write_trace_text<P: AsRef<Path>>(path: P, trace: &Trace) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC).map_err(io_err)?;
    writeln!(w).map_err(io_err)?;
    writeln!(w, "description {}", trace.meta().description.replace('\n', " ")).map_err(io_err)?;
    writeln!(w, "sample_rate_hz {}", trace.meta().sample_rate_hz.unwrap_or(0.0)).map_err(io_err)?;
    writeln!(w, "device_clock_hz {}", trace.meta().device_clock_hz.unwrap_or(0.0))
        .map_err(io_err)?;
    let starts: Vec<String> = trace.meta().co_starts.iter().map(|s| s.to_string()).collect();
    let ends: Vec<String> = trace.meta().co_ends.iter().map(|s| s.to_string()).collect();
    writeln!(w, "co_starts {}", starts.join(",")).map_err(io_err)?;
    writeln!(w, "co_ends {}", ends.join(",")).map_err(io_err)?;
    writeln!(w, "samples {}", trace.len()).map_err(io_err)?;
    for &s in trace.samples() {
        writeln!(w, "{s}").map_err(io_err)?;
    }
    Ok(())
}

/// Reads a [`Trace`] previously written by [`write_trace_text`].
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the file cannot be read or is malformed.
pub fn read_trace_text<P: AsRef<Path>>(path: P) -> Result<Trace> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = BufReader::new(file);
    let mut lines = Vec::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = r.read_line(&mut buf).map_err(io_err)?;
        if n == 0 {
            break;
        }
        lines.push(buf.trim_end().to_string());
    }
    let mut it = lines.into_iter();
    let magic = it.next().ok_or_else(|| TraceError::Io("empty trace file".into()))?;
    if magic.as_bytes() != MAGIC {
        return Err(TraceError::Io("bad magic header".into()));
    }
    let mut meta = TraceMeta::default();
    let mut n_samples = 0usize;
    for line in it.by_ref() {
        if let Some(declared) = parse_trace_header_line(&line, &mut meta)? {
            n_samples = declared;
            break;
        }
    }
    // `n_samples` is an untrusted header value: cap the up-front reservation
    // so a lying header cannot force a huge allocation before any data is
    // parsed (the vector still grows to the real sample count).
    let mut samples = Vec::with_capacity(n_samples.min(READ_CHUNK_BYTES));
    for line in it {
        if line.is_empty() {
            continue;
        }
        samples.push(line.parse::<f32>().map_err(|_| TraceError::Io("bad sample value".into()))?);
    }
    if samples.len() != n_samples {
        return Err(TraceError::Io(format!(
            "expected {n_samples} samples, found {}",
            samples.len()
        )));
    }
    Ok(Trace::with_meta(samples, meta))
}

/// Parses one `SCATRC01` header line (already stripped of its newline) into
/// `meta`. Returns `Some(declared_sample_count)` for the terminating
/// `samples` field, `None` for every other header field. Shared by the full
/// reader ([`read_trace_text`]) and the out-of-core indexer
/// (`FileTraceSource::open_text`) so the two cannot drift apart.
pub(crate) fn parse_trace_header_line(line: &str, meta: &mut TraceMeta) -> Result<Option<usize>> {
    let (key, value) = line.split_once(' ').unwrap_or((line, ""));
    match key {
        "description" => meta.description = value.to_string(),
        "sample_rate_hz" => {
            let v: f64 = value.parse().map_err(|_| TraceError::Io("bad sample_rate".into()))?;
            meta.sample_rate_hz = if v > 0.0 { Some(v) } else { None };
        }
        "device_clock_hz" => {
            let v: f64 = value.parse().map_err(|_| TraceError::Io("bad clock".into()))?;
            meta.device_clock_hz = if v > 0.0 { Some(v) } else { None };
        }
        "co_starts" => meta.co_starts = parse_usize_list(value)?,
        "co_ends" => meta.co_ends = parse_usize_list(value)?,
        "samples" => {
            let n = value.parse().map_err(|_| TraceError::Io("bad sample count".into()))?;
            return Ok(Some(n));
        }
        other => return Err(TraceError::Io(format!("unknown header field '{other}'"))),
    }
    Ok(None)
}

pub(crate) fn parse_usize_list(value: &str) -> Result<Vec<usize>> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|s| s.parse::<usize>().map_err(|_| TraceError::Io(format!("bad index '{s}'"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_roundtrip() {
        let samples = vec![0.0f32, -1.5, 3.25, f32::MAX, f32::MIN_POSITIVE];
        let mut buf = Vec::new();
        write_samples_binary(&mut buf, &samples).unwrap();
        let back = read_samples_binary(&buf[..]).unwrap();
        assert_eq!(back, samples);
    }

    #[test]
    fn binary_bad_length() {
        let bytes = [0u8; 7];
        assert!(read_samples_binary(&bytes[..]).is_err());
    }

    #[test]
    fn le_primitives_roundtrip_bit_exactly() {
        let mut buf = Vec::new();
        write_u32_le(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64_le(&mut buf, u64::MAX - 7).unwrap();
        let values = [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::NAN, f32::INFINITY];
        write_f32s_le(&mut buf, &values).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_u32_le(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64_le(&mut r).unwrap(), u64::MAX - 7);
        let back = read_f32s_le(&mut r, values.len()).unwrap();
        for (a, b) in back.iter().zip(values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 roundtrip must be bit-exact");
        }
        assert!(r.is_empty());
    }

    #[test]
    fn i8_roundtrip_covers_full_range() {
        let values: Vec<i8> = (-128i16..=127).map(|v| v as i8).collect();
        let mut buf = Vec::new();
        write_i8s(&mut buf, &values).unwrap();
        assert_eq!(buf.len(), values.len());
        let back = read_i8s(&buf[..], values.len()).unwrap();
        assert_eq!(back, values);
        // Truncation surfaces as UnexpectedEof like the other primitives.
        assert_eq!(read_i8s(&buf[..10], 11).unwrap_err().kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn i8_write_handles_chunk_boundaries() {
        // Longer than one internal chunk to exercise the buffered path.
        let values: Vec<i8> = (0..10_000).map(|i| (i % 251) as i8).collect();
        let mut buf = Vec::new();
        write_i8s(&mut buf, &values).unwrap();
        assert_eq!(read_i8s(&buf[..], values.len()).unwrap(), values);
    }

    #[test]
    fn le_reads_report_truncation_as_unexpected_eof() {
        let bytes = [1u8, 2, 3]; // shorter than any primitive
        assert_eq!(read_u32_le(&bytes[..]).unwrap_err().kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(read_u64_le(&bytes[..]).unwrap_err().kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(
            read_f32s_le(&bytes[..], 1).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn lying_length_header_fails_fast_without_huge_allocation() {
        // A header claiming billions of values over a 12-byte payload must
        // surface as truncation after at most one bounded chunk — the old
        // code allocated `count * 4` bytes before reading anything.
        let bytes = [0u8; 12];
        let err = read_f32s_le(&bytes[..], 1 << 40).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        let err = read_i8s(&bytes[..], 1 << 40).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn f32_count_byte_overflow_is_invalid_data() {
        // `count * 4` would wrap on every platform: usize::MAX elements.
        let err = read_f32s_le(&[][..], usize::MAX).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn chunked_reads_cross_chunk_boundaries_bit_exactly() {
        // More values than one 64 KiB chunk holds, to exercise the loop.
        let values: Vec<f32> = (0..40_000).map(|i| (i as f32).sin()).collect();
        let mut buf = Vec::new();
        write_f32s_le(&mut buf, &values).unwrap();
        let back = read_f32s_le(&buf[..], values.len()).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn text_reader_caps_preallocation_for_lying_sample_header() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sca_trace_io_lying_{}.trc", std::process::id()));
        // Header declares an absurd sample count but carries two samples: the
        // reader must fail on the count mismatch, not abort on allocation.
        std::fs::write(&path, "SCATRC01\nsamples 99999999999999\n1.0\n2.0\n").unwrap();
        let err = read_trace_text(&path).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_roundtrip_with_meta() {
        let dir = std::env::temp_dir();
        let path = dir.join("sca_trace_io_test.trc");
        let mut meta = TraceMeta::with_description("unit test trace");
        meta.sample_rate_hz = Some(125e6);
        meta.device_clock_hz = Some(50e6);
        meta.co_starts = vec![10, 200];
        meta.co_ends = vec![100, 320];
        let trace = Trace::with_meta(vec![0.5, -0.25, 1.0, 2.0], meta);
        write_trace_text(&path, &trace).unwrap();
        let back = read_trace_text(&path).unwrap();
        assert_eq!(back.samples(), trace.samples());
        assert_eq!(back.meta().co_starts, trace.meta().co_starts);
        assert_eq!(back.meta().co_ends, trace.meta().co_ends);
        assert_eq!(back.meta().description, "unit test trace");
        assert_eq!(back.meta().sample_rate_hz, Some(125e6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_roundtrip_empty_markers() {
        let dir = std::env::temp_dir();
        let path = dir.join("sca_trace_io_test_empty.trc");
        let trace = Trace::from_samples(vec![1.0, 2.0]);
        write_trace_text(&path, &trace).unwrap();
        let back = read_trace_text(&path).unwrap();
        assert!(back.meta().co_starts.is_empty());
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_error() {
        assert!(read_trace_text("/nonexistent/definitely_missing.trc").is_err());
    }
}
