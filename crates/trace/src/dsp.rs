//! Digital signal processing primitives.
//!
//! The functions in this module implement the building blocks of the paper's
//! *Segmentation* stage (Section III-D): thresholding of the sliding-window
//! classification signal into a ±1 square wave, median filtering and rising
//! edge detection. It also contains generic helpers (standardisation, moving
//! average, decimation, absolute/low-pass filters) used by the simulator and
//! by the baseline locators.

use crate::{Result, TraceError};

/// Normalises `samples` in place to zero mean and unit (population) variance.
///
/// A constant signal is only centred (its variance is zero and cannot be
/// scaled to one).
pub fn standardize_in_place(samples: &mut [f32]) {
    if samples.is_empty() {
        return;
    }
    let mean = crate::stats::mean(samples);
    let std = crate::stats::std(samples);
    if std > 0.0 {
        for s in samples.iter_mut() {
            *s = (*s - mean) / std;
        }
    } else {
        for s in samples.iter_mut() {
            *s -= mean;
        }
    }
}

/// Min-max normalises `samples` in place into the `[0, 1]` range.
///
/// A constant signal maps to all zeros.
pub fn min_max_normalize_in_place(samples: &mut [f32]) {
    if samples.is_empty() {
        return;
    }
    let min = samples.iter().copied().fold(f32::INFINITY, f32::min);
    let max = samples.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let range = max - min;
    for s in samples.iter_mut() {
        *s = if range > 0.0 { (*s - min) / range } else { 0.0 };
    }
}

/// Converts a score signal into a ±1 square wave by comparing every sample
/// to `threshold` (`Th` block in Figure 1 of the paper).
///
/// A sample strictly above the threshold maps to `+1.0`, otherwise `-1.0`.
pub fn threshold_square_wave(samples: &[f32], threshold: f32) -> Vec<f32> {
    samples.iter().map(|&s| if s > threshold { 1.0 } else { -1.0 }).collect()
}

/// Applies a median filter of odd window size `k` (`MF` block in Figure 1).
///
/// The window is centred on every sample; borders are handled by clamping the
/// window inside the signal (shrinking it near the edges), which is the usual
/// behaviour of `scipy.signal.medfilt`-style filters on short signals.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] if `k` is zero or even.
pub fn median_filter(samples: &[f32], k: usize) -> Result<Vec<f32>> {
    if k == 0 || k.is_multiple_of(2) {
        return Err(TraceError::InvalidParameter(format!(
            "median filter size must be odd and non-zero, got {k}"
        )));
    }
    if samples.is_empty() {
        return Ok(Vec::new());
    }
    let half = k / 2;
    let mut out = Vec::with_capacity(samples.len());
    let mut buf: Vec<f32> = Vec::with_capacity(k);
    for i in 0..samples.len() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(samples.len());
        buf.clear();
        buf.extend_from_slice(&samples[lo..hi]);
        buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median filter input"));
        out.push(buf[buf.len() / 2]);
    }
    Ok(out)
}

/// Returns the indices at which the signal transitions from a negative value
/// to a positive one (rising edges of a ±1 square wave).
///
/// The returned index is the index of the *first positive sample* of the edge,
/// matching the paper's convention that the rising edge marks the beginning of
/// a cryptographic operation.
pub fn rising_edges(samples: &[f32]) -> Vec<usize> {
    let mut edges = Vec::new();
    for i in 1..samples.len() {
        if samples[i - 1] < 0.0 && samples[i] >= 0.0 {
            edges.push(i);
        }
    }
    edges
}

/// Returns the indices at which the signal transitions from a positive value
/// to a negative one (falling edges).
pub fn falling_edges(samples: &[f32]) -> Vec<usize> {
    let mut edges = Vec::new();
    for i in 1..samples.len() {
        if samples[i - 1] >= 0.0 && samples[i] < 0.0 {
            edges.push(i);
        }
    }
    edges
}

/// Simple moving average with a causal window of `k` samples (`k >= 1`).
///
/// The first `k-1` outputs average the available prefix only.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] if `k` is zero.
pub fn moving_average(samples: &[f32], k: usize) -> Result<Vec<f32>> {
    if k == 0 {
        return Err(TraceError::InvalidParameter("moving average window must be > 0".into()));
    }
    let mut out = Vec::with_capacity(samples.len());
    let mut sum = 0.0f64;
    for i in 0..samples.len() {
        sum += samples[i] as f64;
        if i >= k {
            sum -= samples[i - k] as f64;
        }
        let denom = (i + 1).min(k) as f64;
        out.push((sum / denom) as f32);
    }
    Ok(out)
}

/// First-order IIR low-pass filter `y[n] = alpha * x[n] + (1 - alpha) * y[n-1]`.
///
/// `alpha` must be in `(0, 1]`; it models the analog bandwidth limitation of
/// the measurement chain in the simulator.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] if `alpha` is outside `(0, 1]`.
pub fn low_pass(samples: &[f32], alpha: f32) -> Result<Vec<f32>> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(TraceError::InvalidParameter(format!("alpha must be in (0,1], got {alpha}")));
    }
    let mut out = Vec::with_capacity(samples.len());
    let mut y = 0.0f32;
    for (i, &x) in samples.iter().enumerate() {
        y = if i == 0 { x } else { alpha * x + (1.0 - alpha) * y };
        out.push(y);
    }
    Ok(out)
}

/// Decimates the signal by keeping one sample every `factor` samples.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] if `factor` is zero.
pub fn decimate(samples: &[f32], factor: usize) -> Result<Vec<f32>> {
    if factor == 0 {
        return Err(TraceError::InvalidParameter("decimation factor must be > 0".into()));
    }
    Ok(samples.iter().step_by(factor).copied().collect())
}

/// Linearly resamples the signal to `new_len` samples (nearest-neighbour for
/// degenerate cases). Used by the oscilloscope model to convert cycles to
/// ADC samples at a non-integer samples-per-cycle ratio.
pub fn resample_linear(samples: &[f32], new_len: usize) -> Vec<f32> {
    if new_len == 0 || samples.is_empty() {
        return Vec::new();
    }
    if samples.len() == 1 {
        return vec![samples[0]; new_len];
    }
    let mut out = Vec::with_capacity(new_len);
    let scale = (samples.len() - 1) as f64 / (new_len.max(2) - 1) as f64;
    for i in 0..new_len {
        let pos = i as f64 * scale;
        let idx = pos.floor() as usize;
        let frac = (pos - idx as f64) as f32;
        let a = samples[idx.min(samples.len() - 1)];
        let b = samples[(idx + 1).min(samples.len() - 1)];
        out.push(a + (b - a) * frac);
    }
    out
}

/// Quantises the signal as an ADC with `bits` bits over the `[min, max]`
/// full-scale range would. Values outside the range are clipped.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] if `bits` is zero or greater than
/// 24, or if `max <= min`.
pub fn quantize(samples: &[f32], bits: u32, min: f32, max: f32) -> Result<Vec<f32>> {
    if bits == 0 || bits > 24 {
        return Err(TraceError::InvalidParameter(format!("bits must be in 1..=24, got {bits}")));
    }
    if max <= min {
        return Err(TraceError::InvalidParameter("quantization range max must exceed min".into()));
    }
    let levels = (1u32 << bits) as f32 - 1.0;
    let range = max - min;
    Ok(samples
        .iter()
        .map(|&s| {
            let clipped = s.clamp(min, max);
            let code = ((clipped - min) / range * levels).round();
            min + code / levels * range
        })
        .collect())
}

/// Computes the sliding-window sum of absolute differences (SAD) between a
/// `template` and every aligned position of `signal`.
///
/// Returns a vector of length `signal.len() - template.len() + 1`; lower
/// values indicate better matches. Used by the SAD baseline locator.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] if the template is empty or longer
/// than the signal.
pub fn sliding_sad(signal: &[f32], template: &[f32]) -> Result<Vec<f32>> {
    if template.is_empty() {
        return Err(TraceError::InvalidParameter("template must not be empty".into()));
    }
    if template.len() > signal.len() {
        return Err(TraceError::InvalidParameter(
            "template must not be longer than the signal".into(),
        ));
    }
    let n = signal.len() - template.len() + 1;
    let mut out = Vec::with_capacity(n);
    for start in 0..n {
        let mut sad = 0.0f64;
        for (i, &t) in template.iter().enumerate() {
            sad += (signal[start + i] - t).abs() as f64;
        }
        out.push(sad as f32);
    }
    Ok(out)
}

/// Computes the normalised cross-correlation between a `template` and every
/// aligned position of `signal` (matched-filter output).
///
/// Each output sample is the Pearson correlation between the template and the
/// corresponding signal slice, hence bounded in `[-1, 1]`. Used by the
/// matched-filter baseline locator.
///
/// # Errors
///
/// Returns [`TraceError::InvalidParameter`] if the template is empty or longer
/// than the signal.
pub fn normalized_cross_correlation(signal: &[f32], template: &[f32]) -> Result<Vec<f32>> {
    if template.is_empty() {
        return Err(TraceError::InvalidParameter("template must not be empty".into()));
    }
    if template.len() > signal.len() {
        return Err(TraceError::InvalidParameter(
            "template must not be longer than the signal".into(),
        ));
    }
    let n = signal.len() - template.len() + 1;
    let mut out = Vec::with_capacity(n);
    for start in 0..n {
        let window = &signal[start..start + template.len()];
        out.push(crate::stats::pearson(window, template));
    }
    Ok(out)
}

/// Finds local maxima of `signal` that exceed `threshold` and are separated by
/// at least `min_distance` samples (greedy, highest peaks first).
///
/// Returns the peak indices in ascending order.
pub fn find_peaks(signal: &[f32], threshold: f32, min_distance: usize) -> Vec<usize> {
    let mut candidates: Vec<usize> = (0..signal.len())
        .filter(|&i| {
            let v = signal[i];
            v > threshold
                && (i == 0 || signal[i - 1] <= v)
                && (i + 1 == signal.len() || signal[i + 1] < v)
        })
        .collect();
    candidates
        .sort_by(|&a, &b| signal[b].partial_cmp(&signal[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut selected: Vec<usize> = Vec::new();
    for c in candidates {
        if selected.iter().all(|&s| c.abs_diff(s) >= min_distance.max(1)) {
            selected.push(c);
        }
    }
    selected.sort_unstable();
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_wave_threshold() {
        let w = threshold_square_wave(&[0.1, 0.6, 0.5, 0.9], 0.5);
        assert_eq!(w, vec![-1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn median_filter_removes_spike() {
        let signal = vec![-1.0, -1.0, 1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let filtered = median_filter(&signal, 3).unwrap();
        assert_eq!(filtered, vec![-1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn median_filter_rejects_even_size() {
        assert!(median_filter(&[1.0, 2.0], 2).is_err());
        assert!(median_filter(&[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn median_filter_empty_signal() {
        assert!(median_filter(&[], 3).unwrap().is_empty());
    }

    #[test]
    fn rising_and_falling_edges() {
        let wave = vec![-1.0, -1.0, 1.0, 1.0, -1.0, 1.0];
        assert_eq!(rising_edges(&wave), vec![2, 5]);
        assert_eq!(falling_edges(&wave), vec![4]);
    }

    #[test]
    fn no_edges_in_constant_signal() {
        assert!(rising_edges(&[1.0; 10]).is_empty());
        assert!(rising_edges(&[-1.0; 10]).is_empty());
    }

    #[test]
    fn moving_average_basic() {
        let out = moving_average(&[1.0, 1.0, 1.0, 5.0], 2).unwrap();
        assert_eq!(out, vec![1.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn low_pass_validates_alpha() {
        assert!(low_pass(&[1.0], 0.0).is_err());
        assert!(low_pass(&[1.0], 1.5).is_err());
        assert_eq!(low_pass(&[1.0, 3.0], 1.0).unwrap(), vec![1.0, 3.0]);
    }

    #[test]
    fn decimate_keeps_every_other() {
        let out = decimate(&[0.0, 1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(out, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn resample_preserves_endpoints() {
        let out = resample_linear(&[0.0, 1.0, 2.0, 3.0], 7);
        assert_eq!(out.len(), 7);
        assert!((out[0] - 0.0).abs() < 1e-6);
        assert!((out[6] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn quantize_clips_and_rounds() {
        let out = quantize(&[-2.0, 0.0, 0.5, 2.0], 2, -1.0, 1.0).unwrap();
        // 2 bits -> 4 levels at -1, -1/3, 1/3, 1.
        assert!((out[0] + 1.0).abs() < 1e-6);
        assert!((out[3] - 1.0).abs() < 1e-6);
        assert!(out[2] > 0.0 && out[2] < 1.0);
    }

    #[test]
    fn quantize_validates_params() {
        assert!(quantize(&[0.0], 0, -1.0, 1.0).is_err());
        assert!(quantize(&[0.0], 12, 1.0, -1.0).is_err());
    }

    #[test]
    fn sad_perfect_match_is_zero() {
        let signal = vec![0.0, 1.0, 2.0, 3.0, 2.0, 1.0];
        let template = vec![2.0, 3.0, 2.0];
        let sad = sliding_sad(&signal, &template).unwrap();
        assert_eq!(sad.len(), 4);
        let best = sad.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(best, 2);
        assert!(sad[2].abs() < 1e-6);
    }

    #[test]
    fn ncc_detects_template_position() {
        let mut signal = vec![0.0f32; 32];
        let template = vec![0.0, 1.0, 4.0, 1.0, 0.0, -2.0];
        for (i, &t) in template.iter().enumerate() {
            signal[10 + i] = t;
        }
        let ncc = normalized_cross_correlation(&signal, &template).unwrap();
        let best = ncc.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(best, 10);
        assert!(ncc[10] > 0.99);
    }

    #[test]
    fn ncc_rejects_bad_template() {
        assert!(normalized_cross_correlation(&[1.0], &[]).is_err());
        assert!(normalized_cross_correlation(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn find_peaks_respects_min_distance() {
        let signal = vec![0.0, 5.0, 0.0, 4.0, 0.0, 0.0, 0.0, 6.0, 0.0];
        let peaks = find_peaks(&signal, 1.0, 4);
        assert_eq!(peaks, vec![1, 7]);
    }

    #[test]
    fn find_peaks_threshold_filters() {
        let signal = vec![0.0, 0.5, 0.0, 2.0, 0.0];
        assert_eq!(find_peaks(&signal, 1.0, 1), vec![3]);
    }

    #[test]
    fn standardize_constant_signal() {
        let mut v = vec![3.0; 5];
        standardize_in_place(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn min_max_normalize() {
        let mut v = vec![2.0, 4.0, 6.0];
        min_max_normalize_in_place(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
        let mut c = vec![1.0, 1.0];
        min_max_normalize_in_place(&mut c);
        assert_eq!(c, vec![0.0, 0.0]);
    }
}
