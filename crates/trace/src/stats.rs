//! Basic statistics: mean, variance, Pearson correlation and a numerically
//! stable streaming accumulator used by the incremental CPA implementation.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of the samples. Returns 0.0 for an empty slice.
pub fn mean(samples: &[f32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    (samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64) as f32
}

/// Population variance of the samples. Returns 0.0 for an empty slice.
pub fn variance(samples: &[f32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = mean(samples) as f64;
    (samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / samples.len() as f64) as f32
}

/// Population standard deviation of the samples. Returns 0.0 for an empty slice.
pub fn std(samples: &[f32]) -> f32 {
    variance(samples).sqrt()
}

/// Pearson correlation coefficient between two equally long slices.
///
/// Returns 0.0 if either slice is constant, empty, or the lengths differ
/// (a degenerate correlation is treated as "no correlation" rather than an
/// error because the CPA loop calls this in the hot path).
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let n = a.len() as f64;
    let mean_a = a.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mean_b = b.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..a.len() {
        let da = a[i] as f64 - mean_a;
        let db = b[i] as f64 - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return 0.0;
    }
    (cov / (var_a.sqrt() * var_b.sqrt())) as f32
}

/// Streaming accumulator of the sums needed to compute Pearson correlation
/// between a scalar prediction series and many trace sample points at once.
///
/// This is the classic "online CPA" formulation: for every new trace we feed
/// the hypothetical leakage value `h` and the trace samples `t[j]`, and the
/// accumulator maintains Σh, Σh², Σt[j], Σt[j]², Σh·t[j]. The correlation at
/// any point can then be computed in O(1) per sample without storing traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationAccumulator {
    n: u64,
    sum_h: f64,
    sum_h2: f64,
    sum_t: Vec<f64>,
    sum_t2: Vec<f64>,
    sum_ht: Vec<f64>,
}

impl CorrelationAccumulator {
    /// Creates an accumulator for traces of `num_samples` points.
    pub fn new(num_samples: usize) -> Self {
        Self {
            n: 0,
            sum_h: 0.0,
            sum_h2: 0.0,
            sum_t: vec![0.0; num_samples],
            sum_t2: vec![0.0; num_samples],
            sum_ht: vec![0.0; num_samples],
        }
    }

    /// Number of (prediction, trace) pairs accumulated so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of trace sample points tracked by the accumulator.
    pub fn num_samples(&self) -> usize {
        self.sum_t.len()
    }

    /// Adds one observation: hypothetical leakage `h` and its trace `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t.len()` differs from the accumulator width.
    pub fn update(&mut self, h: f32, t: &[f32]) {
        assert_eq!(
            t.len(),
            self.sum_t.len(),
            "trace length {} does not match accumulator width {}",
            t.len(),
            self.sum_t.len()
        );
        let h = h as f64;
        self.n += 1;
        self.sum_h += h;
        self.sum_h2 += h * h;
        for (j, &tj) in t.iter().enumerate() {
            let tj = tj as f64;
            self.sum_t[j] += tj;
            self.sum_t2[j] += tj * tj;
            self.sum_ht[j] += h * tj;
        }
    }

    /// Computes the Pearson correlation at every trace sample point.
    ///
    /// Degenerate points (zero variance, fewer than two observations) yield 0.0.
    pub fn correlations(&self) -> Vec<f32> {
        let n = self.n as f64;
        if self.n < 2 {
            return vec![0.0; self.sum_t.len()];
        }
        let var_h = self.sum_h2 - self.sum_h * self.sum_h / n;
        (0..self.sum_t.len())
            .map(|j| {
                let var_t = self.sum_t2[j] - self.sum_t[j] * self.sum_t[j] / n;
                let cov = self.sum_ht[j] - self.sum_h * self.sum_t[j] / n;
                if var_h <= 0.0 || var_t <= 0.0 {
                    0.0
                } else {
                    (cov / (var_h.sqrt() * var_t.sqrt())) as f32
                }
            })
            .collect()
    }

    /// Maximum absolute correlation over all sample points (the usual CPA
    /// distinguisher score for one key hypothesis).
    pub fn max_abs_correlation(&self) -> f32 {
        self.correlations().iter().fold(0.0f32, |acc, &c| acc.max(c.abs()))
    }
}

/// Hamming weight of a byte (number of set bits), the standard leakage model.
pub fn hamming_weight(value: u8) -> u32 {
    value.count_ones()
}

/// Hamming distance between two bytes.
pub fn hamming_distance(a: u8, b: u8) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-6);
        assert!((variance(&v) - 4.0).abs() < 1e-5);
        assert!((std(&v) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn accumulator_matches_direct_pearson() {
        // Deterministic pseudo-random data.
        let mut state = 0x12345678u32;
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1 << 24) as f32
        };
        let n_traces = 50;
        let n_samples = 7;
        let mut hs = Vec::new();
        let mut ts: Vec<Vec<f32>> = Vec::new();
        let mut acc = CorrelationAccumulator::new(n_samples);
        for _ in 0..n_traces {
            let h = next();
            let t: Vec<f32> =
                (0..n_samples).map(|j| next() + if j == 3 { h } else { 0.0 }).collect();
            acc.update(h, &t);
            hs.push(h);
            ts.push(t);
        }
        let corr = acc.correlations();
        for j in 0..n_samples {
            let column: Vec<f32> = ts.iter().map(|t| t[j]).collect();
            let direct = pearson(&hs, &column);
            assert!((corr[j] - direct).abs() < 1e-4, "sample {j}: {} vs {}", corr[j], direct);
        }
        // The correlated sample must dominate.
        let best = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3);
    }

    #[test]
    fn accumulator_fewer_than_two_observations() {
        let mut acc = CorrelationAccumulator::new(4);
        assert_eq!(acc.correlations(), vec![0.0; 4]);
        acc.update(1.0, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(acc.correlations(), vec![0.0; 4]);
        assert_eq!(acc.count(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match accumulator width")]
    fn accumulator_width_mismatch_panics() {
        let mut acc = CorrelationAccumulator::new(3);
        acc.update(1.0, &[1.0, 2.0]);
    }

    #[test]
    fn hamming_weight_and_distance() {
        assert_eq!(hamming_weight(0x00), 0);
        assert_eq!(hamming_weight(0xFF), 8);
        assert_eq!(hamming_weight(0xA5), 4);
        assert_eq!(hamming_distance(0xFF, 0x0F), 4);
        assert_eq!(hamming_distance(0x55, 0x55), 0);
    }
}
