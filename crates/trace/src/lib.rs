//! # sca-trace
//!
//! Side-channel trace substrate used by the whole `sca-locate` workspace.
//!
//! The crate provides:
//!
//! * [`Trace`] — a one-dimensional sampled side-channel signal together with
//!   optional metadata (sample rate, ground-truth markers).
//! * [`Window`] and [`WindowLabel`] — fixed-size slices of a trace labelled as
//!   *beginning of a cryptographic operation* (`c1`) or *not* (`c0`), the unit
//!   the paper's CNN classifier is trained on.
//! * [`dsp`] — the signal-processing primitives required by the paper's
//!   segmentation stage (normalisation, thresholding to a ±1 square wave,
//!   median filtering, rising-edge detection) plus a few generic helpers.
//! * [`stats`] — running statistics and Pearson correlation (used both for the
//!   CPA attack and for the matched-filter baseline).
//! * [`dataset`] — labelled window collections with deterministic shuffling
//!   and train/validation/test splitting.
//! * [`io`] — simple portable (de)serialisation of traces and datasets.
//! * [`source`] — [`TraceSource`], the out-of-core random-access abstraction
//!   over trace samples, and [`FileTraceSource`], its chunked on-disk reader
//!   (raw-f32 and `SCATRC01` text) with O(requested range) memory.
//!
//! # Example
//!
//! ```rust
//! use sca_trace::{Trace, dsp};
//!
//! let trace = Trace::from_samples(vec![0.0, 0.2, 0.9, 1.0, 0.1, 0.0]);
//! let wave = dsp::threshold_square_wave(trace.samples(), 0.5);
//! assert_eq!(wave, vec![-1.0, -1.0, 1.0, 1.0, -1.0, -1.0]);
//! let edges = dsp::rising_edges(&wave);
//! assert_eq!(edges, vec![2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod dsp;
pub mod io;
pub mod sequential;
pub mod source;
pub mod stats;
pub mod trace;
pub mod window;

pub use dataset::{Dataset, DatasetSplit, SplitRatios};
pub use sequential::SequentialTraceSource;
pub use source::{FileTraceFormat, FileTraceSource, TraceSource};
pub use trace::{Trace, TraceMeta};
pub use window::{Window, WindowLabel, WindowSlicer};

/// Errors produced by the trace substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A window was requested that exceeds the bounds of the trace.
    WindowOutOfBounds {
        /// First sample of the requested window.
        start: usize,
        /// Length of the requested window.
        len: usize,
        /// Length of the trace.
        trace_len: usize,
    },
    /// An empty trace or window was supplied where a non-empty one is required.
    Empty,
    /// Invalid parameter (e.g. a zero-length window or stride).
    InvalidParameter(String),
    /// Ratios of a dataset split do not sum to 1 or are negative.
    InvalidSplit(String),
    /// An I/O or format error while reading/writing a trace file.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::WindowOutOfBounds { start, len, trace_len } => write!(
                f,
                "window [{start}, {}) out of bounds for trace of length {trace_len}",
                start + len
            ),
            TraceError::Empty => write!(f, "empty trace or window"),
            TraceError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            TraceError::InvalidSplit(msg) => write!(f, "invalid dataset split: {msg}"),
            TraceError::Io(msg) => write!(f, "trace i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, TraceError>;
