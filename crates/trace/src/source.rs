//! Out-of-core trace access: the [`TraceSource`] abstraction.
//!
//! The sliding-window pipeline only ever looks at one bounded sample range at
//! a time (a chunk of overlapping windows), so nothing forces the whole trace
//! to be resident in memory. [`TraceSource`] is the minimal random-access
//! contract that both the in-memory [`Trace`] and the chunked on-disk reader
//! [`FileTraceSource`] satisfy: a length and a bounds-checked
//! [`TraceSource::fill`] that copies an arbitrary sample range into a
//! caller-provided buffer.
//!
//! [`FileTraceSource`] serves the two existing trace file formats:
//!
//! * **raw-f32** — the little-endian binary sample dump of
//!   [`crate::io::write_samples_binary`] (`numpy.fromfile(dtype="<f4")`
//!   compatible). Random access is a direct seek: sample `i` lives at byte
//!   `4 * i`.
//! * **`SCATRC01` text** — the self-describing format of
//!   [`crate::io::write_trace_text`]. Lines are variable-width, so the reader
//!   builds a *sparse* byte-offset index (one entry every
//!   [`TEXT_INDEX_BLOCK`] samples) during a single streaming pass at open
//!   time; a `fill` seeks to the nearest indexed line and re-parses at most
//!   one block prefix. The index costs 8 bytes per `TEXT_INDEX_BLOCK`
//!   samples — ~8 KiB per million samples — so memory stays far below the
//!   trace itself.
//!
//! The standard library exposes no safe memory-mapping API and this workspace
//! builds offline with `#![forbid(unsafe_code)]`, so the on-disk reader uses
//! positional reads instead of an `mmap`; the memory profile is the same
//! (O(requested range), not O(trace)) and the access pattern of the
//! streaming classifier — forward chunks with a small overlap — is exactly
//! what the OS page cache prefetches well. On Unix the positional reads are
//! the safe [`std::os::unix::fs::FileExt`] `pread`-family calls, which take
//! `&File` and carry their own offset, so **concurrent fills never contend
//! on a lock** — one open file can feed every client of a serving process at
//! once. Platforms without positional reads fall back to a `Mutex<File>`
//! seek-then-read (the pre-service behaviour).

use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

use crate::{Result, Trace, TraceError, TraceMeta};

/// Text-format index granularity: one byte offset is recorded every this many
/// samples. A `fill` re-parses at most `TEXT_INDEX_BLOCK - 1` lines before
/// the requested start.
pub const TEXT_INDEX_BLOCK: usize = 1024;

/// Random access to the samples of a (possibly on-disk) trace.
///
/// The contract is deliberately tiny so that every scoring path of the
/// locator can be generic over it: a sample count and a bounds-checked range
/// copy. Implementations must return bit-identical samples for identical
/// ranges — the streaming classifier's parity guarantee rests on it.
///
/// `Sync` is a supertrait: `fill` already takes `&self` (file sources
/// serialise access internally), and the streaming classifier prefetches
/// the next chunk from a reader thread while the current one is scored, so
/// a source must tolerate shared cross-thread access.
pub trait TraceSource: Sync {
    /// Total number of samples in the source.
    fn len(&self) -> usize;

    /// Returns `true` if the source holds no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the samples `[start, start + out.len())` into `out`.
    ///
    /// Takes `&self` so chunks can be fetched from shared references (file
    /// sources serialise access internally).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::WindowOutOfBounds`] if the range does not fit in
    /// the source and [`TraceError::Io`] if the backing storage fails.
    fn fill(&self, start: usize, out: &mut [f32]) -> Result<()>;
}

impl TraceSource for Trace {
    fn len(&self) -> usize {
        Trace::len(self)
    }

    fn fill(&self, start: usize, out: &mut [f32]) -> Result<()> {
        out.copy_from_slice(self.slice(start, out.len())?);
        Ok(())
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &T {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn fill(&self, start: usize, out: &mut [f32]) -> Result<()> {
        (**self).fill(start, out)
    }
}

/// Which on-disk layout a [`FileTraceSource`] is reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileTraceFormat {
    /// Raw little-endian `f32` samples, no header.
    RawF32,
    /// The self-describing `SCATRC01` text format.
    Text,
}

#[derive(Debug)]
enum FileKind {
    RawF32,
    /// Sparse index: byte offset of sample `i * TEXT_INDEX_BLOCK`'s line.
    Text {
        index: Vec<u64>,
    },
}

/// A chunked on-disk trace reader with O(requested range) memory.
///
/// See the module docs for the supported formats and the indexing strategy.
///
/// # Example
///
/// ```rust
/// use sca_trace::{FileTraceSource, TraceSource};
///
/// let path = std::env::temp_dir().join(format!("sca_source_doc_{}.bin", std::process::id()));
/// let samples: Vec<f32> = (0..1000).map(|i| i as f32).collect();
/// let file = std::fs::File::create(&path).unwrap();
/// sca_trace::io::write_samples_binary(file, &samples).unwrap();
///
/// let source = FileTraceSource::open_raw_f32(&path).unwrap();
/// assert_eq!(source.len(), 1000);
/// let mut chunk = vec![0.0f32; 4];
/// source.fill(500, &mut chunk).unwrap();
/// assert_eq!(chunk, [500.0, 501.0, 502.0, 503.0]);
/// # std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct FileTraceSource {
    file: SharedFile,
    path: PathBuf,
    kind: FileKind,
    len: usize,
    meta: TraceMeta,
}

fn io_err(e: std::io::Error) -> TraceError {
    TraceError::Io(e.to_string())
}

/// A file shared by concurrent readers through positional reads.
///
/// On Unix this is a bare [`File`]: [`std::os::unix::fs::FileExt`]'s
/// `read_at`/`read_exact_at` take `&File` and an explicit offset, so fills
/// from many threads proceed in parallel without any serialisation (the
/// kernel's `pread` never touches the shared cursor). Elsewhere positional
/// reads are emulated by seek-then-read behind a mutex, restoring the old
/// one-fill-at-a-time behaviour.
#[derive(Debug)]
struct SharedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl SharedFile {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self { file: std::sync::Mutex::new(file) }
        }
    }

    /// Reads up to `buf.len()` bytes at absolute `offset`; returns the byte
    /// count (0 at EOF). Does not disturb any other reader's position.
    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        std::os::unix::fs::FileExt::read_at(&self.file, buf, offset)
    }

    #[cfg(not(unix))]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        use std::io::{Seek, SeekFrom};
        let mut file = self.file.lock().expect("trace source mutex poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read(buf)
    }

    /// Fills `buf` exactly from absolute `offset` (`UnexpectedEof` if the
    /// file ends first).
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
        }
        #[cfg(not(unix))]
        {
            let mut filled = 0usize;
            while filled < buf.len() {
                let n = self.read_at(&mut buf[filled..], offset + filled as u64)?;
                if n == 0 {
                    return Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof));
                }
                filled += n;
            }
            Ok(())
        }
    }
}

/// A forward [`Read`] view of a [`SharedFile`] starting at a byte offset,
/// built on positional reads so it carries its own cursor — many can be live
/// at once. Wrapping one in a [`BufReader`] gives the text path its buffered
/// line reads without ever locking the file on Unix.
struct SharedFileCursor<'a> {
    file: &'a SharedFile,
    pos: u64,
}

impl Read for SharedFileCursor<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.file.read_at(buf, self.pos)?;
        self.pos += n as u64;
        Ok(n)
    }
}

impl FileTraceSource {
    /// Opens a raw little-endian `f32` sample file (as written by
    /// [`crate::io::write_samples_binary`]).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be opened or its byte
    /// length is not a multiple of 4.
    pub fn open_raw_f32<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(io_err)?;
        let bytes = file.metadata().map_err(io_err)?.len();
        if bytes % 4 != 0 {
            return Err(TraceError::Io(format!(
                "raw f32 trace file byte length {bytes} is not a multiple of 4"
            )));
        }
        let len = usize::try_from(bytes / 4)
            .map_err(|_| TraceError::Io("trace file too large for this platform".into()))?;
        Ok(Self {
            file: SharedFile::new(file),
            path,
            kind: FileKind::RawF32,
            len,
            meta: TraceMeta::default(),
        })
    }

    /// Opens a `SCATRC01` text trace file (as written by
    /// [`crate::io::write_trace_text`]), building the sparse sample index in
    /// one streaming pass. The trace metadata from the header is retained
    /// and available through [`Self::meta`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be read, is malformed,
    /// or holds fewer samples than its header declares.
    pub fn open_text<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(io_err)?;
        let mut reader = CountingLines::new(BufReader::new(file));

        let magic = reader
            .next_line()
            .map_err(io_err)?
            .ok_or_else(|| TraceError::Io("empty trace file".into()))?;
        if magic.trim_end() != "SCATRC01" {
            return Err(TraceError::Io("bad magic header".into()));
        }

        let mut meta = TraceMeta::default();
        let mut declared: Option<usize> = None;
        while let Some(line) = reader.next_line().map_err(io_err)? {
            if let Some(n) = crate::io::parse_trace_header_line(line.trim_end(), &mut meta)? {
                declared = Some(n);
                break;
            }
        }
        let declared = declared.ok_or_else(|| TraceError::Io("missing samples header".into()))?;

        // One streaming pass over the sample lines: validate every value,
        // count them and record the byte offset of every block boundary. The
        // index is the only thing kept — O(len / TEXT_INDEX_BLOCK) memory.
        // `declared` is an untrusted header value: cap the up-front
        // reservation so a lying header cannot force a huge allocation (the
        // index still grows to the real block count).
        let mut index = Vec::with_capacity((declared / TEXT_INDEX_BLOCK + 1).min(64 * 1024));
        let mut count = 0usize;
        loop {
            let offset = reader.offset();
            let Some(line) = reader.next_line().map_err(io_err)? else { break };
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            line.parse::<f32>().map_err(|_| TraceError::Io("bad sample value".into()))?;
            if count.is_multiple_of(TEXT_INDEX_BLOCK) {
                index.push(offset);
            }
            count += 1;
        }
        if count != declared {
            return Err(TraceError::Io(format!("expected {declared} samples, found {count}")));
        }

        let file = reader.into_inner().into_inner();
        Ok(Self {
            file: SharedFile::new(file),
            path,
            kind: FileKind::Text { index },
            len: count,
            meta,
        })
    }

    /// Opens a trace file, sniffing the format from its first bytes: files
    /// starting with the `SCATRC01` magic are parsed as text, everything
    /// else as raw `f32` samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on open/format failures of the sniffed
    /// format.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut head = [0u8; 8];
        let mut file = File::open(path.as_ref()).map_err(io_err)?;
        let n = read_up_to(&mut file, &mut head).map_err(io_err)?;
        drop(file);
        if &head[..n] == b"SCATRC01" {
            Self::open_text(path)
        } else {
            Self::open_raw_f32(path)
        }
    }

    /// The detected on-disk format.
    pub fn format(&self) -> FileTraceFormat {
        match self.kind {
            FileKind::RawF32 => FileTraceFormat::RawF32,
            FileKind::Text { .. } => FileTraceFormat::Text,
        }
    }

    /// The path this source reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Trace metadata: the text header's metadata, or an empty record for
    /// raw sample files.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Reads the entire source into an in-memory [`Trace`] (O(trace) memory
    /// — the convenience escape hatch, not the streaming path).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the backing file fails.
    pub fn read_all(&self) -> Result<Trace> {
        let mut samples = vec![0.0f32; self.len];
        self.fill(0, &mut samples)?;
        Ok(Trace::with_meta(samples, self.meta.clone()))
    }

    fn fill_raw(&self, start: usize, out: &mut [f32]) -> Result<()> {
        // Bulk positional block reads, decoded a block at a time: this is
        // the hot path of every streamed locate, so no per-sample read
        // calls — and on Unix no lock either, so concurrent clients of one
        // file never serialise behind each other.
        let mut bytes = [0u8; 64 * 1024];
        let mut offset = start as u64 * 4;
        for block in out.chunks_mut(bytes.len() / 4) {
            let raw = &mut bytes[..block.len() * 4];
            self.file.read_exact_at(raw, offset).map_err(io_err)?;
            offset += raw.len() as u64;
            for (slot, quad) in block.iter_mut().zip(raw.chunks_exact(4)) {
                *slot = f32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]);
            }
        }
        Ok(())
    }

    fn fill_text(&self, index: &[u64], start: usize, out: &mut [f32]) -> Result<()> {
        if out.is_empty() {
            return Ok(());
        }
        let block = start / TEXT_INDEX_BLOCK;
        let offset = index[block];
        let mut reader =
            BufReader::with_capacity(64 * 1024, SharedFileCursor { file: &self.file, pos: offset });
        let mut skip = start - block * TEXT_INDEX_BLOCK;
        let mut produced = 0usize;
        let mut line = String::new();
        while produced < out.len() {
            line.clear();
            let n = reader.read_line(&mut line).map_err(io_err)?;
            if n == 0 {
                return Err(TraceError::Io("trace file shrank since it was indexed".into()));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            if skip > 0 {
                skip -= 1;
                continue;
            }
            out[produced] =
                trimmed.parse().map_err(|_| TraceError::Io("bad sample value".into()))?;
            produced += 1;
        }
        Ok(())
    }
}

impl TraceSource for FileTraceSource {
    fn len(&self) -> usize {
        self.len
    }

    fn fill(&self, start: usize, out: &mut [f32]) -> Result<()> {
        if start.checked_add(out.len()).is_none_or(|end| end > self.len) {
            return Err(TraceError::WindowOutOfBounds {
                start,
                len: out.len(),
                trace_len: self.len,
            });
        }
        match &self.kind {
            FileKind::RawF32 => self.fill_raw(start, out),
            FileKind::Text { index } => self.fill_text(index, start, out),
        }
    }
}

/// Reads as many bytes as available into `buf` (up to its length), tolerating
/// an early EOF; returns the byte count.
fn read_up_to<R: Read>(reader: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// A line reader that tracks the byte offset of the *next* line, which
/// `BufReader` alone does not expose without `Seek` round-trips.
struct CountingLines<R> {
    inner: R,
    offset: u64,
    line: String,
}

impl<R: BufRead> CountingLines<R> {
    fn new(inner: R) -> Self {
        Self { inner, offset: 0, line: String::new() }
    }

    /// Byte offset of the next unread line.
    fn offset(&self) -> u64 {
        self.offset
    }

    fn next_line(&mut self) -> std::io::Result<Option<&str>> {
        self.line.clear();
        let n = self.inner.read_line(&mut self.line)?;
        if n == 0 {
            return Ok(None);
        }
        self.offset += n as u64;
        Ok(Some(&self.line))
    }

    fn into_inner(self) -> R {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sca_trace_source_{name}_{}", std::process::id()))
    }

    fn ramp(len: usize) -> Vec<f32> {
        (0..len).map(|i| (i as f32) * 0.25 - 3.0).collect()
    }

    #[test]
    fn trace_is_a_source() {
        let trace = Trace::from_samples(ramp(32));
        assert_eq!(TraceSource::len(&trace), 32);
        let mut out = vec![0.0; 5];
        trace.fill(10, &mut out).unwrap();
        assert_eq!(out, trace.samples()[10..15]);
        assert!(trace.fill(30, &mut out).is_err());
    }

    #[test]
    fn source_is_usable_through_references() {
        let trace = Trace::from_samples(ramp(8));
        let by_ref: &dyn TraceSource = &trace;
        assert_eq!(by_ref.len(), 8);
        let mut out = vec![0.0; 3];
        by_ref.fill(2, &mut out).unwrap();
        assert_eq!(out, trace.samples()[2..5]);
    }

    #[test]
    fn raw_f32_source_random_access_is_bit_exact() {
        let samples = ramp(4096);
        let path = temp_path("raw");
        crate::io::write_samples_binary(File::create(&path).unwrap(), &samples).unwrap();
        let source = FileTraceSource::open_raw_f32(&path).unwrap();
        assert_eq!(source.len(), samples.len());
        assert_eq!(source.format(), FileTraceFormat::RawF32);
        for (start, len) in [(0usize, 1usize), (1, 17), (4000, 96), (4095, 1), (100, 0)] {
            let mut out = vec![0.0f32; len];
            source.fill(start, &mut out).unwrap();
            for (a, b) in out.iter().zip(samples[start..start + len].iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(source.fill(4096, &mut [0.0]).is_err());
        assert!(source.fill(usize::MAX, &mut [0.0]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_f32_source_rejects_ragged_file() {
        let path = temp_path("ragged");
        std::fs::write(&path, [0u8; 7]).unwrap();
        assert!(FileTraceSource::open_raw_f32(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_source_matches_full_reader_across_block_boundaries() {
        // Longer than one index block so fills cross block boundaries.
        let len = 2 * TEXT_INDEX_BLOCK + 321;
        let mut meta = TraceMeta::with_description("text source test");
        meta.co_starts = vec![5, 900];
        meta.co_ends = vec![40, 1000];
        let trace = Trace::with_meta(ramp(len), meta);
        let path = temp_path("text");
        crate::io::write_trace_text(&path, &trace).unwrap();

        let source = FileTraceSource::open_text(&path).unwrap();
        assert_eq!(source.len(), len);
        assert_eq!(source.format(), FileTraceFormat::Text);
        assert_eq!(source.meta().co_starts, trace.meta().co_starts);
        assert_eq!(source.meta().description, "text source test");

        for (start, out_len) in [
            (0usize, 7usize),
            (TEXT_INDEX_BLOCK - 3, 10), // crosses the first block edge
            (TEXT_INDEX_BLOCK, TEXT_INDEX_BLOCK), // exactly one block
            (len - 5, 5),
            (1234, 0),
        ] {
            let mut out = vec![0.0f32; out_len];
            source.fill(start, &mut out).unwrap();
            for (a, b) in out.iter().zip(trace.samples()[start..start + out_len].iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "start {start} len {out_len}");
            }
        }
        assert!(source.fill(len, &mut [0.0]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_source_rejects_lying_sample_count() {
        let trace = Trace::from_samples(ramp(10));
        let path = temp_path("lying");
        crate::io::write_trace_text(&path, &trace).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("samples 10", "samples 11")).unwrap();
        assert!(FileTraceSource::open_text(&path).is_err());
        // An absurd declared count must fail on the count mismatch, not
        // abort on an index preallocation sized by the hostile header.
        std::fs::write(&path, text.replace("samples 10", &format!("samples {}", u64::MAX)))
            .unwrap();
        assert!(FileTraceSource::open_text(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_sniffs_both_formats() {
        let trace = Trace::from_samples(ramp(64));
        let text_path = temp_path("sniff_text");
        crate::io::write_trace_text(&text_path, &trace).unwrap();
        assert_eq!(FileTraceSource::open(&text_path).unwrap().format(), FileTraceFormat::Text);
        let raw_path = temp_path("sniff_raw");
        crate::io::write_samples_binary(File::create(&raw_path).unwrap(), trace.samples()).unwrap();
        assert_eq!(FileTraceSource::open(&raw_path).unwrap().format(), FileTraceFormat::RawF32);
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&raw_path).ok();
    }

    #[test]
    fn read_all_roundtrips_both_formats() {
        let trace = Trace::from_samples(ramp(500));
        let path = temp_path("readall");
        crate::io::write_trace_text(&path, &trace).unwrap();
        let back = FileTraceSource::open(&path).unwrap().read_all().unwrap();
        assert_eq!(back.samples(), trace.samples());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(FileTraceSource::open_raw_f32("/nonexistent/missing.bin").is_err());
        assert!(FileTraceSource::open_text("/nonexistent/missing.trc").is_err());
    }

    #[test]
    fn concurrent_fills_from_shared_reference_agree() {
        let samples = ramp(8192);
        let path = temp_path("concurrent");
        crate::io::write_samples_binary(File::create(&path).unwrap(), &samples).unwrap();
        let source = FileTraceSource::open_raw_f32(&path).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let source = &source;
                let samples = &samples;
                scope.spawn(move || {
                    for i in 0..16 {
                        let start = (t * 1000 + i * 37) % 8000;
                        let mut out = vec![0.0f32; 64];
                        source.fill(start, &mut out).unwrap();
                        assert_eq!(out, samples[start..start + 64]);
                    }
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }
}
