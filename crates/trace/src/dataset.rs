//! Labelled window datasets, deterministic shuffling and train/val/test splits.
//!
//! The paper (Section IV-B) splits the collected windows into 80 % training,
//! 15 % validation, 5 % testing. [`SplitRatios`] encodes that split and
//! [`Dataset::split`] applies it after a deterministic shuffle so that
//! experiments are reproducible.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{Result, TraceError, Window, WindowLabel};

/// Fractions of the dataset assigned to training, validation and testing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitRatios {
    /// Fraction of windows used for training.
    pub train: f64,
    /// Fraction of windows used for validation (epoch selection).
    pub validation: f64,
    /// Fraction of windows used for the final test evaluation.
    pub test: f64,
}

impl SplitRatios {
    /// The 80/15/5 split used in the paper.
    pub fn paper() -> Self {
        Self { train: 0.80, validation: 0.15, test: 0.05 }
    }

    /// Creates a new split, validating that the fractions are non-negative
    /// and sum to 1 (within a small tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSplit`] otherwise.
    pub fn new(train: f64, validation: f64, test: f64) -> Result<Self> {
        if train < 0.0 || validation < 0.0 || test < 0.0 {
            return Err(TraceError::InvalidSplit("fractions must be non-negative".into()));
        }
        let sum = train + validation + test;
        if (sum - 1.0).abs() > 1e-6 {
            return Err(TraceError::InvalidSplit(format!("fractions must sum to 1, got {sum}")));
        }
        Ok(Self { train, validation, test })
    }
}

impl Default for SplitRatios {
    fn default() -> Self {
        Self::paper()
    }
}

/// A dataset of labelled windows, the input to CNN training.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    windows: Vec<Window>,
}

/// The result of splitting a [`Dataset`] into train/validation/test parts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatasetSplit {
    /// Training windows.
    pub train: Dataset,
    /// Validation windows.
    pub validation: Dataset,
    /// Test windows.
    pub test: Dataset,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from a vector of windows.
    pub fn from_windows(windows: Vec<Window>) -> Self {
        Self { windows }
    }

    /// Adds a window to the dataset.
    pub fn push(&mut self, window: Window) {
        self.windows.push(window);
    }

    /// Appends all windows of `other`.
    pub fn extend_from(&mut self, other: Dataset) {
        self.windows.extend(other.windows);
    }

    /// Number of windows in the dataset.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Returns `true` if the dataset holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Immutable access to the windows.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Consumes the dataset and returns the windows.
    pub fn into_windows(self) -> Vec<Window> {
        self.windows
    }

    /// Iterator over the windows.
    pub fn iter(&self) -> std::slice::Iter<'_, Window> {
        self.windows.iter()
    }

    /// Number of windows with the given label.
    pub fn count_label(&self, label: WindowLabel) -> usize {
        self.windows.iter().filter(|w| w.label() == label).count()
    }

    /// Fraction of windows labelled `CipherStart`. Returns 0.0 for an empty dataset.
    pub fn positive_fraction(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.count_label(WindowLabel::CipherStart) as f64 / self.windows.len() as f64
    }

    /// Length (in samples) of the windows, or `None` if the dataset is empty.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the dataset contains windows of mixed lengths.
    pub fn window_len(&self) -> Option<usize> {
        let first = self.windows.first()?.len();
        debug_assert!(
            self.windows.iter().all(|w| w.len() == first),
            "dataset contains windows of mixed lengths"
        );
        Some(first)
    }

    /// Shuffles the windows in place with a deterministic RNG seeded by `seed`.
    pub fn shuffle(&mut self, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.windows.shuffle(&mut rng);
    }

    /// Splits the dataset into train/validation/test parts after a
    /// deterministic shuffle.
    ///
    /// The split is stratified per label so that rare `CipherStart` windows
    /// appear in every part with (approximately) the requested proportions.
    pub fn split(mut self, ratios: SplitRatios, seed: u64) -> DatasetSplit {
        self.shuffle(seed);
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        for w in self.windows {
            match w.label() {
                WindowLabel::CipherStart => positives.push(w),
                WindowLabel::NotStart => negatives.push(w),
            }
        }
        let mut split = DatasetSplit::default();
        for group in [positives, negatives] {
            let n = group.len();
            let n_train = (n as f64 * ratios.train).round() as usize;
            let n_val = (n as f64 * ratios.validation).round() as usize;
            for (i, w) in group.into_iter().enumerate() {
                if i < n_train {
                    split.train.push(w);
                } else if i < n_train + n_val {
                    split.validation.push(w);
                } else {
                    split.test.push(w);
                }
            }
        }
        // Re-shuffle each part so labels are interleaved for mini-batching.
        split.train.shuffle(seed.wrapping_add(1));
        split.validation.shuffle(seed.wrapping_add(2));
        split.test.shuffle(seed.wrapping_add(3));
        split
    }
}

impl FromIterator<Window> for Dataset {
    fn from_iter<I: IntoIterator<Item = Window>>(iter: I) -> Self {
        Dataset::from_windows(iter.into_iter().collect())
    }
}

impl Extend<Window> for Dataset {
    fn extend<I: IntoIterator<Item = Window>>(&mut self, iter: I) {
        self.windows.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_dataset(n_pos: usize, n_neg: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n_pos {
            d.push(Window::new(vec![1.0; 8], WindowLabel::CipherStart, i));
        }
        for i in 0..n_neg {
            d.push(Window::new(vec![0.0; 8], WindowLabel::NotStart, i));
        }
        d
    }

    #[test]
    fn paper_ratios_sum_to_one() {
        let r = SplitRatios::paper();
        assert!((r.train + r.validation + r.test - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_ratios_rejected() {
        assert!(SplitRatios::new(0.5, 0.5, 0.5).is_err());
        assert!(SplitRatios::new(-0.1, 0.6, 0.5).is_err());
        assert!(SplitRatios::new(0.7, 0.2, 0.1).is_ok());
    }

    #[test]
    fn split_partitions_everything() {
        let d = make_dataset(100, 400);
        let split = d.split(SplitRatios::paper(), 42);
        assert_eq!(split.train.len() + split.validation.len() + split.test.len(), 500);
        // Stratification: positives present in train and validation.
        assert!(split.train.count_label(WindowLabel::CipherStart) >= 70);
        assert!(split.validation.count_label(WindowLabel::CipherStart) >= 10);
    }

    #[test]
    fn split_is_deterministic() {
        let a = make_dataset(10, 40).split(SplitRatios::paper(), 7);
        let b = make_dataset(10, 40).split(SplitRatios::paper(), 7);
        assert_eq!(a.train.len(), b.train.len());
        let origins_a: Vec<usize> = a.train.iter().map(|w| w.origin()).collect();
        let origins_b: Vec<usize> = b.train.iter().map(|w| w.origin()).collect();
        assert_eq!(origins_a, origins_b);
    }

    #[test]
    fn positive_fraction() {
        let d = make_dataset(25, 75);
        assert!((d.positive_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(Dataset::new().positive_fraction(), 0.0);
    }

    #[test]
    fn window_len_of_empty_is_none() {
        assert_eq!(Dataset::new().window_len(), None);
        assert_eq!(make_dataset(1, 1).window_len(), Some(8));
    }

    #[test]
    fn extend_and_collect() {
        let mut d: Dataset =
            (0..5).map(|i| Window::new(vec![0.0; 4], WindowLabel::NotStart, i)).collect();
        d.extend((0..3).map(|i| Window::new(vec![1.0; 4], WindowLabel::CipherStart, i)));
        assert_eq!(d.len(), 8);
        assert_eq!(d.count_label(WindowLabel::CipherStart), 3);
    }
}
