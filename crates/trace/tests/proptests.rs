//! Property-style tests for the trace substrate.
//!
//! The offline build environment has no `proptest`, so these properties are
//! exercised over a deterministic fan of pseudo-random cases drawn from the
//! workspace `rand` shim: same shrink-free spirit, fully reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sca_trace::{dsp, stats, Dataset, SplitRatios, Trace, Window, WindowLabel, WindowSlicer};

const CASES: u64 = 64;

fn rng_for(case: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9).wrapping_add(salt))
}

fn random_vec(rng: &mut StdRng, len: usize, low: f32, high: f32) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(low..high)).collect()
}

/// The thresholded square wave only ever contains +1 and -1.
#[test]
fn square_wave_is_binary() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 1);
        let len = rng.gen_range(0usize..200);
        let samples = random_vec(&mut rng, len, -10.0, 10.0);
        let th = rng.gen_range(-5.0f32..5.0);
        let wave = dsp::threshold_square_wave(&samples, th);
        assert!(wave.iter().all(|&v| v == 1.0 || v == -1.0));
        assert_eq!(wave.len(), samples.len());
    }
}

/// Median filtering a ±1 square wave keeps values in {-1, +1}.
#[test]
fn median_filter_preserves_binary_alphabet() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 2);
        let len = rng.gen_range(1usize..200);
        let wave: Vec<f32> = (0..len).map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 }).collect();
        let k = 2 * rng.gen_range(0usize..5) + 1;
        let filtered = dsp::median_filter(&wave, k).unwrap();
        assert_eq!(filtered.len(), wave.len());
        assert!(filtered.iter().all(|&v| v == 1.0 || v == -1.0));
    }
}

/// A constant signal is a fixed point of the median filter.
#[test]
fn median_filter_constant_fixed_point() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 3);
        let value = rng.gen_range(-3.0f32..3.0);
        let len = rng.gen_range(1usize..100);
        let k = 2 * rng.gen_range(0usize..6) + 1;
        let signal = vec![value; len];
        let filtered = dsp::median_filter(&signal, k).unwrap();
        assert_eq!(filtered, signal);
    }
}

/// Rising edges are strictly increasing indices and each one really is a
/// negative-to-non-negative transition.
#[test]
fn rising_edges_are_transitions() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 4);
        let len = rng.gen_range(0usize..300);
        let wave: Vec<f32> = (0..len).map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 }).collect();
        let edges = dsp::rising_edges(&wave);
        for pair in edges.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        for &e in &edges {
            assert!(e > 0);
            assert!(wave[e - 1] < 0.0 && wave[e] >= 0.0);
        }
    }
}

/// Every window produced by the slicer fits inside the trace and consecutive
/// start points differ by exactly the stride.
#[test]
fn slicer_windows_fit() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 5);
        let len = rng.gen_range(0usize..500);
        let n = rng.gen_range(1usize..64);
        let s = rng.gen_range(1usize..32);
        let slicer = WindowSlicer::new(n, s).unwrap();
        let starts: Vec<usize> = slicer.window_starts(len).collect();
        assert_eq!(starts.len(), slicer.window_count(len));
        for &st in &starts {
            assert!(st + n <= len);
        }
        for pair in starts.windows(2) {
            assert_eq!(pair[1] - pair[0], s);
        }
        // The next window after the last one would not fit.
        if let Some(&last) = starts.last() {
            assert!(last + s + n > len);
        }
    }
}

/// Pearson correlation is always in [-1, 1] and symmetric.
#[test]
fn pearson_bounded_and_symmetric() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 6);
        let n = rng.gen_range(2usize..64);
        let a = random_vec(&mut rng, n, -100.0, 100.0);
        let b = random_vec(&mut rng, n, -100.0, 100.0);
        let r = stats::pearson(&a, &b);
        assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&r));
        let r2 = stats::pearson(&b, &a);
        assert!((r - r2).abs() < 1e-4);
    }
}

/// Standardisation yields zero mean, and unit variance for non-constant input.
#[test]
fn standardize_properties() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 7);
        let len = rng.gen_range(2usize..128);
        let samples = random_vec(&mut rng, len, -50.0, 50.0);
        let mut v = samples.clone();
        dsp::standardize_in_place(&mut v);
        let mean = stats::mean(&v);
        assert!(mean.abs() < 1e-3);
        let distinct = samples.iter().any(|&x| (x - samples[0]).abs() > 1e-3);
        if distinct {
            let std = stats::std(&v);
            assert!((std - 1.0).abs() < 1e-2);
        }
    }
}

/// Quantisation never moves a sample by more than one LSB and is idempotent.
#[test]
fn quantize_error_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 8);
        let len = rng.gen_range(1usize..128);
        let samples = random_vec(&mut rng, len, -1.0, 1.0);
        let bits = rng.gen_range(4u32..14);
        let q = dsp::quantize(&samples, bits, -1.0, 1.0).unwrap();
        let lsb = 2.0 / ((1u32 << bits) - 1) as f32;
        for (orig, quant) in samples.iter().zip(q.iter()) {
            assert!((orig - quant).abs() <= lsb * 0.5 + 1e-6);
        }
        let q2 = dsp::quantize(&q, bits, -1.0, 1.0).unwrap();
        for (a, b) in q.iter().zip(q2.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}

/// Dataset split always partitions the dataset completely and preserves counts.
#[test]
fn dataset_split_partitions() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 9);
        let n_pos = rng.gen_range(0usize..50);
        let n_neg = rng.gen_range(0usize..200);
        let seed = rng.gen_range(0u64..=u64::MAX);
        let mut d = Dataset::new();
        for i in 0..n_pos {
            d.push(Window::new(vec![1.0; 4], WindowLabel::CipherStart, i));
        }
        for i in 0..n_neg {
            d.push(Window::new(vec![0.0; 4], WindowLabel::NotStart, i));
        }
        let split = d.split(SplitRatios::paper(), seed);
        assert_eq!(split.train.len() + split.validation.len() + split.test.len(), n_pos + n_neg);
        let pos_total = split.train.count_label(WindowLabel::CipherStart)
            + split.validation.count_label(WindowLabel::CipherStart)
            + split.test.count_label(WindowLabel::CipherStart);
        assert_eq!(pos_total, n_pos);
    }
}

/// Trace round trip through the binary sample format is lossless.
#[test]
fn binary_io_roundtrip() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 10);
        let len = rng.gen_range(0usize..256);
        let samples = random_vec(&mut rng, len, -1e6, 1e6);
        let mut buf = Vec::new();
        sca_trace::io::write_samples_binary(&mut buf, &samples).unwrap();
        let back = sca_trace::io::read_samples_binary(&buf[..]).unwrap();
        assert_eq!(back, samples);
    }
}

/// Trace::extract never loses samples and keeps markers within bounds.
#[test]
fn extract_markers_in_bounds() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 11);
        let len = rng.gen_range(1usize..200);
        let start_frac = rng.gen_range(0.0f64..1.0);
        let co_count = rng.gen_range(0usize..8);
        let co: Vec<usize> = (0..co_count).map(|_| rng.gen_range(0usize..200)).collect();
        let mut meta = sca_trace::TraceMeta::default();
        let mut starts: Vec<usize> = co.into_iter().filter(|&c| c < len).collect();
        starts.sort_unstable();
        starts.dedup();
        meta.co_ends = starts.iter().map(|s| (s + 10).min(len)).collect();
        meta.co_starts = starts;
        let t = Trace::with_meta((0..len).map(|x| x as f32).collect(), meta);
        let start = ((len as f64 * start_frac) as usize).min(len.saturating_sub(1));
        let sub_len = len - start;
        let sub = t.extract(start, sub_len).unwrap();
        assert_eq!(sub.len(), sub_len);
        for &s in &sub.meta().co_starts {
            assert!(s < sub_len);
        }
        for &e in &sub.meta().co_ends {
            assert!(e <= sub_len);
        }
    }
}
