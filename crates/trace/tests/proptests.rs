//! Property-based tests for the trace substrate.

use proptest::prelude::*;
use sca_trace::{dsp, stats, Dataset, SplitRatios, Trace, Window, WindowLabel, WindowSlicer};

proptest! {
    /// The thresholded square wave only ever contains +1 and -1.
    #[test]
    fn square_wave_is_binary(samples in prop::collection::vec(-10.0f32..10.0, 0..200), th in -5.0f32..5.0) {
        let wave = dsp::threshold_square_wave(&samples, th);
        prop_assert!(wave.iter().all(|&v| v == 1.0 || v == -1.0));
        prop_assert_eq!(wave.len(), samples.len());
    }

    /// Median filtering a ±1 square wave keeps values in {-1, +1} and is
    /// idempotent on constant signals.
    #[test]
    fn median_filter_preserves_binary_alphabet(
        samples in prop::collection::vec(prop::bool::ANY, 1..200),
        k in (0usize..5).prop_map(|x| 2 * x + 1),
    ) {
        let wave: Vec<f32> = samples.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let filtered = dsp::median_filter(&wave, k).unwrap();
        prop_assert_eq!(filtered.len(), wave.len());
        prop_assert!(filtered.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    /// A constant signal is a fixed point of the median filter.
    #[test]
    fn median_filter_constant_fixed_point(value in -3.0f32..3.0, len in 1usize..100, k in (0usize..6).prop_map(|x| 2 * x + 1)) {
        let signal = vec![value; len];
        let filtered = dsp::median_filter(&signal, k).unwrap();
        prop_assert_eq!(filtered, signal);
    }

    /// Rising edges are strictly increasing indices and each one really is a
    /// negative-to-non-negative transition.
    #[test]
    fn rising_edges_are_transitions(samples in prop::collection::vec(prop::bool::ANY, 0..300)) {
        let wave: Vec<f32> = samples.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let edges = dsp::rising_edges(&wave);
        for pair in edges.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        for &e in &edges {
            prop_assert!(e > 0);
            prop_assert!(wave[e - 1] < 0.0 && wave[e] >= 0.0);
        }
    }

    /// Every window produced by the slicer fits inside the trace and
    /// consecutive start points differ by exactly the stride.
    #[test]
    fn slicer_windows_fit(len in 0usize..500, n in 1usize..64, s in 1usize..32) {
        let slicer = WindowSlicer::new(n, s).unwrap();
        let starts: Vec<usize> = slicer.window_starts(len).collect();
        prop_assert_eq!(starts.len(), slicer.window_count(len));
        for &st in &starts {
            prop_assert!(st + n <= len);
        }
        for pair in starts.windows(2) {
            prop_assert_eq!(pair[1] - pair[0], s);
        }
        // The next window after the last one would not fit.
        if let Some(&last) = starts.last() {
            prop_assert!(last + s + n > len);
        }
    }

    /// Pearson correlation is always in [-1, 1] and symmetric.
    #[test]
    fn pearson_bounded_and_symmetric(
        a in prop::collection::vec(-100.0f32..100.0, 2..64),
        b in prop::collection::vec(-100.0f32..100.0, 2..64),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let r = stats::pearson(a, b);
        prop_assert!(r >= -1.0 - 1e-4 && r <= 1.0 + 1e-4);
        let r2 = stats::pearson(b, a);
        prop_assert!((r - r2).abs() < 1e-4);
    }

    /// Standardisation yields zero mean, and unit variance for non-constant input.
    #[test]
    fn standardize_properties(samples in prop::collection::vec(-50.0f32..50.0, 2..128)) {
        let mut v = samples.clone();
        dsp::standardize_in_place(&mut v);
        let mean = stats::mean(&v);
        prop_assert!(mean.abs() < 1e-3);
        let distinct = samples.iter().any(|&x| (x - samples[0]).abs() > 1e-3);
        if distinct {
            let std = stats::std(&v);
            prop_assert!((std - 1.0).abs() < 1e-2);
        }
    }

    /// Quantisation never moves a sample by more than one LSB and is idempotent.
    #[test]
    fn quantize_error_bounded(samples in prop::collection::vec(-1.0f32..1.0, 1..128), bits in 4u32..14) {
        let q = dsp::quantize(&samples, bits, -1.0, 1.0).unwrap();
        let lsb = 2.0 / ((1u32 << bits) - 1) as f32;
        for (orig, quant) in samples.iter().zip(q.iter()) {
            prop_assert!((orig - quant).abs() <= lsb * 0.5 + 1e-6);
        }
        let q2 = dsp::quantize(&q, bits, -1.0, 1.0).unwrap();
        for (a, b) in q.iter().zip(q2.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Dataset split always partitions the dataset completely and preserves counts.
    #[test]
    fn dataset_split_partitions(n_pos in 0usize..50, n_neg in 0usize..200, seed in any::<u64>()) {
        let mut d = Dataset::new();
        for i in 0..n_pos {
            d.push(Window::new(vec![1.0; 4], WindowLabel::CipherStart, i));
        }
        for i in 0..n_neg {
            d.push(Window::new(vec![0.0; 4], WindowLabel::NotStart, i));
        }
        let split = d.split(SplitRatios::paper(), seed);
        prop_assert_eq!(split.train.len() + split.validation.len() + split.test.len(), n_pos + n_neg);
        let pos_total = split.train.count_label(WindowLabel::CipherStart)
            + split.validation.count_label(WindowLabel::CipherStart)
            + split.test.count_label(WindowLabel::CipherStart);
        prop_assert_eq!(pos_total, n_pos);
    }

    /// Trace round trip through the binary sample format is lossless.
    #[test]
    fn binary_io_roundtrip(samples in prop::collection::vec(-1e6f32..1e6, 0..256)) {
        let mut buf = Vec::new();
        sca_trace::io::write_samples_binary(&mut buf, &samples).unwrap();
        let back = sca_trace::io::read_samples_binary(&buf[..]).unwrap();
        prop_assert_eq!(back, samples);
    }

    /// Trace::extract never loses samples and keeps markers within bounds.
    #[test]
    fn extract_markers_in_bounds(len in 1usize..200, start_frac in 0.0f64..1.0, co in prop::collection::vec(0usize..200, 0..8)) {
        let mut meta = sca_trace::TraceMeta::default();
        let mut starts: Vec<usize> = co.into_iter().filter(|&c| c < len).collect();
        starts.sort_unstable();
        starts.dedup();
        meta.co_ends = starts.iter().map(|s| (s + 10).min(len)).collect();
        meta.co_starts = starts;
        let t = Trace::with_meta((0..len).map(|x| x as f32).collect(), meta);
        let start = ((len as f64 * start_frac) as usize).min(len.saturating_sub(1));
        let sub_len = len - start;
        let sub = t.extract(start, sub_len).unwrap();
        prop_assert_eq!(sub.len(), sub_len);
        for &s in &sub.meta().co_starts {
            prop_assert!(s < sub_len);
        }
        for &e in &sub.meta().co_ends {
            prop_assert!(e <= sub_len);
        }
    }
}
