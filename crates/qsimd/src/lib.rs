//! # qsimd
//!
//! Arch-specific SIMD micro-kernels for the quantised fixed-point inference
//! chain. This is the **one** crate in the workspace allowed to contain
//! `unsafe` code, and every unsafe block is either a bounds-asserted pointer
//! load/store or a `core::arch` intrinsic whose target feature is statically
//! enabled (the workspace builds with `-C target-cpu=x86-64-v3`, see
//! `.cargo/config.toml`).
//!
//! ## Why explicit intrinsics
//!
//! The portable quantised GEMM in `tinynn::matmul` keeps its dot products as
//! plain scalar reduction loops and relies on LLVM to recognise the i16
//! multiply-add idiom. That works for *runtime-length* loops, but the
//! constant-depth bodies are fully unrolled and handed to the SLP vectoriser,
//! which lowers them to `vpmovsxwd` + `vpmulld` (8 MACs per slow 32-bit
//! multiply) instead of `vpmaddwd` (16 MACs per cheap 16-bit multiply-add) —
//! and even a perfect `vpmaddwd` inner-product kernel pays a horizontal
//! reduction per output element, which dominates at the network's small
//! fan-ins (K = 9…144). The documented negative result in `tinynn::matmul`
//! (re-tiling the scalar loops breaks the autovectoriser's pattern) is about
//! exactly that fragility; this crate sidesteps pattern-matching entirely.
//!
//! ## The packed kernel
//!
//! The AVX2 kernel uses the classic integer-GEMM layout of gemmlowp /
//! QNNPACK: weights are packed as i16 *pairs* `[⌈K/2⌉, m, 2]` so one
//! `vpmaddwd` against a broadcast pair of activation codes accumulates two
//! depth steps for eight output channels at once — accumulators live in
//! vector lanes indexed by *channel*, so there is **no horizontal reduction
//! at all**, output stores are contiguous position-major `i16` rows, and the
//! fixed-point requantisation epilogue (exact round-to-nearest-even, shared
//! per-layer shift, per-channel multipliers) vectorises four `i64` products
//! per instruction.
//!
//! Every kernel is bit-exact against the scalar reference: the integer sums
//! are associative, and the epilogue reimplements
//! `tinynn::quant::Requantizer::apply` operation for operation (verified by
//! the parity tests here and the property suite in `tinynn`).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

/// Depth bound under which an `i32` accumulator cannot overflow (mirrors
/// `tinynn::matmul::QK`): every i8-range × i16 product is below `2²²` and at
/// most 256 of them sum to below `2³¹`.
pub const QK: usize = 256;

/// Bias magnitude bound (`2³⁰`) under which `accumulator + bias` cannot wrap
/// an `i32`: the depth bound keeps `|acc| ≤ 127·32767·256 < 2³⁰`, so the sum
/// stays below `2³¹`. Callers clamp quantised biases to this bound at plan
/// build time, which makes wrapping, saturating and exact addition identical
/// — the property the SIMD epilogue's plain `vpaddd` relies on.
pub const BIAS_BOUND: i32 = 1 << 30;

/// Packs a row-major `[m, k]` i16 weight-code matrix into the pair-
/// interleaved `[⌈k/2⌉, m, 2]` layout of the packed GEMM:
/// `packed[kk2·2m + i·2 + p] = w[i·k + 2·kk2 + p]`, with the dangling
/// element of an odd `k` paired with an explicit zero. The layout is
/// arch-independent (it is built once at plan-build time), so non-AVX2
/// builds construct it too and simply never read it.
///
/// # Panics
///
/// Panics if `w.len() != m * k`.
pub fn pack_weight_pairs(packed: &mut Vec<i16>, w: &[i16], m: usize, k: usize) {
    assert_eq!(w.len(), m * k, "weights must be m*k = {m}x{k}");
    let k2 = k.div_ceil(2);
    packed.clear();
    packed.resize(k2 * m * 2, 0);
    for kk2 in 0..k2 {
        let row = &mut packed[kk2 * m * 2..(kk2 + 1) * m * 2];
        for i in 0..m {
            row[i * 2] = w[i * k + 2 * kk2];
            row[i * 2 + 1] = if 2 * kk2 + 1 < k { w[i * k + 2 * kk2 + 1] } else { 0 };
        }
    }
}

/// Whether the accelerated kernels are compiled in (x86-64 with AVX2
/// statically enabled). When `false`, [`gemm_requant_packed`] and
/// [`requantize_codes`] always return `false` and callers use their scalar
/// paths.
///
/// Under Miri this is `false` even when AVX2 is statically enabled: the
/// interpreter cannot execute the vendor intrinsics, so the dispatchers
/// decline and `cargo miri test` exercises exactly the packing and
/// scalar-fallback paths (the SIMD parity tests skip themselves through
/// this same gate).
pub const fn available() -> bool {
    cfg!(all(target_arch = "x86_64", target_feature = "avx2", not(miri)))
}

/// Fused integer convolution GEMM on the packed weight layout:
/// `c[j·m + i] = clamp(rne((dot_i(j) + bias[i]) · mults[i] / 2^shift), lo, hi)`
/// with `dot_i(j)` the exact i32 dot product of weight row `i` against the
/// sliding activation window `b[j·stride .. j·stride + k]`.
///
/// Returns `false` (computing nothing) when the shape is outside the
/// accelerated envelope — caller falls back to the scalar kernel. The
/// envelope: AVX2 compiled in, `m % 8 == 0`, `1 ≤ k ≤ `[`QK`],
/// `1 ≤ shift ≤ 62`, every `|bias[i]| ≤ `[`BIAS_BOUND`], and every
/// `0 ≤ mults[i] ≤ 2^(shift−1)` (grid ratio ≤ ½): with accumulators bounded
/// by `2³¹` the rounded result then provably fits an `i32`, which lets the
/// epilogue clamp on `i32` lanes after narrowing. Calibrated inter-layer
/// ratios are ≪ 1, so real layers always qualify.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
pub fn gemm_requant_packed(
    c: &mut [i16],
    packed: &[i16],
    bias: &[i32],
    mults: &[i32],
    shift: u8,
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    stride: usize,
    lo: i16,
    hi: i16,
) -> bool {
    if !available()
        || !m.is_multiple_of(8)
        || m == 0
        || k == 0
        || k > QK
        || shift == 0
        || shift > 62
    {
        return false;
    }
    let mult_bound = 1i64 << (shift - 1);
    if mults.iter().any(|&mv| mv < 0 || mv as i64 > mult_bound) {
        return false;
    }
    if bias.iter().any(|&v| v.abs() > BIAS_BOUND) {
        return false;
    }
    let k2 = k.div_ceil(2);
    assert_eq!(packed.len(), k2 * m * 2, "packed weights must be {k2}x{m}x2");
    assert_eq!(bias.len(), m, "one bias per output channel ({m})");
    assert_eq!(mults.len(), m, "one multiplier per output channel ({m})");
    assert_eq!(c.len(), n * m, "C must be n*m = {n}x{m} (position-major)");
    if n == 0 {
        return true;
    }
    assert!(
        b.len() >= (n - 1) * stride + k,
        "B must cover {n} windows of {k} codes at stride {stride}"
    );
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    {
        // SAFETY: AVX2 is statically enabled for this compilation (the cfg
        // above), and every slice bound the kernel relies on was asserted.
        unsafe {
            avx2::gemm_requant_packed(c, packed, bias, mults, shift, b, m, k, n, stride, lo, hi)
        };
        true
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
    {
        false
    }
}

/// Vectorised elementwise requantisation of existing `i16` codes onto
/// another grid (the residual-shortcut rescale):
/// `dst[i] = clamp(rne(src[i] · mult / 2^shift), lo, hi)`.
///
/// Returns `false` (computing nothing) when unaccelerated or outside the
/// envelope (`1 ≤ shift ≤ 62` and, for `shift < 16`,
/// `0 ≤ mult ≤ 2^(shift+15)`) — caller falls back to the scalar loop. The
/// mult bound keeps `|code · mult / 2^shift| ≤ 2³⁰` for i16 codes, the
/// epilogue's fits-in-i32 invariant; grid-to-grid rescales (ratios near 1,
/// shift ≈ 30) always qualify.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn requantize_codes(
    dst: &mut [i16],
    src: &[i16],
    mult: i32,
    shift: u8,
    lo: i16,
    hi: i16,
) -> bool {
    assert_eq!(dst.len(), src.len(), "one destination code per source code");
    if !available() || shift == 0 || shift > 62 || mult < 0 {
        return false;
    }
    if shift < 16 && mult as i64 > 1i64 << (shift + 15) {
        return false;
    }
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    {
        // SAFETY: AVX2 statically enabled; equal lengths asserted.
        unsafe { avx2::requantize_codes(dst, src, mult, shift, lo, hi) };
        true
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
    {
        false
    }
}

/// Scalar reference of the fixed-point map (`round_ties_even(acc · mult /
/// 2^shift)`, exact in integer arithmetic) — the same math as
/// `tinynn::quant::Requantizer::apply`, duplicated here so this crate's
/// parity tests are self-contained.
pub fn rne_apply(acc: i32, mult: i32, shift: u8) -> i64 {
    let prod = acc as i64 * mult as i64;
    if shift == 0 {
        return prod;
    }
    let floor = prod >> shift;
    let rem = prod & ((1i64 << shift) - 1);
    let half = 1i64 << (shift - 1);
    floor + (((rem > half) as i64) | ((rem == half) as i64 & floor))
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
mod avx2 {
    use core::arch::x86_64::*;

    /// Four-position × eight-channel accumulator tile: per packed depth step
    /// one 256-bit weight-column load feeds four `vpmaddwd`s against four
    /// broadcast activation pairs, so accumulators stay in channel lanes and
    /// no horizontal reduction ever happens.
    const JU: usize = 4;

    /// Per-layer requantisation constants, preloaded once per GEMM call.
    /// Requires `1 ≤ shift ≤ 62` (the dispatch gates guarantee it).
    struct Epilogue {
        shift: __m128i,
        fill: __m128i,
        round: __m256i,
        one: __m256i,
        lo32: __m256i,
        hi32: __m256i,
    }

    impl Epilogue {
        #[target_feature(enable = "avx2")]
        fn new(shift: u8, lo: i16, hi: i16) -> Self {
            debug_assert!((1..=62).contains(&shift));
            Self {
                shift: _mm_cvtsi32_si128(shift as i32),
                fill: _mm_cvtsi32_si128(64 - shift as i32),
                round: _mm256_set1_epi64x((1i64 << (shift - 1)) - 1),
                one: _mm256_set1_epi64x(1),
                lo32: _mm256_set1_epi32(lo as i32),
                hi32: _mm256_set1_epi32(hi as i32),
            }
        }

        /// `round_ties_even(prod / 2^shift)` on four `i64` lanes, exactly
        /// equal to [`crate::rne_apply`] — via the carry formulation
        /// `(prod + (half − 1) + bit_shift(prod)) ≫ shift` (arithmetic):
        /// adding `half − 1` rounds remainders *above* half up, and adding
        /// the floor's parity bit (bit `shift` of `prod`) promotes exactly
        /// the odd-floor ties. One add chain replaces the whole
        /// remainder/compare/select cascade. The biased sum cannot overflow:
        /// `|prod| < 2⁶²` and `half ≤ 2⁶¹`. The arithmetic shift itself is
        /// a logical shift OR-filled with the sign (AVX2 has no 64-bit
        /// arithmetic shift).
        #[target_feature(enable = "avx2")]
        fn rne4(&self, prod: __m256i) -> __m256i {
            let parity = _mm256_and_si256(_mm256_srl_epi64(prod, self.shift), self.one);
            let biased = _mm256_add_epi64(_mm256_add_epi64(prod, self.round), parity);
            let sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), biased);
            _mm256_or_si256(_mm256_srl_epi64(biased, self.shift), _mm256_sll_epi64(sign, self.fill))
        }

        /// Requantises one 8-channel accumulator vector (bias already added)
        /// into eight clamped `i16` codes stored contiguously at `dst`.
        ///
        /// `mult_lo`/`mult_hi` are the channel multipliers self-unpacked to
        /// dword pairs (`vpunpckldq/hdq(mv, mv)`), so their even dwords line
        /// up with the accumulators unpacked the same way — `vpmuldq` reads
        /// exactly those even dwords as signed i32 and produces the exact
        /// i64 products, with no sign-extension step at all.
        ///
        /// The dispatch gates guarantee every rounded result fits in `i32`
        /// (see the mult bounds on the public wrappers), so the clamp runs
        /// on `i32` lanes *after* narrowing — two min/max instead of four
        /// 64-bit compare+blend pairs.
        ///
        /// # Safety
        ///
        /// `dst` must be valid for a 16-byte unaligned write.
        #[target_feature(enable = "avx2")]
        unsafe fn store8(&self, acc: __m256i, mult_lo: __m256i, mult_hi: __m256i, dst: *mut i16) {
            let a_lo = _mm256_unpacklo_epi32(acc, acc); // channels 0,1 | 4,5
            let a_hi = _mm256_unpackhi_epi32(acc, acc); // channels 2,3 | 6,7
            let r0 = self.rne4(_mm256_mul_epi32(a_lo, mult_lo));
            let r1 = self.rne4(_mm256_mul_epi32(a_hi, mult_hi));
            // Gather the (i32-valid) low dwords back into channel order:
            // per 128-bit lane, dwords 0,2 of r0 then 0,2 of r1.
            let v8 = _mm256_castps_si256(_mm256_shuffle_ps::<0b10_00_10_00>(
                _mm256_castsi256_ps(r0),
                _mm256_castsi256_ps(r1),
            ));
            let v8 = _mm256_min_epi32(_mm256_max_epi32(v8, self.lo32), self.hi32);
            // Pack to i16 (saturation is a no-op post-clamp) and fix the
            // 128-bit lane interleave.
            let w = _mm256_packs_epi32(v8, v8);
            let out = _mm256_permute4x64_epi64::<0b00_00_10_00>(w);
            // SAFETY: caller guarantees a valid 16-byte destination.
            unsafe { _mm_storeu_si128(dst as *mut __m128i, _mm256_castsi256_si128(out)) };
        }
    }

    /// Broadcasts the activation pair `(b[off], b[off+1])` into every i32
    /// lane (one `vpbroadcastd` load).
    ///
    /// # Safety
    ///
    /// `off + 2 <= b.len()`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bcast_pair(b: &[i16], off: usize) -> __m256i {
        debug_assert!(off + 2 <= b.len());
        // SAFETY: caller guarantees 4 readable bytes at `off`.
        let pair = unsafe { core::ptr::read_unaligned(b.as_ptr().add(off) as *const i32) };
        _mm256_set1_epi32(pair)
    }

    /// Broadcasts the dangling last code of an odd depth as the pair
    /// `(b[off], 0)` — composed in scalar registers, no out-of-window read.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn bcast_half(code: i16) -> __m256i {
        _mm256_set1_epi32(code as u16 as u32 as i32)
    }

    /// The packed-layout requantising GEMM body. See the crate docs for the
    /// tile shape.
    ///
    /// # Safety
    ///
    /// Caller must have asserted: `packed.len() == ⌈k/2⌉·m·2`,
    /// `bias.len() == mults.len() == m`, `c.len() == n·m`,
    /// `b.len() >= (n-1)·stride + k`, `m % 8 == 0`, `k ≥ 1`, `shift ≤ 62`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_requant_packed(
        c: &mut [i16],
        packed: &[i16],
        bias: &[i32],
        mults: &[i32],
        shift: u8,
        b: &[i16],
        m: usize,
        k: usize,
        n: usize,
        stride: usize,
        lo: i16,
        hi: i16,
    ) {
        let epi = Epilogue::new(shift, lo, hi);
        let k2_full = k / 2;
        let odd = k % 2 == 1;
        let row = 2 * m;
        if m.is_multiple_of(16) {
            // Two-block variant: each broadcast activation pair feeds
            // sixteen channels' `vpmaddwd`s, halving the broadcast traffic
            // per MAC relative to running the 8-channel loop twice.
            for mb in (0..m).step_by(16) {
                // SAFETY: mb + 16 <= m, so these 8-element reads are in
                // bounds.
                let (bias0, mv0, bias1, mv1) = unsafe {
                    (
                        _mm256_loadu_si256(bias.as_ptr().add(mb) as *const __m256i),
                        _mm256_loadu_si256(mults.as_ptr().add(mb) as *const __m256i),
                        _mm256_loadu_si256(bias.as_ptr().add(mb + 8) as *const __m256i),
                        _mm256_loadu_si256(mults.as_ptr().add(mb + 8) as *const __m256i),
                    )
                };
                let (ml0, mh0) = (_mm256_unpacklo_epi32(mv0, mv0), _mm256_unpackhi_epi32(mv0, mv0));
                let (ml1, mh1) = (_mm256_unpacklo_epi32(mv1, mv1), _mm256_unpackhi_epi32(mv1, mv1));
                let col0 = packed.as_ptr().wrapping_add(2 * mb);
                let col1 = packed.as_ptr().wrapping_add(2 * mb + 16);
                let mut j = 0;
                while j + JU <= n {
                    let mut acc0 = [_mm256_setzero_si256(); JU];
                    let mut acc1 = [_mm256_setzero_si256(); JU];
                    let offs = [j * stride, (j + 1) * stride, (j + 2) * stride, (j + 3) * stride];
                    for kk2 in 0..k2_full {
                        // SAFETY: kk2·row + 2·mb + 32 ≤ k2·m·2 = packed.len().
                        let (a0, a1) = unsafe {
                            (
                                _mm256_loadu_si256(col0.add(kk2 * row) as *const __m256i),
                                _mm256_loadu_si256(col1.add(kk2 * row) as *const __m256i),
                            )
                        };
                        for t in 0..JU {
                            // SAFETY: offs[t] + 2·kk2 + 2 ≤ offs[t] + k ≤ b.len().
                            let bv = unsafe { bcast_pair(b, offs[t] + 2 * kk2) };
                            acc0[t] = _mm256_add_epi32(acc0[t], _mm256_madd_epi16(a0, bv));
                            acc1[t] = _mm256_add_epi32(acc1[t], _mm256_madd_epi16(a1, bv));
                        }
                    }
                    if odd {
                        // SAFETY: the last packed row exists (k ≥ 1).
                        let (a0, a1) = unsafe {
                            (
                                _mm256_loadu_si256(col0.add(k2_full * row) as *const __m256i),
                                _mm256_loadu_si256(col1.add(k2_full * row) as *const __m256i),
                            )
                        };
                        for t in 0..JU {
                            let bv = bcast_half(b[offs[t] + k - 1]);
                            acc0[t] = _mm256_add_epi32(acc0[t], _mm256_madd_epi16(a0, bv));
                            acc1[t] = _mm256_add_epi32(acc1[t], _mm256_madd_epi16(a1, bv));
                        }
                    }
                    for t in 0..JU {
                        // SAFETY: (j+t)·m + mb + 16 ≤ n·m = c.len().
                        unsafe {
                            let dst = c.as_mut_ptr().add((j + t) * m + mb);
                            epi.store8(_mm256_add_epi32(acc0[t], bias0), ml0, mh0, dst);
                            epi.store8(_mm256_add_epi32(acc1[t], bias1), ml1, mh1, dst.add(8));
                        }
                    }
                    j += JU;
                }
                while j < n {
                    let mut s0 = _mm256_setzero_si256();
                    let mut s1 = _mm256_setzero_si256();
                    let off = j * stride;
                    for kk2 in 0..k2_full {
                        // SAFETY: same bounds as the unrolled loop.
                        let (a0, a1, bv) = unsafe {
                            (
                                _mm256_loadu_si256(col0.add(kk2 * row) as *const __m256i),
                                _mm256_loadu_si256(col1.add(kk2 * row) as *const __m256i),
                                bcast_pair(b, off + 2 * kk2),
                            )
                        };
                        s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(a0, bv));
                        s1 = _mm256_add_epi32(s1, _mm256_madd_epi16(a1, bv));
                    }
                    if odd {
                        // SAFETY: the last packed row exists.
                        let (a0, a1) = unsafe {
                            (
                                _mm256_loadu_si256(col0.add(k2_full * row) as *const __m256i),
                                _mm256_loadu_si256(col1.add(k2_full * row) as *const __m256i),
                            )
                        };
                        let bv = bcast_half(b[off + k - 1]);
                        s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(a0, bv));
                        s1 = _mm256_add_epi32(s1, _mm256_madd_epi16(a1, bv));
                    }
                    // SAFETY: j·m + mb + 16 ≤ c.len().
                    unsafe {
                        let dst = c.as_mut_ptr().add(j * m + mb);
                        epi.store8(_mm256_add_epi32(s0, bias0), ml0, mh0, dst);
                        epi.store8(_mm256_add_epi32(s1, bias1), ml1, mh1, dst.add(8));
                    }
                    j += 1;
                }
            }
            return;
        }
        for mb in (0..m).step_by(8) {
            // SAFETY: mb + 8 <= m, so these 8-element reads are in bounds.
            let (bias_v, mv) = unsafe {
                (
                    _mm256_loadu_si256(bias.as_ptr().add(mb) as *const __m256i),
                    _mm256_loadu_si256(mults.as_ptr().add(mb) as *const __m256i),
                )
            };
            // Self-unpacked dword pairs whose even dwords line up with the
            // accumulators unpacked the same way in `store8`.
            let mult_lo = _mm256_unpacklo_epi32(mv, mv);
            let mult_hi = _mm256_unpackhi_epi32(mv, mv);
            let col0 = packed.as_ptr().wrapping_add(2 * mb);
            let mut j = 0;
            while j + JU <= n {
                let mut acc = [_mm256_setzero_si256(); JU];
                let offs = [j * stride, (j + 1) * stride, (j + 2) * stride, (j + 3) * stride];
                for kk2 in 0..k2_full {
                    // SAFETY: kk2·row + 2·mb + 16 ≤ k2·m·2 = packed.len().
                    let a_col =
                        unsafe { _mm256_loadu_si256(col0.add(kk2 * row) as *const __m256i) };
                    for (t, a) in acc.iter_mut().enumerate() {
                        // SAFETY: offs[t] + 2·kk2 + 2 ≤ offs[t] + k ≤ b.len().
                        let bv = unsafe { bcast_pair(b, offs[t] + 2 * kk2) };
                        *a = _mm256_add_epi32(*a, _mm256_madd_epi16(a_col, bv));
                    }
                }
                if odd {
                    // SAFETY: the last packed row exists (k ≥ 1).
                    let a_col =
                        unsafe { _mm256_loadu_si256(col0.add(k2_full * row) as *const __m256i) };
                    for (t, a) in acc.iter_mut().enumerate() {
                        let bv = bcast_half(b[offs[t] + k - 1]);
                        *a = _mm256_add_epi32(*a, _mm256_madd_epi16(a_col, bv));
                    }
                }
                for (t, a) in acc.iter().enumerate() {
                    let with_bias = _mm256_add_epi32(*a, bias_v);
                    // SAFETY: (j+t)·m + mb + 8 ≤ n·m = c.len().
                    unsafe {
                        epi.store8(
                            with_bias,
                            mult_lo,
                            mult_hi,
                            c.as_mut_ptr().add((j + t) * m + mb),
                        )
                    };
                }
                j += JU;
            }
            while j < n {
                let mut a0 = _mm256_setzero_si256();
                let off = j * stride;
                for kk2 in 0..k2_full {
                    // SAFETY: same bounds as the unrolled loop.
                    let a_col =
                        unsafe { _mm256_loadu_si256(col0.add(kk2 * row) as *const __m256i) };
                    // SAFETY: off + 2·kk2 + 1 < b.len() for every full pair.
                    let bv = unsafe { bcast_pair(b, off + 2 * kk2) };
                    a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(a_col, bv));
                }
                if odd {
                    // SAFETY: the last packed row exists.
                    let a_col =
                        unsafe { _mm256_loadu_si256(col0.add(k2_full * row) as *const __m256i) };
                    a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(a_col, bcast_half(b[off + k - 1])));
                }
                let with_bias = _mm256_add_epi32(a0, bias_v);
                // SAFETY: j·m + mb + 8 ≤ c.len().
                unsafe { epi.store8(with_bias, mult_lo, mult_hi, c.as_mut_ptr().add(j * m + mb)) };
                j += 1;
            }
        }
    }

    /// Vectorised elementwise requantisation (uniform multiplier): widen
    /// 8 codes to two i64×4 vectors, apply the fixed-point map, clamp, pack
    /// and store. Tail handled scalar.
    ///
    /// # Safety
    ///
    /// `dst.len() == src.len()` must have been asserted by the caller.
    #[target_feature(enable = "avx2")]
    pub unsafe fn requantize_codes(
        dst: &mut [i16],
        src: &[i16],
        mult: i32,
        shift: u8,
        lo: i16,
        hi: i16,
    ) {
        let epi = Epilogue::new(shift, lo, hi);
        // A broadcast i32 has the multiplier in every (even) dword, which is
        // all `store8`'s `vpmuldq` reads.
        let mult_v = _mm256_set1_epi32(mult);
        let n8 = src.len() / 8 * 8;
        for i0 in (0..n8).step_by(8) {
            // SAFETY: i0 + 8 <= src.len() == dst.len().
            let codes = unsafe { _mm_loadu_si128(src.as_ptr().add(i0) as *const __m128i) };
            let wide = _mm256_cvtepi16_epi32(codes);
            // SAFETY: i0 + 8 <= dst.len(), so store8's 8 lanes stay in bounds.
            unsafe { epi.store8(wide, mult_v, mult_v, dst.as_mut_ptr().add(i0)) };
        }
        for i in n8..src.len() {
            let r = crate::rne_apply(src[i] as i32, mult, shift);
            dst[i] = r.clamp(lo as i64, hi as i64) as i16;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for test data.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn i16_in(&mut self, bound: i32) -> i16 {
            ((self.next() % (2 * bound as u64 + 1)) as i32 - bound) as i16
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn scalar_reference(
        w: &[i16],
        bias: &[i32],
        mults: &[i32],
        shift: u8,
        b: &[i16],
        m: usize,
        k: usize,
        n: usize,
        stride: usize,
        lo: i16,
        hi: i16,
    ) -> Vec<i16> {
        let mut c = vec![0i16; n * m];
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0i32;
                for t in 0..k {
                    acc += w[i * k + t] as i32 * b[j * stride + t] as i32;
                }
                acc += bias[i];
                let r = rne_apply(acc, mults[i], shift);
                c[j * m + i] = r.clamp(lo as i64, hi as i64) as i16;
            }
        }
        c
    }

    #[test]
    fn packing_interleaves_pairs_and_zero_pads_odd_depths() {
        let w: Vec<i16> = (0..2 * 5).map(|v| v as i16).collect(); // m=2, k=5
        let mut packed = Vec::new();
        pack_weight_pairs(&mut packed, &w, 2, 5);
        // k2 = 3 rows of [m=2 × pair].
        assert_eq!(
            packed,
            vec![
                0, 1, 5, 6, // kk2 = 0: rows 0 and 1, codes 0..2
                2, 3, 7, 8, // kk2 = 1: codes 2..4
                4, 0, 9, 0, // kk2 = 2: dangling code 4 padded with 0
            ]
        );
    }

    #[test]
    fn accelerated_gemm_matches_the_scalar_reference_exactly() {
        if !available() {
            return;
        }
        let mut rng = Rng(0xC0FFEE);
        for &(m, k, n, stride) in &[
            (8usize, 9usize, 37usize, 1usize), // stem-like odd depth
            (8, 72, 31, 8),
            (16, 72, 29, 8),
            (16, 144, 33, 16),
            (16, 8, 30, 8),
            (8, 1, 17, 1),    // degenerate depth
            (24, 256, 9, 24), // full-depth panel, 3 single blocks (24 % 16 ≠ 0)
            (32, 64, 11, 32), // two double-block passes
        ] {
            let w: Vec<i16> = (0..m * k).map(|_| rng.i16_in(127)).collect();
            let blen = (n - 1) * stride + k + 3;
            let b: Vec<i16> = (0..blen).map(|_| rng.i16_in(32767)).collect();
            let bias: Vec<i32> =
                (0..m).map(|_| (rng.next() % (1 << 22)) as i32 - (1 << 21)).collect();
            for shift in [1u8, 31, 40, 62] {
                // Multipliers inside the dispatch bound (ratio ≤ ½),
                // spanning tiny to maximal.
                let bound = (1u64 << (shift - 1)).min(1 << 30);
                let mults: Vec<i32> = (0..m).map(|_| (rng.next() % (bound + 1)) as i32).collect();
                let (lo, hi) = if shift % 2 == 0 { (0i16, 32767i16) } else { (-32767, 32767) };
                let mut packed = Vec::new();
                pack_weight_pairs(&mut packed, &w, m, k);
                let mut c = vec![0i16; n * m];
                assert!(gemm_requant_packed(
                    &mut c, &packed, &bias, &mults, shift, &b, m, k, n, stride, lo, hi
                ));
                let expect =
                    scalar_reference(&w, &bias, &mults, shift, &b, m, k, n, stride, lo, hi);
                assert_eq!(c, expect, "m={m} k={k} n={n} stride={stride} shift={shift}");
            }
        }
    }

    #[test]
    fn out_of_envelope_shapes_decline_instead_of_computing() {
        let w = vec![0i16; 6 * 4];
        let mut packed = Vec::new();
        pack_weight_pairs(&mut packed, &w, 6, 4);
        let mut c = vec![0i16; 6 * 3];
        // m = 6 is not a multiple of 8 → scalar fallback.
        assert!(!gemm_requant_packed(
            &mut c,
            &packed,
            &[0; 6],
            &[1 << 30; 6],
            31,
            &[0i16; 32],
            6,
            4,
            3,
            4,
            0,
            32767
        ));
        // Oversized bias violates the wrap-free addition invariant.
        let w8 = vec![0i16; 8 * 4];
        let mut packed8 = Vec::new();
        pack_weight_pairs(&mut packed8, &w8, 8, 4);
        let mut c8 = vec![0i16; 8 * 3];
        assert!(!gemm_requant_packed(
            &mut c8,
            &packed8,
            &[BIAS_BOUND + 1; 8],
            &[1 << 30; 8],
            31,
            &[0i16; 32],
            8,
            4,
            3,
            4,
            0,
            32767
        ));
        // shift 0 and a multiplier beyond 2^(shift−1) (ratio > ½) break the
        // fits-in-i32 invariant of the vector clamp → scalar fallback.
        assert!(!gemm_requant_packed(
            &mut c8,
            &packed8,
            &[0; 8],
            &[1; 8],
            0,
            &[0i16; 32],
            8,
            4,
            3,
            4,
            0,
            32767
        ));
        assert!(!gemm_requant_packed(
            &mut c8,
            &packed8,
            &[0; 8],
            &[(1 << 30) + 1; 8],
            31,
            &[0i16; 32],
            8,
            4,
            3,
            4,
            0,
            32767
        ));
    }

    #[test]
    fn elementwise_requantise_matches_the_scalar_map() {
        if !available() {
            return;
        }
        let mut rng = Rng(0xBADC0DE);
        let src: Vec<i16> = (0..1003).map(|_| rng.i16_in(32767)).collect();
        for &(mult, shift) in
            &[(1_500_000_000i32, 31u8), (1 << 30, 62), (123_456_789, 17), (7, 1), (65_536, 14)]
        {
            let mut dst = vec![0i16; src.len()];
            assert!(requantize_codes(&mut dst, &src, mult, shift, -32767, 32767));
            for (i, (&d, &s)) in dst.iter().zip(src.iter()).enumerate() {
                let expect = rne_apply(s as i32, mult, shift).clamp(-32767, 32767) as i16;
                assert_eq!(d, expect, "index {i} code {s} mult {mult} shift {shift}");
            }
        }
        // shift 0 (no rounding step) and low-shift multipliers beyond
        // 2^(shift+15) fall outside the fits-in-i32 envelope → declined.
        let mut dst = vec![0i16; src.len()];
        assert!(!requantize_codes(&mut dst, &src, 7, 0, -32767, 32767));
        assert!(!requantize_codes(&mut dst, &src, (1 << 29) + 1, 14, -32767, 32767));
    }

    #[test]
    fn rne_rounding_in_the_kernel_breaks_ties_to_even() {
        if !available() {
            return;
        }
        // acc · mult = prod; shift 2 → /4. prod 6 → 1.5 → 2 (even); prod
        // 10 → 2.5 → 2 (even); prod −6 → −1.5 → −2 (even).
        let src = [6i16, 10, -6, 7, -10];
        let mut dst = [0i16; 5];
        assert!(requantize_codes(&mut dst, &src, 1, 2, -32767, 32767));
        assert_eq!(dst, [2, 2, -2, 2, -2]);
    }
}
