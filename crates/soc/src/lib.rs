//! # soc-sim
//!
//! Instruction-level power-trace simulator standing in for the paper's
//! measurement platform (a NewAE CW305 FPGA hosting a 32-bit RISC-V SoC at
//! 50 MHz, probed by a Picoscope 5244d at 125 Ms/s, 12-bit).
//!
//! The simulation chain is:
//!
//! 1. a cipher from [`sca_ciphers`] (or a [`noise_apps`] workload) runs in
//!    *recording* mode, producing a stream of micro-operations;
//! 2. the [`random_delay::RandomDelay`] countermeasure inserts 0..=R dummy
//!    instructions between every pair of recorded operations, driven by a
//!    simulated [`trng::Trng`] (R = 2 for RD-2, R = 4 for RD-4, 0 = disabled);
//! 3. the [`power::PowerModel`] converts each operation into one or more clock
//!    cycles of instantaneous power: an operation-class baseline plus a
//!    Hamming-weight-proportional data-dependent component;
//! 4. the [`oscilloscope::Oscilloscope`] resamples cycles to ADC samples
//!    (2.5 samples per cycle by default, the 125 MHz / 50 MHz ratio of the
//!    paper), applies an analog low-pass, adds Gaussian noise and quantises to
//!    12 bits;
//! 5. the [`simulator::SocSimulator`] composes cipher executions and noise
//!    applications into long traces with ground-truth CO markers
//!    ([`scenario::Scenario`]), exactly the traces the locator is evaluated on.
//!
//! The ground truth (CO start/end samples, plaintexts, ciphertexts) is carried
//! in [`scenario::CoRecord`]s and in the trace metadata; it is used only for
//! evaluation and CPA verification, never by the locator itself.
//!
//! ## Example
//!
//! ```rust
//! use soc_sim::{SocSimulator, SocSimulatorConfig, Scenario};
//! use sca_ciphers::CipherId;
//!
//! let mut sim = SocSimulator::new(SocSimulatorConfig::rd(2), 42);
//! let scenario = Scenario::consecutive(CipherId::Aes128, 4);
//! let result = sim.run_scenario(&scenario);
//! assert_eq!(result.cos.len(), 4);
//! assert!(result.trace.len() > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod noise_apps;
pub mod oscilloscope;
pub mod power;
pub mod random_delay;
pub mod scenario;
pub mod simulator;
pub mod trng;

pub use oscilloscope::{Oscilloscope, OscilloscopeConfig};
pub use power::{PowerModel, PowerModelConfig};
pub use random_delay::{RandomDelay, RandomDelayConfig};
pub use scenario::{CoRecord, Scenario, ScenarioResult};
pub use simulator::{SocSimulator, SocSimulatorConfig};
pub use trng::Trng;
