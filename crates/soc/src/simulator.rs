//! The end-to-end SoC simulator: composes ciphers, noise applications, the
//! random-delay countermeasure, the power model and the oscilloscope into
//! side-channel traces with ground truth.

use sca_ciphers::{cipher_by_id, CipherId, ExecutionTrace, OpKind, RecordingCipher};
use sca_trace::{Trace, TraceMeta};
use serde::{Deserialize, Serialize};

use crate::noise_apps;
use crate::oscilloscope::{Oscilloscope, OscilloscopeConfig};
use crate::power::{PowerModel, PowerModelConfig};
use crate::random_delay::{RandomDelay, RandomDelayConfig};
use crate::scenario::{CoRecord, Scenario, ScenarioResult};
use crate::trng::Trng;

/// Configuration of the [`SocSimulator`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SocSimulatorConfig {
    /// Power model parameters.
    pub power: PowerModelConfig,
    /// Oscilloscope / ADC parameters.
    pub oscilloscope: OscilloscopeConfig,
    /// Random-delay countermeasure configuration.
    pub random_delay: RandomDelayConfig,
    /// Number of NOP instructions prepended to every *training* cipher trace
    /// (the paper's stand-in for the missing trigger infrastructure; inference
    /// traces never contain this preamble).
    pub nop_preamble: usize,
}

impl SocSimulatorConfig {
    /// Configuration with the random-delay countermeasure capped at
    /// `max_insertions` dummy instructions (`0` disables it, `2` = RD-2,
    /// `4` = RD-4) and default settings everywhere else.
    pub fn rd(max_insertions: usize) -> Self {
        Self {
            random_delay: RandomDelayConfig { max_insertions },
            nop_preamble: 64,
            ..Self::default()
        }
    }
}

/// Instruction-level power-trace simulator of the target SoC.
#[derive(Debug, Clone)]
pub struct SocSimulator {
    config: SocSimulatorConfig,
    power_model: PowerModel,
    oscilloscope: Oscilloscope,
    random_delay: RandomDelay,
    trng: Trng,
}

impl SocSimulator {
    /// Creates a simulator from a configuration and a reproducibility seed.
    pub fn new(config: SocSimulatorConfig, seed: u64) -> Self {
        let power_model = PowerModel::new(config.power.clone());
        let oscilloscope = Oscilloscope::new(config.oscilloscope.clone());
        let random_delay = RandomDelay::new(config.random_delay);
        Self { config, power_model, oscilloscope, random_delay, trng: Trng::new(seed) }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SocSimulatorConfig {
        &self.config
    }

    /// Access to the underlying TRNG (e.g. to draw random plaintexts that are
    /// reproducible together with the simulation).
    pub fn trng_mut(&mut self) -> &mut Trng {
        &mut self.trng
    }

    /// Digitises an operation stream (already including any random delay)
    /// into ADC samples.
    fn digitize(&mut self, ops: &ExecutionTrace) -> Vec<f32> {
        let cycle_power = self.power_model.trace_power(ops);
        self.oscilloscope.capture(&cycle_power, &mut self.trng)
    }

    /// Applies the random-delay countermeasure to an operation stream.
    fn protect(&mut self, ops: &ExecutionTrace) -> ExecutionTrace {
        self.random_delay.apply(ops, &mut self.trng)
    }

    /// Captures a *training* cipher trace: a NOP preamble (the trigger
    /// substitute) followed by a single CO, both under the active random
    /// delay. The returned trace's metadata records where the CO begins.
    ///
    /// Returns the trace together with the plaintext and ciphertext of the CO.
    pub fn capture_cipher_trace(
        &mut self,
        cipher: &dyn RecordingCipher,
        key: &[u8; 16],
        plaintext: &[u8; 16],
    ) -> (Trace, [u8; 16]) {
        // NOP preamble (protected by the countermeasure like everything else).
        let mut preamble = ExecutionTrace::new();
        preamble.nops(self.config.nop_preamble);
        let preamble = self.protect(&preamble);

        let mut co_ops = ExecutionTrace::new();
        let ct = cipher.encrypt_recorded(key, plaintext, &mut co_ops);
        let co_ops = self.protect(&co_ops);

        let preamble_cycles = self.power_model.cycle_count(&preamble);
        let co_cycles = self.power_model.cycle_count(&co_ops);
        let mut all_ops = preamble;
        all_ops.extend_from(&co_ops);

        let samples = self.digitize(&all_ops);
        let co_start = self.oscilloscope.cycle_to_sample(preamble_cycles);
        let co_end =
            self.oscilloscope.cycle_to_sample(preamble_cycles + co_cycles).min(samples.len());

        let mut meta = TraceMeta::with_description(format!("{} training trace", cipher.name()));
        meta.sample_rate_hz = Some(125e6);
        meta.device_clock_hz = Some(50e6);
        meta.co_starts = vec![co_start];
        meta.co_ends = vec![co_end];
        let mut ct_arr = [0u8; 16];
        ct_arr.copy_from_slice(&ct[..16]);
        (Trace::with_meta(samples, meta), ct_arr)
    }

    /// Captures a noise trace of (at least) `min_ops` operations of
    /// non-cryptographic applications, under the active random delay.
    pub fn capture_noise_trace(&mut self, min_ops: usize) -> Trace {
        let ops = noise_apps::noise_stream(min_ops, &mut self.trng);
        let ops = self.protect(&ops);
        let samples = self.digitize(&ops);
        let mut meta = TraceMeta::with_description("noise trace");
        meta.sample_rate_hz = Some(125e6);
        meta.device_clock_hz = Some(50e6);
        Trace::with_meta(samples, meta)
    }

    /// Runs a full evaluation [`Scenario`], producing one long trace that
    /// contains `scenario.num_cos` cipher executions with random plaintexts,
    /// separated by idle gaps or noise applications, all protected by the
    /// active random-delay configuration.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> ScenarioResult {
        let cipher = cipher_by_id(scenario.cipher);
        let mut all_ops = ExecutionTrace::new();
        // (cycle_start, cycle_end, plaintext, ciphertext) per CO.
        let mut co_cycle_spans: Vec<(usize, usize, [u8; 16], [u8; 16])> = Vec::new();

        let push_gap = |sim: &mut Self, ops: &mut ExecutionTrace, first: bool| {
            let gap = if scenario.interleave_noise {
                let (lo, hi) = scenario.noise_ops_range;
                let span = (hi.saturating_sub(lo)).max(1) as u64;
                let len = lo + sim.trng.next_below(span) as usize;
                noise_apps::noise_stream(len, &mut sim.trng)
            } else {
                let len = if first { scenario.lead_ops } else { scenario.idle_gap_ops };
                let mut idle = ExecutionTrace::with_capacity(len);
                for i in 0..len {
                    idle.word(OpKind::Other, i as u32);
                }
                idle
            };
            let gap = sim.protect(&gap);
            ops.extend_from(&gap);
        };

        for co_index in 0..scenario.num_cos {
            push_gap(self, &mut all_ops, co_index == 0);

            let plaintext = self.trng.next_block();
            let mut co_ops = ExecutionTrace::new();
            let ct = cipher.encrypt_recorded(&scenario.key, &plaintext, &mut co_ops);
            let co_ops = self.protect(&co_ops);

            let cycle_start = self.power_model.cycle_count(&all_ops);
            all_ops.extend_from(&co_ops);
            let cycle_end = self.power_model.cycle_count(&all_ops);

            let mut ct_arr = [0u8; 16];
            ct_arr.copy_from_slice(&ct[..16]);
            co_cycle_spans.push((cycle_start, cycle_end, plaintext, ct_arr));
        }
        // Trailing gap so the last CO is fully contained in the trace.
        push_gap(self, &mut all_ops, true);

        let samples = self.digitize(&all_ops);
        let cos: Vec<CoRecord> = co_cycle_spans
            .into_iter()
            .map(|(start, end, plaintext, ciphertext)| CoRecord {
                start_sample: self.oscilloscope.cycle_to_sample(start),
                end_sample: self.oscilloscope.cycle_to_sample(end).min(samples.len()),
                plaintext,
                ciphertext,
            })
            .collect();

        let mut meta = TraceMeta::with_description(scenario.label());
        meta.sample_rate_hz = Some(125e6);
        meta.device_clock_hz = Some(50e6);
        meta.co_starts = cos.iter().map(|c| c.start_sample).collect();
        meta.co_ends = cos.iter().map(|c| c.end_sample).collect();

        ScenarioResult { trace: Trace::with_meta(samples, meta), cos, key: scenario.key }
    }

    /// Mean CO length (in ADC samples) of `n` executions of `cipher` with
    /// random plaintexts under the current configuration. Used to derive the
    /// per-cipher pipeline parameters of Table I.
    pub fn mean_co_samples(&mut self, cipher_id: CipherId, n: usize) -> f64 {
        let cipher = cipher_by_id(cipher_id);
        let key = Scenario::DEFAULT_KEY;
        let mut total = 0usize;
        for _ in 0..n.max(1) {
            let pt = self.trng.next_block();
            let mut ops = ExecutionTrace::new();
            cipher.encrypt_recorded(&key, &pt, &mut ops);
            let ops = self.protect(&ops);
            total += self.oscilloscope.samples_for_cycles(self.power_model.cycle_count(&ops));
        }
        total as f64 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_ciphers::Aes128;

    #[test]
    fn cipher_trace_marks_co_start_after_preamble() {
        let mut sim = SocSimulator::new(SocSimulatorConfig::rd(0), 1);
        let aes = Aes128::new();
        let (trace, _ct) = sim.capture_cipher_trace(&aes, &[0u8; 16], &[1u8; 16]);
        assert_eq!(trace.meta().co_starts.len(), 1);
        let start = trace.meta().co_starts[0];
        // 64 NOPs at 1 cycle each, 2.5 samples per cycle = 160 samples.
        assert_eq!(start, 160);
        assert!(trace.meta().co_ends[0] > start);
        assert!(trace.len() > start);
    }

    #[test]
    fn random_delay_lengthens_cipher_traces() {
        let aes = Aes128::new();
        let mut plain = SocSimulator::new(SocSimulatorConfig::rd(0), 3);
        let mut rd4 = SocSimulator::new(SocSimulatorConfig::rd(4), 3);
        let (t0, _) = plain.capture_cipher_trace(&aes, &[0u8; 16], &[0u8; 16]);
        let (t4, _) = rd4.capture_cipher_trace(&aes, &[0u8; 16], &[0u8; 16]);
        assert!(t4.len() as f64 > t0.len() as f64 * 2.0);
    }

    #[test]
    fn rd_traces_have_varying_length() {
        let aes = Aes128::new();
        let mut sim = SocSimulator::new(SocSimulatorConfig::rd(4), 5);
        let (a, _) = sim.capture_cipher_trace(&aes, &[0u8; 16], &[0u8; 16]);
        let (b, _) = sim.capture_cipher_trace(&aes, &[0u8; 16], &[0u8; 16]);
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn noise_trace_has_no_markers() {
        let mut sim = SocSimulator::new(SocSimulatorConfig::rd(2), 11);
        let noise = sim.capture_noise_trace(2000);
        assert!(noise.meta().co_starts.is_empty());
        assert!(noise.len() > 2000);
    }

    #[test]
    fn scenario_ground_truth_is_consistent() {
        let mut sim = SocSimulator::new(SocSimulatorConfig::rd(2), 21);
        let scenario = Scenario::consecutive(CipherId::Simon128, 6);
        let result = sim.run_scenario(&scenario);
        assert_eq!(result.cos.len(), 6);
        // Starts strictly increasing, ends after starts, all inside the trace.
        for pair in result.cos.windows(2) {
            assert!(pair[0].end_sample <= pair[1].start_sample);
        }
        for co in &result.cos {
            assert!(co.start_sample < co.end_sample);
            assert!(co.end_sample <= result.trace.len());
        }
        assert_eq!(result.trace.meta().co_starts, result.co_starts());
    }

    #[test]
    fn scenario_ciphertexts_match_cipher() {
        let mut sim = SocSimulator::new(SocSimulatorConfig::rd(4), 31);
        let scenario = Scenario::interleaved(CipherId::Aes128, 3);
        let result = sim.run_scenario(&scenario);
        let aes = Aes128::new();
        for co in &result.cos {
            let expected = aes.encrypt(&result.key, &co.plaintext);
            assert_eq!(expected, co.ciphertext.to_vec());
        }
    }

    #[test]
    fn interleaved_scenario_is_longer_than_consecutive() {
        let mut a = SocSimulator::new(SocSimulatorConfig::rd(2), 7);
        let mut b = SocSimulator::new(SocSimulatorConfig::rd(2), 7);
        let cons = a.run_scenario(&Scenario::consecutive(CipherId::Camellia128, 5));
        let inter = b.run_scenario(&Scenario::interleaved(CipherId::Camellia128, 5));
        assert!(inter.trace.len() > cons.trace.len());
    }

    #[test]
    fn mean_co_samples_positive_and_orders_ciphers() {
        let mut sim = SocSimulator::new(SocSimulatorConfig::rd(2), 13);
        let aes = sim.mean_co_samples(CipherId::Aes128, 3);
        let simon = sim.mean_co_samples(CipherId::Simon128, 3);
        let masked = sim.mean_co_samples(CipherId::MaskedAes128, 3);
        assert!(aes > 0.0 && simon > 0.0);
        // Masked AES executes more operations than plain AES; Simon fewer.
        assert!(masked > aes);
        assert!(simon < aes);
    }
}
