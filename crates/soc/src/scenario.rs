//! Evaluation scenarios: sequences of cryptographic operations, optionally
//! interleaved with noise applications, composed into one long side-channel
//! trace with ground truth.

use sca_ciphers::CipherId;
use sca_trace::Trace;
use serde::{Deserialize, Serialize};

/// Ground-truth record of one cryptographic operation inside a scenario trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoRecord {
    /// First ADC sample of the CO.
    pub start_sample: usize,
    /// One past the last ADC sample of the CO.
    pub end_sample: usize,
    /// Plaintext processed by the CO (known to the attacker in a CPA attack).
    pub plaintext: [u8; 16],
    /// Ciphertext produced by the CO.
    pub ciphertext: [u8; 16],
}

impl CoRecord {
    /// Length of the CO in samples.
    pub fn len(&self) -> usize {
        self.end_sample.saturating_sub(self.start_sample)
    }

    /// Returns `true` for a degenerate empty record.
    pub fn is_empty(&self) -> bool {
        self.end_sample <= self.start_sample
    }
}

/// Description of an evaluation scenario (Section IV-B/IV-C of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Cipher executed by every CO.
    pub cipher: CipherId,
    /// Number of CO executions in the trace (512 in the paper).
    pub num_cos: usize,
    /// Whether noise applications are interleaved between the COs
    /// ("Noise Applications ✓" rows of Table II); otherwise the COs run
    /// back-to-back with only a small loop-overhead gap.
    pub interleave_noise: bool,
    /// Secret key used by every CO (fixed, as in a CPA acquisition campaign).
    pub key: [u8; 16],
    /// Minimum and maximum number of noise-application operations inserted
    /// between two COs when `interleave_noise` is set.
    pub noise_ops_range: (usize, usize),
    /// Number of idle operations between two COs when running consecutively.
    pub idle_gap_ops: usize,
    /// Number of noise operations executed before the first CO and after the
    /// last one, so COs never sit at the very edge of the trace.
    pub lead_ops: usize,
}

impl Scenario {
    /// Default key used by the evaluation scenarios (the FIPS-197 example key).
    pub const DEFAULT_KEY: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];

    /// Consecutive CO executions without interleaved noise applications.
    pub fn consecutive(cipher: CipherId, num_cos: usize) -> Self {
        Self {
            cipher,
            num_cos,
            interleave_noise: false,
            key: Self::DEFAULT_KEY,
            noise_ops_range: (400, 1600),
            idle_gap_ops: 48,
            lead_ops: 256,
        }
    }

    /// CO executions interleaved with random noise applications.
    pub fn interleaved(cipher: CipherId, num_cos: usize) -> Self {
        Self { interleave_noise: true, ..Self::consecutive(cipher, num_cos) }
    }

    /// Replaces the secret key.
    pub fn with_key(mut self, key: [u8; 16]) -> Self {
        self.key = key;
        self
    }

    /// Human-readable label ("AES, RD interleaved with noise", …).
    pub fn label(&self) -> String {
        format!(
            "{} x{} ({})",
            self.cipher.label(),
            self.num_cos,
            if self.interleave_noise { "interleaved with noise apps" } else { "consecutive" }
        )
    }
}

/// The outcome of simulating a [`Scenario`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The captured side-channel trace (ground-truth markers are also copied
    /// into the trace metadata).
    pub trace: Trace,
    /// Ground truth for every CO, in execution order.
    pub cos: Vec<CoRecord>,
    /// The secret key used by the COs.
    pub key: [u8; 16],
}

impl ScenarioResult {
    /// Ground-truth CO start samples.
    pub fn co_starts(&self) -> Vec<usize> {
        self.cos.iter().map(|c| c.start_sample).collect()
    }

    /// Mean CO length in samples (0 if there are no COs).
    pub fn mean_co_len(&self) -> f64 {
        if self.cos.is_empty() {
            return 0.0;
        }
        self.cos.iter().map(|c| c.len() as f64).sum::<f64>() / self.cos.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let c = Scenario::consecutive(CipherId::Aes128, 8);
        assert!(!c.interleave_noise);
        let i = Scenario::interleaved(CipherId::Simon128, 4);
        assert!(i.interleave_noise);
        assert_eq!(i.num_cos, 4);
        assert!(c.label().contains("AES"));
        assert!(i.label().contains("noise"));
    }

    #[test]
    fn with_key_overrides() {
        let s = Scenario::consecutive(CipherId::Aes128, 1).with_key([9u8; 16]);
        assert_eq!(s.key, [9u8; 16]);
    }

    #[test]
    fn co_record_length() {
        let r = CoRecord {
            start_sample: 100,
            end_sample: 350,
            plaintext: [0; 16],
            ciphertext: [0; 16],
        };
        assert_eq!(r.len(), 250);
        assert!(!r.is_empty());
        let empty =
            CoRecord { start_sample: 10, end_sample: 10, plaintext: [0; 16], ciphertext: [0; 16] };
        assert!(empty.is_empty());
    }
}
