//! Oscilloscope / ADC model: per-cycle power → sampled side-channel trace.
//!
//! Models the measurement chain of the paper's setup (Picoscope 5244d probing
//! a 50 MHz SoC at 125 Ms/s with 12-bit resolution):
//!
//! 1. the per-cycle power waveform is resampled to `samples_per_cycle`
//!    ADC samples per clock cycle (2.5 by default);
//! 2. a first-order low-pass filter models the limited analog bandwidth of the
//!    shunt + probe chain;
//! 3. additive Gaussian noise models amplifier/quantisation/environment noise;
//! 4. the result is clipped and quantised to the ADC resolution.

use sca_trace::dsp;
use serde::{Deserialize, Serialize};

use crate::trng::Trng;

/// Configuration of the oscilloscope model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OscilloscopeConfig {
    /// ADC samples per device clock cycle (125 MHz / 50 MHz = 2.5 in the paper).
    pub samples_per_cycle: f64,
    /// ADC resolution in bits (12 in the paper).
    pub adc_bits: u32,
    /// Standard deviation of the additive Gaussian measurement noise
    /// (in the same normalised units as the power model output).
    pub noise_std: f32,
    /// Coefficient of the first-order analog low-pass (1.0 = no filtering).
    pub lowpass_alpha: f32,
    /// ADC full-scale range minimum.
    pub full_scale_min: f32,
    /// ADC full-scale range maximum.
    pub full_scale_max: f32,
}

impl Default for OscilloscopeConfig {
    fn default() -> Self {
        Self {
            samples_per_cycle: 2.5,
            adc_bits: 12,
            noise_std: 0.03,
            lowpass_alpha: 0.7,
            full_scale_min: 0.0,
            full_scale_max: 2.0,
        }
    }
}

/// The oscilloscope/ADC model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Oscilloscope {
    config: OscilloscopeConfig,
}

impl Oscilloscope {
    /// Creates an oscilloscope with the given configuration.
    pub fn new(config: OscilloscopeConfig) -> Self {
        Self { config }
    }

    /// The oscilloscope configuration.
    pub fn config(&self) -> &OscilloscopeConfig {
        &self.config
    }

    /// Number of ADC samples produced for `cycles` clock cycles.
    pub fn samples_for_cycles(&self, cycles: usize) -> usize {
        (cycles as f64 * self.config.samples_per_cycle).round() as usize
    }

    /// Converts a clock-cycle index to the corresponding ADC sample index.
    pub fn cycle_to_sample(&self, cycle: usize) -> usize {
        (cycle as f64 * self.config.samples_per_cycle).floor() as usize
    }

    /// Digitises a per-cycle power waveform into an ADC sample vector.
    pub fn capture(&self, cycle_power: &[f32], trng: &mut Trng) -> Vec<f32> {
        if cycle_power.is_empty() {
            return Vec::new();
        }
        let n_samples = self.samples_for_cycles(cycle_power.len()).max(1);
        let resampled = dsp::resample_linear(cycle_power, n_samples);
        let filtered = dsp::low_pass(&resampled, self.config.lowpass_alpha)
            .expect("lowpass_alpha validated by construction");
        let noisy: Vec<f32> = filtered
            .iter()
            .map(|&s| s + self.config.noise_std * trng.next_gaussian() as f32)
            .collect();
        dsp::quantize(
            &noisy,
            self.config.adc_bits,
            self.config.full_scale_min,
            self.config.full_scale_max,
        )
        .expect("quantisation parameters validated by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_count_follows_ratio() {
        let osc = Oscilloscope::default();
        assert_eq!(osc.samples_for_cycles(1000), 2500);
        assert_eq!(osc.cycle_to_sample(100), 250);
        assert_eq!(osc.cycle_to_sample(0), 0);
    }

    #[test]
    fn capture_produces_expected_length() {
        let osc = Oscilloscope::default();
        let mut trng = Trng::new(1);
        let power = vec![0.5f32; 400];
        let trace = osc.capture(&power, &mut trng);
        assert_eq!(trace.len(), 1000);
    }

    #[test]
    fn capture_empty_is_empty() {
        let osc = Oscilloscope::default();
        let mut trng = Trng::new(1);
        assert!(osc.capture(&[], &mut trng).is_empty());
    }

    #[test]
    fn noise_free_constant_signal_is_quantised_constant() {
        let config =
            OscilloscopeConfig { noise_std: 0.0, lowpass_alpha: 1.0, ..Default::default() };
        let osc = Oscilloscope::new(config);
        let mut trng = Trng::new(9);
        let trace = osc.capture(&vec![1.0f32; 100], &mut trng);
        assert!(trace.iter().all(|&s| (s - trace[0]).abs() < 1e-6));
        // 12-bit quantisation over [0, 2] keeps 1.0 within half an LSB.
        assert!((trace[0] - 1.0).abs() < 2.0 / 4095.0);
    }

    #[test]
    fn values_stay_within_full_scale() {
        let osc = Oscilloscope::default();
        let mut trng = Trng::new(33);
        let power: Vec<f32> = (0..500).map(|i| (i % 7) as f32).collect(); // exceeds full scale
        let trace = osc.capture(&power, &mut trng);
        let cfg = osc.config();
        assert!(trace
            .iter()
            .all(|&s| s >= cfg.full_scale_min - 1e-6 && s <= cfg.full_scale_max + 1e-6));
    }

    #[test]
    fn noise_changes_with_trng_state() {
        let osc = Oscilloscope::default();
        let mut trng = Trng::new(5);
        let power = vec![0.8f32; 200];
        let a = osc.capture(&power, &mut trng);
        let b = osc.capture(&power, &mut trng);
        assert_ne!(a, b);
    }
}
