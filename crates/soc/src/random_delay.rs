//! Random-delay countermeasure (RD-0 / RD-2 / RD-4).
//!
//! The paper's target CPU inserts, at run time, a TRNG-chosen number of random
//! instructions between every pair of consecutive program instructions. RD-2
//! caps that number at 2, RD-4 at 4. The effect on the side-channel trace is a
//! non-uniform temporal stretching that defeats pattern-matching locators.
//!
//! Here the countermeasure operates on the recorded micro-operation stream:
//! between every two operations it inserts 0..=R dummy operations of random
//! kind and random data, drawn from the simulated [`Trng`].

use sca_ciphers::{ExecutionTrace, Op, OpKind};
use serde::{Deserialize, Serialize};

use crate::trng::Trng;

/// Configuration of the random-delay countermeasure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomDelayConfig {
    /// Maximum number of dummy instructions inserted between two consecutive
    /// program instructions (0 disables the countermeasure).
    pub max_insertions: usize,
}

impl RandomDelayConfig {
    /// Countermeasure disabled.
    pub fn disabled() -> Self {
        Self { max_insertions: 0 }
    }

    /// RD-2 configuration of the paper.
    pub fn rd2() -> Self {
        Self { max_insertions: 2 }
    }

    /// RD-4 configuration of the paper.
    pub fn rd4() -> Self {
        Self { max_insertions: 4 }
    }

    /// A short label matching the paper's tables ("RD-2", "RD-4", "none").
    pub fn label(&self) -> String {
        if self.max_insertions == 0 {
            "none".to_string()
        } else {
            format!("RD-{}", self.max_insertions)
        }
    }

    /// `true` when the countermeasure is active.
    pub fn is_active(&self) -> bool {
        self.max_insertions > 0
    }
}

impl Default for RandomDelayConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The random-delay insertion engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomDelay {
    config: RandomDelayConfig,
}

/// Kinds a dummy instruction may take. The real hardware inserts arbitrary
/// ALU instructions with random operands; the mix below mimics that.
const DUMMY_KINDS: [OpKind; 5] =
    [OpKind::Arith, OpKind::Xor, OpKind::Logic, OpKind::Shift, OpKind::Other];

impl RandomDelay {
    /// Creates a new random-delay engine.
    pub fn new(config: RandomDelayConfig) -> Self {
        Self { config }
    }

    /// The engine configuration.
    pub fn config(&self) -> RandomDelayConfig {
        self.config
    }

    /// Draws one dummy operation.
    fn dummy_op(trng: &mut Trng) -> Op {
        let kind = DUMMY_KINDS[trng.next_below(DUMMY_KINDS.len() as u64) as usize];
        Op::word(kind, trng.next_u64() as u32)
    }

    /// Applies the countermeasure to an operation stream: between every pair
    /// of consecutive operations (and before the first one), inserts
    /// `0..=max_insertions` dummy operations chosen by the TRNG.
    ///
    /// With `max_insertions == 0` the input is returned unchanged.
    pub fn apply(&self, trace: &ExecutionTrace, trng: &mut Trng) -> ExecutionTrace {
        if !self.config.is_active() {
            return trace.clone();
        }
        let bound = self.config.max_insertions as u64 + 1;
        let mut out = ExecutionTrace::with_capacity(trace.len() * (1 + self.config.max_insertions));
        for op in trace.ops() {
            let n = trng.next_below(bound) as usize;
            for _ in 0..n {
                out.record(Self::dummy_op(trng));
            }
            out.record(*op);
        }
        out
    }

    /// Expected expansion factor of the operation stream
    /// (`1 + max_insertions / 2` on average).
    pub fn expected_expansion(&self) -> f64 {
        1.0 + self.config.max_insertions as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(n: usize) -> ExecutionTrace {
        (0..n).map(|i| Op::byte(OpKind::TableLookup, i as u8)).collect()
    }

    #[test]
    fn disabled_is_identity() {
        let rd = RandomDelay::new(RandomDelayConfig::disabled());
        let mut trng = Trng::new(1);
        let t = sample_trace(100);
        let out = rd.apply(&t, &mut trng);
        assert_eq!(out, t);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(RandomDelayConfig::rd2().label(), "RD-2");
        assert_eq!(RandomDelayConfig::rd4().label(), "RD-4");
        assert_eq!(RandomDelayConfig::disabled().label(), "none");
    }

    #[test]
    fn original_ops_preserved_in_order() {
        let rd = RandomDelay::new(RandomDelayConfig::rd4());
        let mut trng = Trng::new(7);
        let t = sample_trace(200);
        let out = rd.apply(&t, &mut trng);
        // Filter out the dummies: original ops were byte-wide TableLookups.
        let originals: Vec<_> = out
            .ops()
            .iter()
            .filter(|op| op.kind == OpKind::TableLookup && op.bits == 8)
            .copied()
            .collect();
        assert_eq!(originals.len(), 200);
        for (i, op) in originals.iter().enumerate() {
            assert_eq!(op.value, i as u32);
        }
    }

    #[test]
    fn expansion_respects_bound_and_average() {
        for (cfg, max) in [(RandomDelayConfig::rd2(), 2usize), (RandomDelayConfig::rd4(), 4)] {
            let rd = RandomDelay::new(cfg);
            let mut trng = Trng::new(99);
            let t = sample_trace(2000);
            let out = rd.apply(&t, &mut trng);
            assert!(out.len() >= t.len());
            assert!(out.len() <= t.len() * (1 + max));
            let expansion = out.len() as f64 / t.len() as f64;
            assert!(
                (expansion - rd.expected_expansion()).abs() < 0.15,
                "expansion {expansion} vs expected {}",
                rd.expected_expansion()
            );
        }
    }

    #[test]
    fn different_executions_get_different_delays() {
        let rd = RandomDelay::new(RandomDelayConfig::rd2());
        let mut trng = Trng::new(5);
        let t = sample_trace(100);
        let a = rd.apply(&t, &mut trng);
        let b = rd.apply(&t, &mut trng);
        assert_ne!(a.ops(), b.ops());
    }
}
