//! Simulated true random number generator (TRNG).
//!
//! The paper's platform embeds a hardware TRNG that drives the random-delay
//! countermeasure. In simulation we use a small, fast, deterministic
//! xoshiro256**-style generator: determinism (given the seed) keeps every
//! experiment reproducible while the statistical quality is more than enough
//! for delay insertion and measurement-noise generation.

use serde::{Deserialize, Serialize};

/// Simulated TRNG (xoshiro256** core with a splitmix64 seeder).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Trng {
    /// Creates a TRNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Next byte.
    pub fn next_byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiplicative range reduction; bias is negligible for the small
        // bounds used by the delay countermeasure.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard-normal sample (Box–Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fills a 16-byte block with random data (used for random plaintexts).
    pub fn next_block(&mut self) -> [u8; 16] {
        let mut block = [0u8; 16];
        for chunk in block.chunks_mut(8) {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes()[..chunk.len()]);
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Trng::new(12345);
        let mut b = Trng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Trng::new(1);
        let mut b = Trng::new(2);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut t = Trng::new(7);
        for bound in [1u64, 2, 3, 5, 100] {
            for _ in 0..200 {
                assert!(t.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        Trng::new(1).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut t = Trng::new(99);
        for _ in 0..1000 {
            let v = t.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut t = Trng::new(2024);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| t.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn byte_distribution_covers_range() {
        let mut t = Trng::new(5);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[t.next_byte() as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }
}
