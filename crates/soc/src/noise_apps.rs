//! Noise applications: non-cryptographic workloads executed on the simulated
//! SoC to build the *noise trace* of the training pipeline and to interleave
//! with cipher executions in the "Noise Applications" scenarios of Table II.
//!
//! Each generator produces an [`ExecutionTrace`] whose operation mix and data
//! values mimic a realistic small embedded workload (memory copies, sorting,
//! FIR filtering, checksumming, busy-wait loops).

use sca_ciphers::{ExecutionTrace, OpKind};
use serde::{Deserialize, Serialize};

use crate::trng::Trng;

/// The catalogue of simulated noise applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoiseApp {
    /// Word-by-word memory copy of a random buffer.
    Memcpy,
    /// Bubble sort of a small random array (compare + swap heavy).
    BubbleSort,
    /// Finite-impulse-response filter over a random signal (MAC heavy).
    FirFilter,
    /// Fletcher-style checksum over a random buffer.
    Checksum,
    /// Idle busy-wait loop (low, constant activity).
    IdleLoop,
}

impl NoiseApp {
    /// All noise applications.
    pub const ALL: [NoiseApp; 5] = [
        NoiseApp::Memcpy,
        NoiseApp::BubbleSort,
        NoiseApp::FirFilter,
        NoiseApp::Checksum,
        NoiseApp::IdleLoop,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            NoiseApp::Memcpy => "memcpy",
            NoiseApp::BubbleSort => "bubble_sort",
            NoiseApp::FirFilter => "fir_filter",
            NoiseApp::Checksum => "checksum",
            NoiseApp::IdleLoop => "idle_loop",
        }
    }

    /// Executes the application on `size` elements, recording its operations.
    pub fn execute(&self, size: usize, trng: &mut Trng) -> ExecutionTrace {
        match self {
            NoiseApp::Memcpy => memcpy(size, trng),
            NoiseApp::BubbleSort => bubble_sort(size, trng),
            NoiseApp::FirFilter => fir_filter(size, trng),
            NoiseApp::Checksum => checksum(size, trng),
            NoiseApp::IdleLoop => idle_loop(size),
        }
    }
}

impl std::fmt::Display for NoiseApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn memcpy(size: usize, trng: &mut Trng) -> ExecutionTrace {
    let mut rec = ExecutionTrace::with_capacity(size * 3);
    for _ in 0..size {
        let v = trng.next_u64() as u32;
        rec.word(OpKind::Load, v);
        rec.word(OpKind::Store, v);
        rec.word(OpKind::Arith, v.wrapping_add(4)); // pointer increment
    }
    rec
}

fn bubble_sort(size: usize, trng: &mut Trng) -> ExecutionTrace {
    let mut data: Vec<u32> = (0..size).map(|_| trng.next_u64() as u32 & 0xFFFF).collect();
    let mut rec = ExecutionTrace::with_capacity(size * size * 2);
    for i in 0..data.len() {
        for j in 0..data.len().saturating_sub(1 + i) {
            rec.word(OpKind::Load, data[j]);
            rec.word(OpKind::Load, data[j + 1]);
            rec.word(OpKind::Logic, data[j] ^ data[j + 1]); // comparison
            if data[j] > data[j + 1] {
                data.swap(j, j + 1);
                rec.word(OpKind::Store, data[j]);
                rec.word(OpKind::Store, data[j + 1]);
            }
        }
    }
    rec
}

fn fir_filter(size: usize, trng: &mut Trng) -> ExecutionTrace {
    const TAPS: usize = 8;
    let coeffs: Vec<u32> = (0..TAPS).map(|i| (i as u32 + 1) * 3).collect();
    let signal: Vec<u32> = (0..size + TAPS).map(|_| trng.next_u64() as u32 & 0xFFF).collect();
    let mut rec = ExecutionTrace::with_capacity(size * TAPS * 2);
    for n in 0..size {
        let mut acc = 0u32;
        for (k, &c) in coeffs.iter().enumerate() {
            let x = signal[n + k];
            rec.word(OpKind::Load, x);
            acc = acc.wrapping_add(x.wrapping_mul(c));
            rec.word(OpKind::Arith, acc);
        }
        rec.word(OpKind::Store, acc);
    }
    rec
}

fn checksum(size: usize, trng: &mut Trng) -> ExecutionTrace {
    let mut rec = ExecutionTrace::with_capacity(size * 3);
    let mut s1 = 0xFFFFu32;
    let mut s2 = 0xFFFFu32;
    for _ in 0..size {
        let b = trng.next_byte() as u32;
        rec.byte(OpKind::Load, b as u8);
        s1 = (s1 + b) % 65521;
        s2 = (s2 + s1) % 65521;
        rec.word(OpKind::Arith, s1);
        rec.word(OpKind::Arith, s2);
    }
    rec.word(OpKind::Store, (s2 << 16) | s1);
    rec
}

fn idle_loop(size: usize) -> ExecutionTrace {
    let mut rec = ExecutionTrace::with_capacity(size * 2);
    for i in 0..size {
        rec.word(OpKind::Arith, i as u32); // counter increment
        rec.byte(OpKind::Nop, 0);
    }
    rec
}

/// Builds a long noise operation stream by concatenating randomly chosen
/// noise applications until at least `min_ops` operations are recorded.
pub fn noise_stream(min_ops: usize, trng: &mut Trng) -> ExecutionTrace {
    let mut rec = ExecutionTrace::with_capacity(min_ops + 1024);
    while rec.len() < min_ops {
        let app = NoiseApp::ALL[trng.next_below(NoiseApp::ALL.len() as u64) as usize];
        let size = 24 + trng.next_below(48) as usize;
        let part = app.execute(size, trng);
        rec.extend_from(&part);
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_produces_ops() {
        let mut trng = Trng::new(3);
        for app in NoiseApp::ALL {
            let rec = app.execute(32, &mut trng);
            assert!(!rec.is_empty(), "{app} produced no operations");
        }
    }

    #[test]
    fn apps_have_distinct_profiles() {
        let mut trng = Trng::new(11);
        let mem = NoiseApp::Memcpy.execute(64, &mut trng);
        let idle = NoiseApp::IdleLoop.execute(64, &mut trng);
        // Memcpy stores a lot; the idle loop stores nothing.
        assert!(mem.count_kind(OpKind::Store) > 0);
        assert_eq!(idle.count_kind(OpKind::Store), 0);
        assert!(idle.count_kind(OpKind::Nop) > 0);
    }

    #[test]
    fn bubble_sort_scales_quadratically() {
        let mut trng = Trng::new(17);
        let small = NoiseApp::BubbleSort.execute(8, &mut trng);
        let big = NoiseApp::BubbleSort.execute(32, &mut trng);
        assert!(big.len() > small.len() * 4);
    }

    #[test]
    fn noise_stream_reaches_requested_length() {
        let mut trng = Trng::new(23);
        let rec = noise_stream(5_000, &mut trng);
        assert!(rec.len() >= 5_000);
    }

    #[test]
    fn noise_contains_no_table_lookups() {
        // Noise applications never execute S-box-style table lookups, which is
        // one of the features that distinguishes them from cipher code.
        let mut trng = Trng::new(29);
        let rec = noise_stream(2_000, &mut trng);
        assert_eq!(rec.count_kind(OpKind::TableLookup), 0);
    }
}
