//! Hamming-weight power model: micro-operations → per-cycle power.
//!
//! Every recorded micro-operation is mapped to one or more clock cycles. The
//! instantaneous power of a cycle is
//!
//! ```text
//! p = static + baseline(kind) + hw_gain * HammingWeight(value) / bits
//! ```
//!
//! i.e. an operation-class dependent dynamic-power baseline (what gives each
//! program region its recognisable "shape" — the component that pattern
//! matching and the CNN exploit to localise the cipher) plus a data-dependent
//! component proportional to the switching activity of the processed value
//! (the component CPA exploits).

use sca_ciphers::{ExecutionTrace, Op, OpKind};
use serde::{Deserialize, Serialize};

/// Configuration of the [`PowerModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModelConfig {
    /// Static (leakage) power present in every cycle.
    pub static_power: f32,
    /// Gain of the data-dependent component (per normalised Hamming weight).
    pub hw_gain: f32,
    /// Number of clock cycles consumed by a memory access (loads/stores/table
    /// lookups); other operations take one cycle. Models the slower memory
    /// path of the paper's soft-core.
    pub memory_cycles: usize,
}

impl Default for PowerModelConfig {
    fn default() -> Self {
        Self { static_power: 0.10, hw_gain: 0.35, memory_cycles: 2 }
    }
}

/// Converts recorded operation streams into per-cycle power values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    config: PowerModelConfig,
}

impl PowerModel {
    /// Creates a power model with the given configuration.
    pub fn new(config: PowerModelConfig) -> Self {
        Self { config }
    }

    /// The model configuration.
    pub fn config(&self) -> &PowerModelConfig {
        &self.config
    }

    /// Operation-class baseline dynamic power (arbitrary normalised units).
    ///
    /// The values are chosen so that the different phases of a cipher
    /// (table-lookup-heavy SubBytes, XOR-heavy AddRoundKey, …) and the
    /// surrounding non-cryptographic code have visibly different levels, as
    /// they do on the real platform.
    pub fn baseline(&self, kind: OpKind) -> f32 {
        match kind {
            OpKind::Load => 0.55,
            OpKind::Store => 0.60,
            OpKind::TableLookup => 0.70,
            OpKind::Xor => 0.40,
            OpKind::Logic => 0.38,
            OpKind::Arith => 0.45,
            OpKind::Shift => 0.35,
            OpKind::GfMul => 0.65,
            OpKind::Rng => 0.50,
            OpKind::Nop => 0.12,
            OpKind::Other => 0.30,
        }
    }

    /// Number of clock cycles consumed by one operation.
    pub fn cycles(&self, kind: OpKind) -> usize {
        match kind {
            OpKind::Load | OpKind::Store | OpKind::TableLookup => self.config.memory_cycles.max(1),
            _ => 1,
        }
    }

    /// Power value(s) of a single operation, one entry per consumed cycle.
    pub fn op_power(&self, op: &Op) -> Vec<f32> {
        let hw = op.value.count_ones() as f32 / op.bits.max(1) as f32;
        let p = self.config.static_power + self.baseline(op.kind) + self.config.hw_gain * hw;
        vec![p; self.cycles(op.kind)]
    }

    /// Converts a full execution trace into a per-cycle power vector.
    pub fn trace_power(&self, trace: &ExecutionTrace) -> Vec<f32> {
        let mut out = Vec::with_capacity(trace.len() * 2);
        for op in trace.ops() {
            out.extend(self.op_power(op));
        }
        out
    }

    /// Total number of cycles a trace will occupy (without random delay).
    pub fn cycle_count(&self, trace: &ExecutionTrace) -> usize {
        trace.ops().iter().map(|op| self.cycles(op.kind)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_ciphers::OpKind;

    #[test]
    fn nop_is_cheapest() {
        let pm = PowerModel::default();
        for kind in OpKind::ALL {
            if kind != OpKind::Nop {
                assert!(pm.baseline(kind) > pm.baseline(OpKind::Nop), "{kind:?}");
            }
        }
    }

    #[test]
    fn hamming_weight_increases_power() {
        let pm = PowerModel::default();
        let low = pm.op_power(&Op::byte(OpKind::Xor, 0x00))[0];
        let high = pm.op_power(&Op::byte(OpKind::Xor, 0xFF))[0];
        assert!(high > low);
        assert!((high - low - pm.config().hw_gain).abs() < 1e-6);
    }

    #[test]
    fn memory_ops_take_more_cycles() {
        let pm = PowerModel::default();
        assert_eq!(pm.cycles(OpKind::TableLookup), 2);
        assert_eq!(pm.cycles(OpKind::Xor), 1);
        assert_eq!(pm.op_power(&Op::byte(OpKind::Load, 1)).len(), 2);
    }

    #[test]
    fn trace_power_length_matches_cycle_count() {
        let pm = PowerModel::default();
        let mut rec = ExecutionTrace::new();
        rec.byte(OpKind::Load, 0xAA);
        rec.byte(OpKind::Xor, 0x01);
        rec.nops(3);
        let power = pm.trace_power(&rec);
        assert_eq!(power.len(), pm.cycle_count(&rec));
        assert_eq!(power.len(), 2 + 1 + 3);
    }

    #[test]
    fn word_ops_normalise_hamming_weight() {
        let pm = PowerModel::default();
        // A full-weight byte and a full-weight word leak the same normalised amount.
        let b = pm.op_power(&Op::byte(OpKind::Xor, 0xFF))[0];
        let w = pm.op_power(&Op::word(OpKind::Xor, u32::MAX))[0];
        assert!((b - w).abs() < 1e-6);
    }
}
