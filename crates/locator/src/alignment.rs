//! Alignment: cut the input trace at the located CO starts and stack the
//! resulting sub-traces so a standard side-channel attack (CPA) can consume
//! them (final stage of the inference pipeline in Figure 1).

use sca_trace::Trace;
use serde::{Deserialize, Serialize};

/// Cuts and aligns located COs out of a long trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aligner {
    /// Number of samples to keep from each located start.
    pub co_len: usize,
    /// Samples to back off before each located start (absorbs the coarse,
    /// stride-quantised localisation; the paper compensates the same effect
    /// with a small aggregation over time in the CPA).
    pub pre_margin: usize,
}

impl Aligner {
    /// Creates an aligner keeping `co_len` samples per CO.
    ///
    /// # Panics
    ///
    /// Panics if `co_len` is zero.
    pub fn new(co_len: usize) -> Self {
        assert!(co_len > 0, "aligned CO length must be non-zero");
        Self { co_len, pre_margin: 0 }
    }

    /// Sets the pre-start margin.
    pub fn with_pre_margin(mut self, pre_margin: usize) -> Self {
        self.pre_margin = pre_margin;
        self
    }

    /// Cuts one aligned sub-trace per start sample. Starts too close to the
    /// end of the trace to yield `co_len` samples are dropped (their index is
    /// reported in the second return value).
    pub fn align(&self, trace: &Trace, co_starts: &[usize]) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut aligned = Vec::with_capacity(co_starts.len());
        let mut dropped = Vec::new();
        for (i, &start) in co_starts.iter().enumerate() {
            let begin = start.saturating_sub(self.pre_margin);
            if begin + self.co_len <= trace.len() {
                aligned.push(trace.samples()[begin..begin + self.co_len].to_vec());
            } else {
                dropped.push(i);
            }
        }
        (aligned, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuts_fixed_length_segments() {
        let trace = Trace::from_samples((0..100).map(|x| x as f32).collect());
        let aligner = Aligner::new(10);
        let (aligned, dropped) = aligner.align(&trace, &[0, 25, 50]);
        assert_eq!(aligned.len(), 3);
        assert!(dropped.is_empty());
        assert_eq!(aligned[1][0], 25.0);
        assert_eq!(aligned[1].len(), 10);
    }

    #[test]
    fn drops_truncated_segments() {
        let trace = Trace::from_samples(vec![0.0; 30]);
        let aligner = Aligner::new(20);
        let (aligned, dropped) = aligner.align(&trace, &[5, 15, 25]);
        assert_eq!(aligned.len(), 1);
        assert_eq!(dropped, vec![1, 2]);
    }

    #[test]
    fn pre_margin_shifts_window_back() {
        let trace = Trace::from_samples((0..50).map(|x| x as f32).collect());
        let aligner = Aligner::new(8).with_pre_margin(3);
        let (aligned, _) = aligner.align(&trace, &[10]);
        assert_eq!(aligned[0][0], 7.0);
    }

    #[test]
    fn pre_margin_saturates_at_zero() {
        let trace = Trace::from_samples((0..20).map(|x| x as f32).collect());
        let aligner = Aligner::new(4).with_pre_margin(10);
        let (aligned, _) = aligner.align(&trace, &[2]);
        assert_eq!(aligned[0][0], 0.0);
    }

    #[test]
    #[should_panic(expected = "aligned CO length must be non-zero")]
    fn zero_length_panics() {
        Aligner::new(0);
    }
}
