//! Quantised variant of the CO-locator CNN (`i8` weights, per-channel
//! scales, fixed-point activation chain).
//!
//! [`QuantizedCoLocatorCnn`] mirrors the block sequence of
//! [`CoLocatorCnn`] (Figure 2) with every convolution replaced by its
//! quantised counterpart from [`tinynn::qlayers`]. Batch normalisation does
//! not survive quantisation as a separate layer: at inference it is a
//! per-channel affine transform, which
//! [`tinynn::QuantizedConv1d::from_conv_folded`] folds into the preceding
//! convolution's weights and bias before the `i8` grid is chosen (the
//! per-channel scales absorb the rescaling exactly). Inner ReLUs are fused
//! into their producing layer, so the quantised network is a chain of
//! integer GEMMs plus the pooling/shortcut glue. The tiny fully connected
//! head stays `f32` (see [`QuantizedCoLocatorCnn::from_cnn`] for why).
//!
//! ## Fixed-point activation chain
//!
//! Activations stay `i16` codes *between* layers. Each activation tensor
//! lives on a static grid calibrated once, at quantisation time
//! ([`Self::calibrate`]): the network is driven over a deterministic set of
//! standardized probe windows, the per-tensor absolute maxima are recorded,
//! and each grid's scale is `max · margin / 32767`. With the grids pinned,
//! every layer's `i32` accumulators map to the next grid through a
//! precomputed per-output-channel fixed-point multiplier
//! ([`tinynn::Requantizer`]), so a forward pass performs **no `f32`
//! arithmetic between the input quantisation and the global average pool**
//! — no per-window scale scan, no dequantise/requantise roundtrip, and no
//! transpose (the requantising GEMM writes position-major, which is the
//! next layer's input layout).
//!
//! The network is produced by quantising a *trained* `f32` network
//! ([`QuantizedCoLocatorCnn::from_cnn`]) and is inference-only: it holds no
//! gradients and cannot be trained further.
//!
//! Like the `f32` network it implements [`WindowScorer`], so the
//! sliding-window classifier, the shard fan-out and the engine's batched
//! serving path all work on it unchanged. Scores are deterministic and
//! independent of batch composition (every window is processed by per-item
//! integer GEMMs on the same static grids), so thread count never changes a
//! score bit.

use tinynn::quant::quantize_with_scale;
use tinynn::{
    forward_consuming, Layer, Linear, Param, QuantActs, QuantizedConv1d, QuantizedGemm,
    QuantizedResidualBlock1d, Relu, Tensor, Workspace,
};

use crate::cnn::{CnnConfig, CoLocatorCnn, WindowScorer};

/// Window length used for the built-in calibration pass when no caller
/// window length is known (matches the benchmark window length).
pub const DEFAULT_CALIBRATION_LEN: usize = 128;

/// Headroom multiplier applied to the observed activation maxima when
/// choosing a grid. `i16` codes give ~15 bits of magnitude, so a 1.25×
/// margin costs a third of a bit of resolution while still absorbing
/// post-calibration saturation from inputs modestly outside the probe
/// envelope; anything further out clamps, which the score head tolerates.
const CALIBRATION_MARGIN: f32 = 1.25;

/// Number of calibrated activation grids: network input, stem output,
/// res1 mid/out, res2 mid/out.
pub const ACTIVATION_SCALE_COUNT: usize = 6;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Largest finite |v|; non-finite entries are ignored so a poisoned probe
/// cannot poison the grid.
fn finite_abs_max(values: &[f32]) -> f32 {
    values.iter().fold(0.0f32, |m, &v| {
        let a = v.abs();
        if a.is_finite() {
            m.max(a)
        } else {
            m
        }
    })
}

/// Observed activation maximum → grid scale. Degenerate maxima (a dead
/// tensor, or all-non-finite input) fall back to the unit grid.
fn grid_scale(max: f32) -> f32 {
    if max > 0.0 && max.is_finite() {
        max * CALIBRATION_MARGIN / 32767.0
    } else {
        1.0
    }
}

/// The quantised CO-locator CNN.
#[derive(Debug, Clone)]
pub struct QuantizedCoLocatorCnn {
    config: CnnConfig,
    conv: QuantizedConv1d,
    res1: QuantizedResidualBlock1d,
    res2: QuantizedResidualBlock1d,
    fc1: Linear,
    fc_relu: Relu,
    fc2: Linear,
    /// Calibrated activation grid scales: input, stem out, res1 mid,
    /// res1 out, res2 mid, res2 out.
    act_scales: [f32; ACTIVATION_SCALE_COUNT],
}

impl QuantizedCoLocatorCnn {
    /// Quantises a trained `f32` network: per-output-channel symmetric `i8`
    /// weights for every convolution (the conv GEMMs are where essentially
    /// all inference time goes), with every batch-norm folded into its
    /// convolution and the inner ReLUs fused. Activation grids are
    /// calibrated immediately on the deterministic built-in probe set
    /// ([`Self::synthetic_calibration_windows`]); callers with
    /// representative traces can recalibrate via [`Self::calibrate`].
    ///
    /// The tiny fully connected head stays `f32` on purpose: it is ~0.05%
    /// of the per-window compute, while the class-1 margin is *most*
    /// sensitive to rounding of exactly those few weights (they multiply
    /// the pooled features straight into the output). Keeping the head full
    /// precision is what holds the end-to-end score divergence inside the
    /// 1e-2 parity envelope.
    pub fn from_cnn(cnn: &CoLocatorCnn) -> Self {
        let (conv, bn, res1, res2, fc1, fc2) = cnn.parts();
        let mut qcnn = Self {
            config: *cnn.config(),
            conv: QuantizedConv1d::from_conv_folded(conv, bn, true),
            res1: QuantizedResidualBlock1d::from_residual(res1),
            res2: QuantizedResidualBlock1d::from_residual(res2),
            fc1: fc1.clone(),
            fc_relu: Relu::new(),
            fc2: fc2.clone(),
            act_scales: [1.0; ACTIVATION_SCALE_COUNT],
        };
        qcnn.calibrate(&Self::synthetic_calibration_windows(DEFAULT_CALIBRATION_LEN));
        qcnn
    }

    /// Folds the quantised backbone's *systematic* feature offset into the
    /// `f32` head bias, estimated on representative sample windows.
    ///
    /// Weight rounding gives every pooled feature a small mean error under a
    /// fixed input distribution (the rounded taps interact with the inputs'
    /// autocorrelation), which surfaces as a near-constant shift of the
    /// class-1 score — on the benchmark fleet the *mean* score divergence
    /// nearly equals the *median*, i.e. the envelope is offset-dominated,
    /// not noise-dominated. Measuring the per-feature mean gap on the sample
    /// windows and absorbing `W₁ · mean(Δfeatures)` into the fc1 bias
    /// cancels that component exactly — `fc1(x + δ) = fc1(x) + W₁ δ` — at
    /// zero inference cost. The corrected bias is an ordinary head
    /// parameter, so it persists through every model format unchanged.
    ///
    /// The offset depends on the input distribution (white-noise probes can
    /// even carry the opposite sign of slowly-oscillating traces), so the
    /// correction is only applied here, where the caller vouches that
    /// `windows` mirror deployment inputs — never from the synthetic
    /// built-in probes. Re-running with a new sample set replaces the
    /// previous correction (the bias restarts from the reference head), and
    /// non-finite feature pairs are skipped per feature, so alignment can
    /// never write a non-finite bias.
    pub(crate) fn align_head(&mut self, cnn: &CoLocatorCnn, windows: &Tensor) {
        let reference_bias = cnn.parts().4.bias().data().to_vec();
        self.fc1.params_mut()[1].value.data_mut().copy_from_slice(&reference_bias);
        let mut ws = Workspace::new();
        let want = cnn.pooled_features(windows, &mut ws, false);
        let got = self.pooled_features(windows, &mut ws);
        let f2 = self.res2.out_channels();
        let batch = windows.shape()[0];
        let mut delta = vec![0f64; f2];
        let mut count = vec![0u32; f2];
        for b in 0..batch {
            let w_row = &want.data()[b * f2..(b + 1) * f2];
            let g_row = &got.data()[b * f2..(b + 1) * f2];
            for (c, (&w, &g)) in w_row.iter().zip(g_row).enumerate() {
                if w.is_finite() && g.is_finite() {
                    delta[c] += (w - g) as f64;
                    count[c] += 1;
                }
            }
        }
        for (d, &n) in delta.iter_mut().zip(&count) {
            if n > 0 {
                *d /= n as f64;
            }
        }
        let (out_f, in_f) = (self.fc1.out_features(), self.fc1.in_features());
        let weight: Vec<f64> = self.fc1.weight().data().iter().map(|&w| w as f64).collect();
        let bias = &mut self.fc1.params_mut()[1].value;
        for (o, b) in bias.data_mut().iter_mut().enumerate() {
            let adj: f64 =
                weight[o * in_f..(o + 1) * in_f].iter().zip(&delta).map(|(&w, &d)| w * d).sum();
            debug_assert!(adj.is_finite());
            *b += adj as f32;
        }
        debug_assert_eq!(out_f * in_f, weight.len());
    }

    /// The architecture configuration of the quantised network (identical to
    /// the `f32` network it was quantised from).
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// A deterministic, model-independent probe set for activation-grid
    /// calibration: seeded pseudo-Gaussian noise plus the structured
    /// extremes a standardized window can exhibit (an impulse — the largest
    /// single sample any standardized window of this length can contain — a
    /// step edge, slow and fast sines, and the Nyquist alternation). Every
    /// window is standardized exactly like the sliding classifier
    /// standardizes real trace windows.
    pub fn synthetic_calibration_windows(len: usize) -> Tensor {
        assert!(len > 0, "calibration windows must be non-empty");
        let mut windows: Vec<Vec<f32>> = Vec::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..8 {
            windows.push(
                (0..len)
                    .map(|_| {
                        // Sum of four uniforms: cheap, deterministic,
                        // approximately Gaussian.
                        let mut s = 0.0f32;
                        for _ in 0..4 {
                            let u = (xorshift(&mut state) >> 11) as f32 / (1u64 << 53) as f32;
                            s += 2.0 * u - 1.0;
                        }
                        s * 0.5
                    })
                    .collect(),
            );
        }
        let mut impulse = vec![0.0f32; len];
        impulse[len / 2] = 1.0;
        windows.push(impulse);
        windows.push((0..len).map(|i| if i < len / 2 { -1.0 } else { 1.0 }).collect());
        windows.push((0..len).map(|i| (i as f32 * 0.05).sin()).collect());
        windows.push((0..len).map(|i| (i as f32 * 0.91).sin()).collect());
        windows.push((0..len).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect());
        for w in &mut windows {
            sca_trace::dsp::standardize_in_place(w);
        }
        CoLocatorCnn::stack_windows(&windows)
    }

    /// Probe windows matched to this model's stem filters: each stem kernel
    /// row (dequantised), centered in a window and standardized. These are
    /// the inputs that maximally excite each stem channel, so including
    /// them keeps the stem grid honest even when the generic probes happen
    /// to be near-orthogonal to a filter.
    fn stem_probe_windows(&self, len: usize) -> Vec<Vec<f32>> {
        let k = self.conv.kernel_size();
        let rows = self.conv.gemm().rows();
        let cols = self.conv.gemm().cols();
        let deq = self.conv.gemm().dequantize();
        let mut probes = Vec::with_capacity(rows);
        for row in deq.chunks(cols) {
            if row.iter().all(|&v| v == 0.0) {
                continue;
            }
            let copy = k.min(len);
            let start = (len - copy) / 2;
            let mut w = vec![0.0f32; len];
            w[start..start + copy].copy_from_slice(&row[..copy]);
            sca_trace::dsp::standardize_in_place(&mut w);
            probes.push(w);
        }
        probes
    }

    /// Calibrates the activation grids on `windows` (`[B, 1, N]`,
    /// standardized like inference inputs) plus this model's stem-matched
    /// probes, then rebuilds every layer's fixed-point plan.
    ///
    /// The maxima are recorded from the quantised network's own dynamic
    /// (per-window-scale) forward path, which is deterministic in the
    /// quantised weights — so quantising a model and loading the same
    /// persisted model calibrate to bit-identical grids. Non-finite
    /// activations are ignored by the max fold, so a poisoned window
    /// saturates at inference instead of destroying the grid.
    pub fn calibrate(&mut self, windows: &Tensor) {
        assert_eq!(windows.shape().len(), 3, "calibration windows must be [B, 1, N]");
        assert_eq!(windows.shape()[1], 1, "calibration windows must be single-channel");
        let (count, len) = (windows.shape()[0], windows.shape()[2]);
        assert!(count > 0 && len > 0, "calibration needs at least one non-empty window");
        let mut all: Vec<Vec<f32>> = windows.data().chunks(len).map(|c| c.to_vec()).collect();
        all.extend(self.stem_probe_windows(len));
        let x = CoLocatorCnn::stack_windows(&all);
        let mut ws = Workspace::new();
        let s0 = grid_scale(finite_abs_max(x.data()));
        let stem = self.conv.forward(&x, &mut ws, false);
        let s1 = grid_scale(finite_abs_max(stem.data()));
        let r1_mid = self.res1.conv1().forward(&stem, &mut ws, false);
        let s2 = grid_scale(finite_abs_max(r1_mid.data()));
        ws.recycle(r1_mid);
        let r1 = forward_consuming(&self.res1, stem, &mut ws, false);
        let s3 = grid_scale(finite_abs_max(r1.data()));
        let r2_mid = self.res2.conv1().forward(&r1, &mut ws, false);
        let s4 = grid_scale(finite_abs_max(r2_mid.data()));
        ws.recycle(r2_mid);
        let r2 = forward_consuming(&self.res2, r1, &mut ws, false);
        let s5 = grid_scale(finite_abs_max(r2.data()));
        ws.recycle(r2);
        self.act_scales = [s0, s1, s2, s3, s4, s5];
        self.rebuild_plans();
    }

    /// The calibrated activation grid scales (input, stem out, res1 mid,
    /// res1 out, res2 mid, res2 out). Persisted by model format v3.
    pub fn activation_scales(&self) -> [f32; ACTIVATION_SCALE_COUNT] {
        self.act_scales
    }

    /// Installs previously calibrated activation grids (model loading) and
    /// rebuilds the fixed-point plans. Every scale must be finite and
    /// positive; a corrupt scale is rejected rather than installed.
    pub fn set_activation_scales(
        &mut self,
        scales: [f32; ACTIVATION_SCALE_COUNT],
    ) -> Result<(), String> {
        for (i, s) in scales.iter().enumerate() {
            if !s.is_finite() || *s <= 0.0 {
                return Err(format!("activation scale {i} is not positive finite: {s}"));
            }
        }
        self.act_scales = scales;
        self.rebuild_plans();
        Ok(())
    }

    /// Rebuilds every layer's fixed-point requantisation plan from the
    /// current activation grids *and current weights* — must be re-run
    /// after either changes (calibration, or a persisted payload install).
    fn rebuild_plans(&mut self) {
        let s = self.act_scales;
        self.conv.set_fixed_point(s[0], s[1]);
        self.res1.set_fixed_point(s[1], s[2], s[3]);
        self.res2.set_fixed_point(s[3], s[4], s[5]);
    }

    /// Inference forward pass: windows `[B, 1, N]` → class logits `[B, 2]`.
    ///
    /// The input is quantised once onto the calibrated input grid; the stem
    /// and both residual blocks then run entirely on `i16` codes with fused
    /// integer requantisation, the global average pool reduces the `i16`
    /// codes in `i64` and dequantises the per-channel means, and the tiny
    /// fully connected head runs in `f32`. All intermediate code buffers
    /// come from the workspace's `i16` arena, so a warm pass allocates
    /// nothing.
    pub fn forward(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let pooled = self.pooled_features(input, ws);
        let h = forward_consuming(&self.fc1, pooled, ws, false);
        let h = forward_consuming(&self.fc_relu, h, ws, false);
        forward_consuming(&self.fc2, h, ws, false)
    }

    /// The fixed-point backbone and integer global average pool only:
    /// windows `[B, 1, N]` → pooled `f32` features `[B, F2]` (the head
    /// input).
    fn pooled_features(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(input.shape().len(), 3, "expected windows [B, 1, N]");
        assert_eq!(input.shape()[1], 1, "expected single-channel windows");
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let k = self.config.kernel_size;
        let pad = (k - 1) / 2;
        let rows = len + k - 1;
        let f = self.conv.out_channels();
        let f2 = self.res2.out_channels();

        let mut x = QuantActs::with_buffer(
            ws.take_i16(batch * rows),
            batch,
            1,
            len,
            pad,
            rows,
            self.act_scales[0],
        );
        x.zero_pads();
        for b in 0..batch {
            let src = &input.data()[b * len..(b + 1) * len];
            let body = &mut x.codes[b * rows + pad..b * rows + pad + len];
            quantize_with_scale(src, self.act_scales[0], body);
        }

        let mut a1 =
            QuantActs::with_buffer(ws.take_i16(batch * rows * f), batch, f, len, pad, rows, 0.0);
        self.conv.forward_fixed(&x, &mut a1);
        ws.recycle_i16(x.codes);

        let mut a2 =
            QuantActs::with_buffer(ws.take_i16(batch * rows * f), batch, f, len, pad, rows, 0.0);
        self.res1.forward_fixed(&a1, &mut a2, ws);
        ws.recycle_i16(a1.codes);

        let mut a3 =
            QuantActs::with_buffer(ws.take_i16(batch * rows * f2), batch, f2, len, pad, rows, 0.0);
        self.res2.forward_fixed(&a2, &mut a3, ws);
        ws.recycle_i16(a2.codes);

        // Integer global average pool: exact i64 channel sums of the i16
        // codes, dequantised once per channel.
        let mut pooled = ws.uninit_tensor(&[batch, f2]);
        let inv_len = 1.0 / len as f32;
        let out_scale = a3.scale;
        let acc = ws.i64_scratch(f2);
        for b in 0..batch {
            acc.fill(0);
            let body = &a3.codes[b * rows * f2 + pad * f2..][..len * f2];
            for row in body.chunks_exact(f2) {
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a += v as i64;
                }
            }
            let out_row = &mut pooled.data_mut()[b * f2..(b + 1) * f2];
            for (o, &a) in out_row.iter_mut().zip(acc.iter()) {
                *o = a as f32 * out_scale * inv_len;
            }
        }
        ws.recycle_i16(a3.codes);
        pooled
    }

    /// Scores a batch of windows with the linear class-1 margin, writing
    /// into a caller-owned buffer (cleared first).
    pub fn class1_scores_into(&self, input: &Tensor, ws: &mut Workspace, scores: &mut Vec<f32>) {
        let logits = self.forward(input, ws);
        scores.clear();
        scores.reserve(logits.shape()[0]);
        for b in 0..logits.shape()[0] {
            scores.push(logits.at2(b, 1) - logits.at2(b, 0));
        }
        ws.recycle(logits);
    }

    /// Scores a batch of windows, returning a fresh score vector.
    pub fn class1_scores(&self, input: &Tensor, ws: &mut Workspace) -> Vec<f32> {
        let mut scores = Vec::new();
        self.class1_scores_into(input, ws, &mut scores);
        scores
    }

    /// Every quantised GEMM operand in a fixed architecture order (the model
    /// persistence format relies on this order): `conv`, then the
    /// residual-block convs of `res1` and `res2`.
    pub fn qgemms(&self) -> Vec<&QuantizedGemm> {
        let mut gemms = vec![self.conv.gemm()];
        gemms.extend(self.res1.gemms());
        gemms.extend(self.res2.gemms());
        gemms
    }

    /// Mutable access to the quantised operands (same order as
    /// [`Self::qgemms`]). After mutating weights, reinstall or recalibrate
    /// the activation grids so the fixed-point plans match.
    pub fn qgemms_mut(&mut self) -> Vec<&mut QuantizedGemm> {
        let mut gemms = vec![self.conv.gemm_mut()];
        gemms.extend(self.res1.gemms_mut());
        gemms.extend(self.res2.gemms_mut());
        gemms
    }

    /// The `f32` parameters of the fully connected head, in a fixed order
    /// (`fc1` weight/bias, then `fc2` weight/bias) matching
    /// [`Self::head_params_mut`] — the model persistence format relies on
    /// this order.
    pub fn head_params(&self) -> Vec<&Param> {
        let mut params = self.fc1.params();
        params.extend(self.fc2.params());
        params
    }

    /// Mutable access to the head parameters (same order as
    /// [`Self::head_params`]).
    pub fn head_params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.fc1.params_mut();
        params.extend(self.fc2.params_mut());
        params
    }

    /// Total bytes of quantised weight storage (the `i8` blocks only).
    pub fn quantized_weight_bytes(&self) -> usize {
        self.qgemms().iter().map(|g| g.quantized_bytes()).sum()
    }

    /// Total heap bytes the model keeps resident at serving time: every
    /// quantised operand's [`QuantizedGemm::resident_bytes`] (which counts
    /// the derived `i16` and pair-packed copies, not just the `i8` block)
    /// plus the `f32` head parameters.
    pub fn resident_weight_bytes(&self) -> usize {
        let gemms: usize = self.qgemms().iter().map(|g| g.resident_bytes()).sum();
        let head: usize = self.head_params().iter().map(|p| p.len() * 4).sum();
        gemms + head
    }
}

impl WindowScorer for QuantizedCoLocatorCnn {
    fn score_windows_into(&self, input: &Tensor, ws: &mut Workspace, scores: &mut Vec<f32>) {
        self.class1_scores_into(input, ws, scores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cnn() -> CoLocatorCnn {
        CoLocatorCnn::new(CnnConfig { base_filters: 4, kernel_size: 5, seed: 11 })
    }

    fn windows(count: usize, len: usize) -> Tensor {
        let windows: Vec<Vec<f32>> = (0..count)
            .map(|w| (0..len).map(|i| ((i + 3 * w) as f32 * 0.17).sin()).collect())
            .collect();
        CoLocatorCnn::stack_windows(&windows)
    }

    #[test]
    fn quantised_scores_track_f32_scores() {
        let cnn = tiny_cnn();
        let qcnn = QuantizedCoLocatorCnn::from_cnn(&cnn);
        let mut ws = Workspace::new();
        let x = windows(6, 48);
        let f32_scores = cnn.class1_scores(&x, &mut ws);
        let q_scores = qcnn.class1_scores(&x, &mut ws);
        assert_eq!(f32_scores.len(), q_scores.len());
        for (a, b) in q_scores.iter().zip(f32_scores.iter()) {
            assert!((a - b).abs() <= 1e-2, "quantised {a} vs f32 {b}");
        }
    }

    #[test]
    fn quantised_scores_are_independent_of_batch_composition() {
        let qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        let mut ws = Workspace::new();
        let all = windows(5, 32);
        let batched = qcnn.class1_scores(&all, &mut ws);
        for (w, expected) in batched.iter().enumerate() {
            let single = Tensor::from_vec(all.data()[w * 32..(w + 1) * 32].to_vec(), &[1, 1, 32]);
            let one = qcnn.class1_scores(&single, &mut ws);
            assert_eq!(one[0].to_bits(), expected.to_bits(), "window {w}");
        }
    }

    #[test]
    fn enumeration_orders_are_consistent() {
        let mut qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        // conv + res1 (2 convs) + res2 (2 convs + projection).
        assert_eq!(qcnn.qgemms().len(), 6);
        let geoms: Vec<(usize, usize)> =
            qcnn.qgemms().iter().map(|g| (g.rows(), g.cols())).collect();
        let geoms_mut: Vec<(usize, usize)> =
            qcnn.qgemms_mut().iter().map(|g| (g.rows(), g.cols())).collect();
        assert_eq!(geoms, geoms_mut);
        assert!(qcnn.quantized_weight_bytes() > 0);
        // The f32 head: fc1 weight/bias + fc2 weight/bias.
        let head: Vec<usize> = qcnn.head_params().iter().map(|p| p.len()).collect();
        let head_mut: Vec<usize> = qcnn.head_params_mut().iter().map(|p| p.len()).collect();
        assert_eq!(head, head_mut);
        assert_eq!(head.len(), 4);
    }

    #[test]
    fn quantised_forward_is_allocation_free_after_warmup() {
        let qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        let mut ws = Workspace::new();
        let x = windows(4, 32);
        let mut scores = Vec::new();
        for _ in 0..2 {
            qcnn.class1_scores_into(&x, &mut ws, &mut scores);
        }
        let misses = ws.arena_misses();
        let retained = ws.retained_bytes();
        for _ in 0..10 {
            qcnn.class1_scores_into(&x, &mut ws, &mut scores);
        }
        assert_eq!(ws.arena_misses(), misses, "steady-state forward must not allocate");
        assert_eq!(ws.retained_bytes(), retained, "steady-state forward must not grow scratch");
    }

    #[test]
    fn supports_different_window_lengths() {
        let qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        let mut ws = Workspace::new();
        assert_eq!(qcnn.forward(&windows(1, 40), &mut ws).shape(), &[1, 2]);
        assert_eq!(qcnn.forward(&windows(1, 24), &mut ws).shape(), &[1, 2]);
    }

    #[test]
    fn calibration_is_deterministic() {
        let cnn = tiny_cnn();
        let a = QuantizedCoLocatorCnn::from_cnn(&cnn);
        let b = QuantizedCoLocatorCnn::from_cnn(&cnn);
        let bits = |q: &QuantizedCoLocatorCnn| {
            q.activation_scales().iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(bits(&a), bits(&b));
        for s in a.activation_scales() {
            assert!(s.is_finite() && s > 0.0, "calibrated scale must be positive finite: {s}");
        }
    }

    #[test]
    fn calibration_survives_non_finite_probe_windows() {
        let mut qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        let clean = qcnn.activation_scales();
        let mut poisoned: Vec<Vec<f32>> = (0..3)
            .map(|w| (0..32).map(|i| ((i * (w + 1)) as f32 * 0.21).cos()).collect())
            .collect();
        poisoned[0][5] = f32::NAN;
        poisoned[1][9] = f32::INFINITY;
        poisoned[2][0] = f32::NEG_INFINITY;
        qcnn.calibrate(&CoLocatorCnn::stack_windows(&poisoned));
        for (i, s) in qcnn.activation_scales().iter().enumerate() {
            assert!(s.is_finite() && *s > 0.0, "scale {i} poisoned: {s}");
        }
        // Grids from poisoned probes must still score finite.
        let mut ws = Workspace::new();
        for s in qcnn.class1_scores(&windows(2, 32), &mut ws) {
            assert!(s.is_finite());
        }
        // And a fresh calibration restores the clean grids exactly.
        qcnn.calibrate(&QuantizedCoLocatorCnn::synthetic_calibration_windows(
            DEFAULT_CALIBRATION_LEN,
        ));
        assert_eq!(
            clean.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            qcnn.activation_scales().iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_activation_scales_rejects_corrupt_grids() {
        let mut qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        let good = qcnn.activation_scales();
        for bad in [0.0f32, -1.0, f32::NAN, f32::INFINITY] {
            let mut scales = good;
            scales[3] = bad;
            assert!(qcnn.set_activation_scales(scales).is_err(), "accepted scale {bad}");
        }
        // Rejection must not clobber the installed grids.
        assert_eq!(
            good.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            qcnn.activation_scales().iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        assert!(qcnn.set_activation_scales(good).is_ok());
    }
}
