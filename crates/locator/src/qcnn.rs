//! Quantised variant of the CO-locator CNN (`i8` weights, per-channel
//! scales).
//!
//! [`QuantizedCoLocatorCnn`] mirrors the block sequence of
//! [`CoLocatorCnn`] (Figure 2) with every convolution replaced by its
//! quantised counterpart from [`tinynn::qlayers`]. Batch normalisation does
//! not survive quantisation as a separate layer: at inference it is a
//! per-channel affine transform, which
//! [`tinynn::QuantizedConv1d::from_conv_folded`] folds into the preceding
//! convolution's weights and bias before the `i8` grid is chosen (the
//! per-channel scales absorb the rescaling exactly). Inner ReLUs are fused
//! into their producing layer, so the quantised network is a chain of
//! integer GEMMs plus the pooling/shortcut glue. The tiny fully connected
//! head stays `f32` (see [`QuantizedCoLocatorCnn::from_cnn`] for why).
//!
//! The network is produced by quantising a *trained* `f32` network
//! ([`QuantizedCoLocatorCnn::from_cnn`]) and is inference-only: it holds no
//! gradients and cannot be trained further.
//!
//! Like the `f32` network it implements [`WindowScorer`], so the
//! sliding-window classifier, the shard fan-out and the engine's batched
//! serving path all work on it unchanged. Scores are deterministic and
//! independent of batch composition (activation scales are per window), so
//! thread count never changes a score bit.

use tinynn::{
    forward_consuming, GlobalAvgPool1d, Layer, Linear, Param, QuantizedConv1d, QuantizedGemm,
    QuantizedResidualBlock1d, Relu, Tensor, Workspace,
};

use crate::cnn::{CnnConfig, CoLocatorCnn, WindowScorer};

/// The quantised CO-locator CNN.
#[derive(Debug, Clone)]
pub struct QuantizedCoLocatorCnn {
    config: CnnConfig,
    conv: QuantizedConv1d,
    res1: QuantizedResidualBlock1d,
    res2: QuantizedResidualBlock1d,
    pool: GlobalAvgPool1d,
    fc1: Linear,
    fc_relu: Relu,
    fc2: Linear,
}

impl QuantizedCoLocatorCnn {
    /// Quantises a trained `f32` network: per-output-channel symmetric `i8`
    /// weights for every convolution (the conv GEMMs are where essentially
    /// all inference time goes), with every batch-norm folded into its
    /// convolution and the inner ReLUs fused.
    ///
    /// The tiny fully connected head stays `f32` on purpose: it is ~0.05%
    /// of the per-window compute, while the class-1 margin is *most*
    /// sensitive to rounding of exactly those few weights (they multiply
    /// the pooled features straight into the output). Keeping the head full
    /// precision is what holds the end-to-end score divergence inside the
    /// 1e-2 parity envelope.
    pub fn from_cnn(cnn: &CoLocatorCnn) -> Self {
        let (conv, bn, res1, res2, fc1, fc2) = cnn.parts();
        Self {
            config: *cnn.config(),
            conv: QuantizedConv1d::from_conv_folded(conv, bn, true),
            res1: QuantizedResidualBlock1d::from_residual(res1),
            res2: QuantizedResidualBlock1d::from_residual(res2),
            pool: GlobalAvgPool1d::new(),
            fc1: fc1.clone(),
            fc_relu: Relu::new(),
            fc2: fc2.clone(),
        }
    }

    /// The architecture configuration of the quantised network (identical to
    /// the `f32` network it was quantised from).
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Inference forward pass: windows `[B, 1, N]` → class logits `[B, 2]`.
    pub fn forward(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        // The stem conv carries its batch-norm and ReLU folded. Dead
        // intermediates return to the workspace arena immediately
        // (`forward_consuming`), so a warm pass allocates nothing.
        let x = self.conv.forward(input, ws, false);
        let x = forward_consuming(&self.res1, x, ws, false);
        let x = forward_consuming(&self.res2, x, ws, false);
        let x = forward_consuming(&self.pool, x, ws, false);
        let x = forward_consuming(&self.fc1, x, ws, false);
        let x = forward_consuming(&self.fc_relu, x, ws, false);
        forward_consuming(&self.fc2, x, ws, false)
    }

    /// Scores a batch of windows with the linear class-1 margin, writing
    /// into a caller-owned buffer (cleared first).
    pub fn class1_scores_into(&self, input: &Tensor, ws: &mut Workspace, scores: &mut Vec<f32>) {
        let logits = self.forward(input, ws);
        scores.clear();
        scores.reserve(logits.shape()[0]);
        for b in 0..logits.shape()[0] {
            scores.push(logits.at2(b, 1) - logits.at2(b, 0));
        }
        ws.recycle(logits);
    }

    /// Scores a batch of windows, returning a fresh score vector.
    pub fn class1_scores(&self, input: &Tensor, ws: &mut Workspace) -> Vec<f32> {
        let mut scores = Vec::new();
        self.class1_scores_into(input, ws, &mut scores);
        scores
    }

    /// Every quantised GEMM operand in a fixed architecture order (the model
    /// persistence format relies on this order): `conv`, then the
    /// residual-block convs of `res1` and `res2`.
    pub fn qgemms(&self) -> Vec<&QuantizedGemm> {
        let mut gemms = vec![self.conv.gemm()];
        gemms.extend(self.res1.gemms());
        gemms.extend(self.res2.gemms());
        gemms
    }

    /// Mutable access to the quantised operands (same order as
    /// [`Self::qgemms`]).
    pub fn qgemms_mut(&mut self) -> Vec<&mut QuantizedGemm> {
        let mut gemms = vec![self.conv.gemm_mut()];
        gemms.extend(self.res1.gemms_mut());
        gemms.extend(self.res2.gemms_mut());
        gemms
    }

    /// The `f32` parameters of the fully connected head, in a fixed order
    /// (`fc1` weight/bias, then `fc2` weight/bias) matching
    /// [`Self::head_params_mut`] — the model persistence format relies on
    /// this order.
    pub fn head_params(&self) -> Vec<&Param> {
        let mut params = self.fc1.params();
        params.extend(self.fc2.params());
        params
    }

    /// Mutable access to the head parameters (same order as
    /// [`Self::head_params`]).
    pub fn head_params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.fc1.params_mut();
        params.extend(self.fc2.params_mut());
        params
    }

    /// Total bytes of quantised weight storage (the `i8` blocks only).
    pub fn quantized_weight_bytes(&self) -> usize {
        self.qgemms().iter().map(|g| g.quantized_bytes()).sum()
    }
}

impl WindowScorer for QuantizedCoLocatorCnn {
    fn score_windows_into(&self, input: &Tensor, ws: &mut Workspace, scores: &mut Vec<f32>) {
        self.class1_scores_into(input, ws, scores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cnn() -> CoLocatorCnn {
        CoLocatorCnn::new(CnnConfig { base_filters: 4, kernel_size: 5, seed: 11 })
    }

    fn windows(count: usize, len: usize) -> Tensor {
        let windows: Vec<Vec<f32>> = (0..count)
            .map(|w| (0..len).map(|i| ((i + 3 * w) as f32 * 0.17).sin()).collect())
            .collect();
        CoLocatorCnn::stack_windows(&windows)
    }

    #[test]
    fn quantised_scores_track_f32_scores() {
        let cnn = tiny_cnn();
        let qcnn = QuantizedCoLocatorCnn::from_cnn(&cnn);
        let mut ws = Workspace::new();
        let x = windows(6, 48);
        let f32_scores = cnn.class1_scores(&x, &mut ws);
        let q_scores = qcnn.class1_scores(&x, &mut ws);
        assert_eq!(f32_scores.len(), q_scores.len());
        for (a, b) in q_scores.iter().zip(f32_scores.iter()) {
            assert!((a - b).abs() <= 1e-2, "quantised {a} vs f32 {b}");
        }
    }

    #[test]
    fn quantised_scores_are_independent_of_batch_composition() {
        let qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        let mut ws = Workspace::new();
        let all = windows(5, 32);
        let batched = qcnn.class1_scores(&all, &mut ws);
        for (w, expected) in batched.iter().enumerate() {
            let single = Tensor::from_vec(all.data()[w * 32..(w + 1) * 32].to_vec(), &[1, 1, 32]);
            let one = qcnn.class1_scores(&single, &mut ws);
            assert_eq!(one[0].to_bits(), expected.to_bits(), "window {w}");
        }
    }

    #[test]
    fn enumeration_orders_are_consistent() {
        let mut qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        // conv + res1 (2 convs) + res2 (2 convs + projection).
        assert_eq!(qcnn.qgemms().len(), 6);
        let geoms: Vec<(usize, usize)> =
            qcnn.qgemms().iter().map(|g| (g.rows(), g.cols())).collect();
        let geoms_mut: Vec<(usize, usize)> =
            qcnn.qgemms_mut().iter().map(|g| (g.rows(), g.cols())).collect();
        assert_eq!(geoms, geoms_mut);
        assert!(qcnn.quantized_weight_bytes() > 0);
        // The f32 head: fc1 weight/bias + fc2 weight/bias.
        let head: Vec<usize> = qcnn.head_params().iter().map(|p| p.len()).collect();
        let head_mut: Vec<usize> = qcnn.head_params_mut().iter().map(|p| p.len()).collect();
        assert_eq!(head, head_mut);
        assert_eq!(head.len(), 4);
    }

    #[test]
    fn quantised_forward_is_allocation_free_after_warmup() {
        let qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        let mut ws = Workspace::new();
        let x = windows(4, 32);
        let mut scores = Vec::new();
        for _ in 0..2 {
            qcnn.class1_scores_into(&x, &mut ws, &mut scores);
        }
        let misses = ws.arena_misses();
        let retained = ws.retained_bytes();
        for _ in 0..10 {
            qcnn.class1_scores_into(&x, &mut ws, &mut scores);
        }
        assert_eq!(ws.arena_misses(), misses, "steady-state forward must not allocate");
        assert_eq!(ws.retained_bytes(), retained, "steady-state forward must not grow scratch");
    }

    #[test]
    fn supports_different_window_lengths() {
        let qcnn = QuantizedCoLocatorCnn::from_cnn(&tiny_cnn());
        let mut ws = Workspace::new();
        assert_eq!(qcnn.forward(&windows(1, 40), &mut ws).shape(), &[1, 2]);
        assert_eq!(qcnn.forward(&windows(1, 24), &mut ws).shape(), &[1, 2]);
    }
}
