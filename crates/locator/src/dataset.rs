//! Dataset Creation (Section III-A of the paper).
//!
//! The attacker collects, on a clone device with the countermeasure active:
//!
//! * a set of *cipher traces*, each containing a single CO preceded by a NOP
//!   preamble (the stand-in for the missing trigger pin), and
//! * a *noise trace* produced by running other applications.
//!
//! From those, the builder produces a labelled window dataset: for every
//! cipher trace the `N`-sample window starting at the CO beginning is labelled
//! `c1` (`CipherStart`); the remaining part of the cipher trace is cut into
//! consecutive `N`-sample windows labelled `c0` (`NotStart`); and random
//! `N`-sample windows extracted from the noise trace are labelled `c0` too.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sca_trace::{Dataset, Trace, Window, WindowLabel};

/// Builds the CNN training dataset from cipher traces and a noise trace.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    window_len: usize,
    max_cipher_start: usize,
    max_cipher_rest: usize,
    max_noise: usize,
    standardize: bool,
    seed: u64,
}

impl DatasetBuilder {
    /// Creates a builder producing `window_len`-sample windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is zero.
    pub fn new(window_len: usize) -> Self {
        assert!(window_len > 0, "window length must be non-zero");
        Self {
            window_len,
            max_cipher_start: usize::MAX,
            max_cipher_rest: usize::MAX,
            max_noise: usize::MAX,
            standardize: true,
            seed: 0xDA7A,
        }
    }

    /// Caps the number of windows per category (cipher start / cipher rest /
    /// noise), mirroring the "Dataset Size" columns of Table I.
    pub fn with_limits(mut self, cipher_start: usize, cipher_rest: usize, noise: usize) -> Self {
        self.max_cipher_start = cipher_start;
        self.max_cipher_rest = cipher_rest;
        self.max_noise = noise;
        self
    }

    /// Enables/disables per-window standardisation (zero mean, unit variance).
    pub fn with_standardize(mut self, standardize: bool) -> Self {
        self.standardize = standardize;
        self
    }

    /// Sets the RNG seed used to draw noise windows.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Window length `N` of the produced windows.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    fn make_window(&self, samples: &[f32], label: WindowLabel, origin: usize) -> Window {
        let mut v = samples.to_vec();
        if self.standardize {
            sca_trace::dsp::standardize_in_place(&mut v);
        }
        Window::new(v, label, origin)
    }

    /// Builds the dataset.
    ///
    /// Every cipher trace must carry its CO start marker in
    /// `trace.meta().co_starts[0]` (the simulator and the NOP-preamble
    /// acquisition procedure both guarantee this). Traces too short to yield a
    /// full window are skipped.
    pub fn build(&self, cipher_traces: &[Trace], noise_trace: &Trace) -> Dataset {
        let mut dataset = Dataset::new();
        let n = self.window_len;
        let mut n_start = 0usize;
        let mut n_rest = 0usize;

        for trace in cipher_traces {
            let co_start = trace.meta().co_starts.first().copied().unwrap_or(0);
            // c1: the window that begins exactly at the CO start.
            if n_start < self.max_cipher_start {
                if let Ok(samples) = trace.slice(co_start, n) {
                    dataset.push(self.make_window(samples, WindowLabel::CipherStart, co_start));
                    n_start += 1;
                }
            }
            // c0: the rest of the cipher trace, in consecutive windows.
            let mut pos = co_start + n;
            while n_rest < self.max_cipher_rest {
                match trace.slice(pos, n) {
                    Ok(samples) => {
                        dataset.push(self.make_window(samples, WindowLabel::NotStart, pos));
                        n_rest += 1;
                        pos += n;
                    }
                    Err(_) => break,
                }
            }
        }

        // c0: random windows from the noise trace.
        let mut rng = StdRng::seed_from_u64(self.seed);
        if noise_trace.len() >= n {
            let max_origin = noise_trace.len() - n;
            let count = self.max_noise.min(if self.max_noise == usize::MAX {
                // Default: as many noise windows as cipher-start windows.
                n_start.max(1)
            } else {
                self.max_noise
            });
            for _ in 0..count {
                let origin = if max_origin == 0 { 0 } else { rng.gen_range(0..=max_origin) };
                let samples = noise_trace.slice(origin, n).expect("origin chosen within bounds");
                dataset.push(self.make_window(samples, WindowLabel::NotStart, origin));
            }
        }
        dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_trace::TraceMeta;

    fn cipher_trace(len: usize, co_start: usize) -> Trace {
        let meta =
            TraceMeta { co_starts: vec![co_start], co_ends: vec![len], ..Default::default() };
        Trace::with_meta((0..len).map(|x| x as f32).collect(), meta)
    }

    #[test]
    fn labels_follow_paper_convention() {
        let traces = vec![cipher_trace(100, 20), cipher_trace(100, 10)];
        let noise = Trace::from_samples(vec![0.5; 200]);
        let ds = DatasetBuilder::new(16)
            .with_limits(10, 10, 4)
            .with_standardize(false)
            .build(&traces, &noise);
        assert_eq!(ds.count_label(WindowLabel::CipherStart), 2);
        // Each 100-sample trace with co_start 20/10 yields 4/4 and 4/5 rest windows
        // capped at 10 total, plus 4 noise windows.
        assert!(ds.count_label(WindowLabel::NotStart) >= 8);
        // Cipher-start windows begin exactly at the CO start.
        let starts: Vec<usize> = ds
            .iter()
            .filter(|w| w.label() == WindowLabel::CipherStart)
            .map(|w| w.origin())
            .collect();
        assert_eq!(starts, vec![20, 10]);
    }

    #[test]
    fn window_contents_match_trace() {
        let traces = vec![cipher_trace(64, 8)];
        let noise = Trace::from_samples(vec![0.0; 64]);
        let ds = DatasetBuilder::new(8).with_standardize(false).build(&traces, &noise);
        let start_window = ds
            .iter()
            .find(|w| w.label() == WindowLabel::CipherStart)
            .expect("cipher start window present");
        assert_eq!(start_window.samples(), &[8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn limits_are_respected() {
        let traces: Vec<Trace> = (0..20).map(|_| cipher_trace(200, 10)).collect();
        let noise = Trace::from_samples(vec![0.1; 500]);
        let ds = DatasetBuilder::new(10).with_limits(5, 7, 3).build(&traces, &noise);
        assert_eq!(ds.count_label(WindowLabel::CipherStart), 5);
        assert_eq!(ds.count_label(WindowLabel::NotStart), 7 + 3);
    }

    #[test]
    fn short_traces_are_skipped() {
        let traces = vec![cipher_trace(4, 0)];
        let noise = Trace::from_samples(vec![0.0; 4]);
        let ds = DatasetBuilder::new(16).build(&traces, &noise);
        assert!(ds.is_empty());
    }

    #[test]
    fn standardized_windows_have_zero_mean() {
        let traces = vec![cipher_trace(64, 0)];
        let noise = Trace::from_samples((0..64).map(|x| x as f32).collect());
        let ds = DatasetBuilder::new(16).build(&traces, &noise);
        for w in ds.iter() {
            let mean: f32 = w.samples().iter().sum::<f32>() / w.len() as f32;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn noise_windows_default_to_cipher_start_count() {
        let traces: Vec<Trace> = (0..6).map(|_| cipher_trace(40, 4)).collect();
        let noise = Trace::from_samples(vec![0.3; 300]);
        let ds =
            DatasetBuilder::new(8).with_limits(usize::MAX, 0, usize::MAX).build(&traces, &noise);
        // 6 cipher-start windows and (by default) 6 noise windows.
        assert_eq!(ds.count_label(WindowLabel::CipherStart), 6);
        assert_eq!(ds.count_label(WindowLabel::NotStart), 6);
    }
}
