//! Hit-rate evaluation of located CO starts against ground truth
//! (the "Hits (%)" metric of Table II and Section IV-B).

use serde::{Deserialize, Serialize};

/// The result of comparing located CO starts with the ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitReport {
    /// Number of true COs that were matched by a located start.
    pub hits: usize,
    /// Total number of true COs.
    pub total: usize,
    /// Number of located starts that did not match any true CO (false alarms).
    pub false_positives: usize,
    /// Pairs `(true_start, located_start)` of the matches.
    pub matches: Vec<(usize, usize)>,
}

impl HitReport {
    /// Hit percentage (the "Hits (%)" column of Table II). 0.0 when there are
    /// no true COs.
    pub fn percentage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.total as f64
        }
    }

    /// `true` when every CO was located and there were no false alarms.
    pub fn is_perfect(&self) -> bool {
        self.hits == self.total && self.false_positives == 0
    }

    /// Mean absolute localisation error, in samples, over the matched COs
    /// (0.0 if nothing matched).
    pub fn mean_abs_error(&self) -> f64 {
        if self.matches.is_empty() {
            return 0.0;
        }
        self.matches.iter().map(|&(t, l)| t.abs_diff(l) as f64).sum::<f64>()
            / self.matches.len() as f64
    }
}

/// Scores located CO starts against ground truth.
///
/// A located start is a *hit* for a true CO if it falls within `tolerance`
/// samples of the true start; every true CO can be matched by at most one
/// located start and vice versa (greedy nearest matching in trace order).
pub fn hit_rate(located: &[usize], truth: &[usize], tolerance: usize) -> HitReport {
    let mut used = vec![false; located.len()];
    let mut matches = Vec::new();
    for &t in truth {
        // Find the closest unused located start within tolerance.
        let mut best: Option<(usize, usize)> = None; // (located index, distance)
        for (i, &l) in located.iter().enumerate() {
            if used[i] {
                continue;
            }
            let dist = l.abs_diff(t);
            if dist <= tolerance && best.is_none_or(|(_, d)| dist < d) {
                best = Some((i, dist));
            }
        }
        if let Some((i, _)) = best {
            used[i] = true;
            matches.push((t, located[i]));
        }
    }
    HitReport {
        hits: matches.len(),
        total: truth.len(),
        false_positives: used.iter().filter(|&&u| !u).count(),
        matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let r = hit_rate(&[100, 500, 900], &[102, 498, 903], 10);
        assert_eq!(r.hits, 3);
        assert_eq!(r.false_positives, 0);
        assert!(r.is_perfect());
        assert!((r.percentage() - 100.0).abs() < 1e-9);
        assert!(r.mean_abs_error() <= 4.0);
    }

    #[test]
    fn missed_and_false_positive() {
        let r = hit_rate(&[100, 700], &[100, 400], 50);
        assert_eq!(r.hits, 1);
        assert_eq!(r.total, 2);
        assert_eq!(r.false_positives, 1);
        assert!(!r.is_perfect());
        assert!((r.percentage() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn each_located_start_matches_at_most_one_co() {
        // One located start near two true COs can only satisfy one of them.
        let r = hit_rate(&[100], &[95, 105], 20);
        assert_eq!(r.hits, 1);
        assert_eq!(r.false_positives, 0);
    }

    #[test]
    fn zero_hits_when_nothing_located() {
        let r = hit_rate(&[], &[10, 20, 30], 5);
        assert_eq!(r.hits, 0);
        assert_eq!(r.percentage(), 0.0);
        assert_eq!(r.mean_abs_error(), 0.0);
    }

    #[test]
    fn empty_ground_truth() {
        let r = hit_rate(&[5], &[], 5);
        assert_eq!(r.total, 0);
        assert_eq!(r.percentage(), 0.0);
        assert_eq!(r.false_positives, 1);
    }

    #[test]
    fn tolerance_is_inclusive() {
        let r = hit_rate(&[110], &[100], 10);
        assert_eq!(r.hits, 1);
        let r = hit_rate(&[111], &[100], 10);
        assert_eq!(r.hits, 0);
    }
}
