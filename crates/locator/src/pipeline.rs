//! The end-to-end locator: trained CNN + sliding-window classification +
//! segmentation (+ optional alignment), assembled by [`LocatorBuilder`].
//!
//! This is the object a user of the library interacts with: feed it labelled
//! training material once (cipher traces with a known CO start and a noise
//! trace), then call [`CoLocator::locate`] on unknown traces.

use sca_trace::{SplitRatios, Trace};
use serde::{Deserialize, Serialize};

use crate::alignment::Aligner;
use crate::cnn::{CnnConfig, CoLocatorCnn};
use crate::dataset::DatasetBuilder;
use crate::profiles::CipherProfile;
use crate::segmentation::{SegmentationConfig, Segmenter};
use crate::sliding::SlidingWindowClassifier;
use crate::training::{Trainer, TrainingConfig, TrainingReport};

/// Builder assembling a [`CoLocator`] from training material.
#[derive(Debug, Clone)]
pub struct LocatorBuilder {
    n_train: usize,
    n_inf: usize,
    stride: usize,
    cipher_start_windows: usize,
    cipher_rest_windows: usize,
    noise_windows: usize,
    cnn_config: CnnConfig,
    training_config: TrainingConfig,
    segmentation_config: SegmentationConfig,
    split: SplitRatios,
    seed: u64,
}

impl LocatorBuilder {
    /// Starts a builder with explicit window sizes and stride.
    ///
    /// # Panics
    ///
    /// Panics if any of the three values is zero.
    pub fn new(n_train: usize, n_inf: usize, stride: usize) -> Self {
        assert!(n_train > 0 && n_inf > 0 && stride > 0, "window sizes and stride must be non-zero");
        Self {
            n_train,
            n_inf,
            stride,
            cipher_start_windows: usize::MAX,
            cipher_rest_windows: usize::MAX,
            noise_windows: usize::MAX,
            cnn_config: CnnConfig::scaled(),
            training_config: TrainingConfig::scaled(),
            segmentation_config: SegmentationConfig::default(),
            split: SplitRatios::paper(),
            seed: 7,
        }
    }

    /// Starts a builder from a per-cipher profile (Table I row or its scaled
    /// equivalent).
    pub fn from_profile(profile: &CipherProfile) -> Self {
        let mut b = Self::new(profile.n_train, profile.n_inf, profile.stride);
        b.cipher_start_windows = profile.cipher_start_windows;
        b.cipher_rest_windows = profile.cipher_rest_windows;
        b.noise_windows = profile.noise_windows;
        b.cnn_config = profile.cnn;
        b.training_config = profile.training;
        b.segmentation_config = profile.segmentation;
        b
    }

    /// Overrides the CNN configuration.
    pub fn cnn_config(mut self, config: CnnConfig) -> Self {
        self.cnn_config = config;
        self
    }

    /// Overrides the training configuration.
    pub fn training_config(mut self, config: TrainingConfig) -> Self {
        self.training_config = config;
        self
    }

    /// Overrides the segmentation configuration.
    pub fn segmentation_config(mut self, config: SegmentationConfig) -> Self {
        self.segmentation_config = config;
        self
    }

    /// Overrides the dataset-size limits (cipher start / cipher rest / noise).
    pub fn dataset_limits(mut self, start: usize, rest: usize, noise: usize) -> Self {
        self.cipher_start_windows = start;
        self.cipher_rest_windows = rest;
        self.noise_windows = noise;
        self
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the training dataset, trains the CNN and returns the ready
    /// locator together with the training report.
    ///
    /// `cipher_traces` must carry the CO start of their single CO in the
    /// trace metadata (as produced by the acquisition procedure with the NOP
    /// preamble); `noise_trace` is a trace of non-cryptographic activity.
    pub fn fit(&self, cipher_traces: &[Trace], noise_trace: &Trace) -> (CoLocator, TrainingReport) {
        let dataset = DatasetBuilder::new(self.n_train)
            .with_limits(self.cipher_start_windows, self.cipher_rest_windows, self.noise_windows)
            .with_seed(self.seed)
            .build(cipher_traces, noise_trace);
        let split = dataset.split(self.split, self.seed);
        let mut cnn = CoLocatorCnn::new(self.cnn_config.with_seed(self.seed.wrapping_add(1)));
        let trainer = Trainer::new(self.training_config);
        let report = trainer.train(&mut cnn, &split);
        let locator = CoLocator {
            cnn,
            sliding: SlidingWindowClassifier::new(self.n_inf, self.stride),
            segmenter: Segmenter::new(self.segmentation_config),
        };
        (locator, report)
    }
}

/// A trained CO locator (inference pipeline of Figure 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoLocator {
    cnn: CoLocatorCnn,
    sliding: SlidingWindowClassifier,
    segmenter: Segmenter,
}

impl CoLocator {
    /// Assembles a locator from an already trained CNN and explicit inference
    /// parameters.
    pub fn from_parts(
        cnn: CoLocatorCnn,
        sliding: SlidingWindowClassifier,
        segmenter: Segmenter,
    ) -> Self {
        Self { cnn, sliding, segmenter }
    }

    /// The sliding-window classifier parameters.
    pub fn sliding(&self) -> &SlidingWindowClassifier {
        &self.sliding
    }

    /// Sets the number of scoring threads used by [`Self::locate`]
    /// (`0` = one per available core). Scores are independent per window, so
    /// the located starts do not depend on the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sliding = self.sliding.with_threads(threads);
        self
    }

    /// The trained CNN.
    pub fn cnn(&self) -> &CoLocatorCnn {
        &self.cnn
    }

    /// The segmentation stage.
    pub fn segmenter(&self) -> &Segmenter {
        &self.segmenter
    }

    /// Decomposes the locator into its parts (CNN, sliding-window classifier,
    /// segmenter).
    pub fn into_parts(self) -> (CoLocatorCnn, SlidingWindowClassifier, Segmenter) {
        (self.cnn, self.sliding, self.segmenter)
    }

    /// Converts the locator into a [`crate::engine::LocatorEngine`], the
    /// share-everywhere serving front-end (batched multi-trace scoring and
    /// model persistence).
    pub fn into_engine(self) -> crate::engine::LocatorEngine {
        crate::engine::LocatorEngine::from_locator(self)
    }

    /// Runs the full inference pipeline on an unknown trace and returns the
    /// located CO start samples.
    ///
    /// Takes `&self`: the weights are shared across the scoring threads and
    /// never cloned or mutated.
    pub fn locate(&self, trace: &Trace) -> Vec<usize> {
        let swc = self.sliding.classify(&self.cnn, trace);
        self.segmenter.segment(&swc, self.sliding.stride())
    }

    /// Like [`Self::locate`] but also returns the raw sliding-window scores
    /// (useful for inspection / the qualitative Figure 1 example).
    pub fn locate_detailed(&self, trace: &Trace) -> (Vec<f32>, Vec<usize>) {
        let swc = self.sliding.classify(&self.cnn, trace);
        let starts = self.segmenter.segment(&swc, self.sliding.stride());
        (swc, starts)
    }

    /// Locates the COs and cuts `co_len`-sample aligned sub-traces at every
    /// located start (the Alignment stage of Figure 1).
    pub fn locate_and_align(&self, trace: &Trace, co_len: usize) -> Vec<Vec<f32>> {
        let starts = self.locate(trace);
        Aligner::new(co_len).align(trace, &starts).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmentation::ThresholdStrategy;
    use sca_trace::TraceMeta;

    /// Synthetic "cipher" with a strongly recognisable start pattern:
    /// a burst of high samples followed by a medium plateau, on a low-level
    /// background. No neural network heroics needed — the point of these
    /// tests is the plumbing of the full pipeline.
    fn synth_co(len: usize) -> Vec<f32> {
        (0..len).map(|i| if i < len / 4 { 1.0 } else { 0.5 }).collect()
    }

    fn cipher_trace(co_len: usize, lead: usize) -> Trace {
        let mut samples = vec![0.05f32; lead];
        samples.extend(synth_co(co_len));
        samples.extend(vec![0.05f32; lead]);
        let meta =
            TraceMeta { co_starts: vec![lead], co_ends: vec![lead + co_len], ..Default::default() };
        Trace::with_meta(samples, meta)
    }

    fn long_trace(co_len: usize, gaps: &[usize]) -> (Trace, Vec<usize>) {
        let mut samples = Vec::new();
        let mut truth = Vec::new();
        for &gap in gaps {
            samples.extend(vec![0.05f32; gap]);
            truth.push(samples.len());
            samples.extend(synth_co(co_len));
        }
        samples.extend(vec![0.05f32; 64]);
        (Trace::from_samples(samples), truth)
    }

    #[test]
    fn end_to_end_locates_synthetic_cos() {
        let co_len = 64;
        let cipher_traces: Vec<Trace> = (0..24).map(|i| cipher_trace(co_len, 20 + i % 5)).collect();
        let noise_trace = Trace::from_samples(vec![0.05f32; 2000]);
        let builder = LocatorBuilder::new(32, 24, 8)
            .cnn_config(CnnConfig { base_filters: 2, kernel_size: 3, seed: 11 })
            .training_config(TrainingConfig {
                epochs: 4,
                batch_size: 16,
                learning_rate: 5e-3,
                seed: 1,
            })
            .segmentation_config(SegmentationConfig {
                threshold: ThresholdStrategy::MidRange,
                median_filter_k: 3,
                min_distance_windows: 4,
            });
        let (locator, report) = builder.fit(&cipher_traces, &noise_trace);
        assert!(report.best_validation_accuracy() > 0.8, "report {report:?}");

        let (trace, truth) = long_trace(co_len, &[120, 200, 150]);
        let located = locator.locate(&trace);
        let hits = crate::evaluation::hit_rate(&located, &truth, 24);
        assert_eq!(hits.hits, truth.len(), "located {located:?} truth {truth:?}");
    }

    #[test]
    fn locate_and_align_returns_fixed_length_segments() {
        let co_len = 48;
        let cipher_traces: Vec<Trace> = (0..16).map(|_| cipher_trace(co_len, 24)).collect();
        let noise_trace = Trace::from_samples(vec![0.05f32; 1000]);
        let builder = LocatorBuilder::new(24, 24, 8)
            .cnn_config(CnnConfig { base_filters: 2, kernel_size: 3, seed: 2 })
            .training_config(TrainingConfig {
                epochs: 3,
                batch_size: 8,
                learning_rate: 5e-3,
                seed: 3,
            });
        let (locator, _) = builder.fit(&cipher_traces, &noise_trace);
        let (trace, truth) = long_trace(co_len, &[100, 180]);
        let aligned = locator.locate_and_align(&trace, co_len);
        assert!(!aligned.is_empty());
        assert!(aligned.iter().all(|a| a.len() == co_len));
        assert!(aligned.len() <= truth.len() + 1);
    }

    #[test]
    fn builder_from_profile_uses_profile_windows() {
        let profile = CipherProfile::scaled(sca_ciphers::CipherId::Aes128, 1000);
        let builder = LocatorBuilder::from_profile(&profile);
        assert_eq!(builder.n_train, profile.n_train);
        assert_eq!(builder.n_inf, profile.n_inf);
        assert_eq!(builder.stride, profile.stride);
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_stride_builder_panics() {
        LocatorBuilder::new(16, 16, 0);
    }
}
