//! Segmentation (Section III-D of the paper).
//!
//! The sliding-window classification signal `swc` is refined into CO start
//! samples in four steps:
//!
//! 1. compare every score with a threshold, producing a ±1 square wave (`Th`);
//! 2. apply a median filter of size `k` to remove isolated misclassifications
//!    (`MF`);
//! 3. detect the rising edges of the filtered square wave;
//! 4. multiply each edge index by the stride `s` to obtain trace samples.

use std::collections::VecDeque;

use sca_trace::{dsp, TraceError};
use serde::{Deserialize, Serialize};

/// How the threshold of the `Th` stage is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdStrategy {
    /// A fixed absolute threshold on the CNN score.
    Fixed(f32),
    /// Midpoint between the minimum and maximum observed scores (robust
    /// default: the class-1 scores at CO beginnings are well separated from
    /// the rest).
    MidRange,
    /// Mean of the scores plus `factor` standard deviations.
    MeanPlusStd(f32),
}

/// Segmentation-stage parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentationConfig {
    /// Threshold selection strategy.
    pub threshold: ThresholdStrategy,
    /// Median-filter window size `k` (odd).
    pub median_filter_k: usize,
    /// Minimum distance, in windows, between two reported CO starts
    /// (suppresses duplicate edges caused by residual score ripple).
    pub min_distance_windows: usize,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        Self { threshold: ThresholdStrategy::MidRange, median_filter_k: 5, min_distance_windows: 4 }
    }
}

impl SegmentationConfig {
    /// Checks the invariants the segmentation stages rely on (the fields are
    /// `pub`, so a config can be assembled in any state).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] if `median_filter_k` is zero
    /// or even.
    pub fn validate(&self) -> sca_trace::Result<()> {
        if self.median_filter_k == 0 || self.median_filter_k.is_multiple_of(2) {
            return Err(TraceError::InvalidParameter(format!(
                "median filter size must be odd and non-zero, got {}",
                self.median_filter_k
            )));
        }
        Ok(())
    }
}

/// The segmentation stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segmenter {
    config: SegmentationConfig,
}

impl Segmenter {
    /// Creates a segmenter.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (`median_filter_k` zero or
    /// even). Use [`Segmenter::try_new`] to handle the error instead — the
    /// config fields are `pub`, so nothing else enforces the invariant, and
    /// an invalid value used to surface only deep inside
    /// [`Segmenter::segment_detailed`] with a misleading message.
    pub fn new(config: SegmentationConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid segmentation config: {e}"))
    }

    /// Creates a segmenter, returning a typed error for an invalid
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] if `median_filter_k` is zero
    /// or even.
    pub fn try_new(config: SegmentationConfig) -> sca_trace::Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The segmentation configuration.
    pub fn config(&self) -> &SegmentationConfig {
        &self.config
    }

    /// Resolves the threshold value for a given score signal.
    ///
    /// NaN scores (which a degenerate window — e.g. all-zero samples fed to
    /// a pathological model — can produce) are ignored by the data-dependent
    /// strategies: a single NaN used to make the `MidRange`/`MeanPlusStd`
    /// threshold NaN, every `score > threshold` comparison false and the
    /// segmentation silently empty. A signal with *no* finite score resolves
    /// to `0.0`, which still yields no starts (NaN compares false), but now
    /// by construction rather than by accident.
    pub fn resolve_threshold(&self, swc: &[f32]) -> f32 {
        match self.config.threshold {
            ThresholdStrategy::Fixed(t) => t,
            ThresholdStrategy::MidRange => {
                // f32::min/f32::max already propagate the non-NaN operand,
                // so the fold is NaN-safe as long as the init values are.
                let min = swc.iter().copied().filter(|s| !s.is_nan()).fold(f32::INFINITY, f32::min);
                let max =
                    swc.iter().copied().filter(|s| !s.is_nan()).fold(f32::NEG_INFINITY, f32::max);
                if min.is_infinite() || max.is_infinite() {
                    return 0.0;
                }
                (min + max) / 2.0
            }
            ThresholdStrategy::MeanPlusStd(factor) => {
                if swc.iter().any(|s| s.is_nan()) {
                    let clean: Vec<f32> = swc.iter().copied().filter(|s| !s.is_nan()).collect();
                    if clean.is_empty() {
                        return 0.0;
                    }
                    sca_trace::stats::mean(&clean) + factor * sca_trace::stats::std(&clean)
                } else {
                    sca_trace::stats::mean(swc) + factor * sca_trace::stats::std(swc)
                }
            }
        }
    }

    /// Intermediate signals of a segmentation run (useful for inspection and
    /// for the qualitative Figure 1 example).
    pub fn segment_detailed(&self, swc: &[f32], stride: usize) -> SegmentationOutput {
        let threshold = self.resolve_threshold(swc);
        let square = dsp::threshold_square_wave(swc, threshold);
        // `new`/`try_new` validate the config, but a `Segmenter` could in
        // principle be materialised around them (e.g. by a real serde
        // backend instead of the offline no-op shim) — so if the filter
        // rejects the size anyway, panic with the actual error rather than
        // asserting a validation that may never have run.
        let filtered = dsp::median_filter(&square, self.config.median_filter_k)
            .unwrap_or_else(|e| panic!("invalid segmentation config: {e}"));
        let mut edges = dsp::rising_edges(&filtered);
        // A CO starting at the very first window has no preceding -1 sample;
        // treat a positive start of the wave as an edge at index 0.
        if filtered.first().copied().unwrap_or(-1.0) > 0.0 {
            edges.insert(0, 0);
        }
        // Enforce the minimum distance between starts.
        let mut deduped: Vec<usize> = Vec::with_capacity(edges.len());
        for e in edges {
            if deduped
                .last()
                .is_none_or(|&last| e - last >= self.config.min_distance_windows.max(1))
            {
                deduped.push(e);
            }
        }
        let co_starts = deduped.iter().map(|&e| e * stride).collect();
        SegmentationOutput { threshold, square_wave: square, filtered_wave: filtered, co_starts }
    }

    /// Runs the segmentation and returns the CO start samples.
    pub fn segment(&self, swc: &[f32], stride: usize) -> Vec<usize> {
        self.segment_detailed(swc, stride).co_starts
    }
}

impl Default for Segmenter {
    fn default() -> Self {
        Self::new(SegmentationConfig::default())
    }
}

/// Incremental segmentation over per-chunk spans of the `swc` signal.
///
/// The streaming locate path scores a long trace chunk by chunk and must not
/// retain the whole score signal. A `StreamingSegmenter` consumes score
/// spans as they are produced ([`StreamingSegmenter::push`]) and emits the
/// same CO starts as [`Segmenter::segment`] over the concatenated signal
/// ([`StreamingSegmenter::finish`]) — the two are pinned equal by the parity
/// tests.
///
/// Memory behaviour depends on the threshold strategy:
///
/// * [`ThresholdStrategy::Fixed`] runs **truly incrementally**: the state is
///   one median-filter window of the ±1 square wave (`k` values) plus the
///   edge bookkeeping — O(k), independent of the trace length.
/// * `MidRange` / `MeanPlusStd` derive the threshold from the *whole*
///   signal, which no single pass can know mid-stream; for those the
///   segmenter buffers the scores (O(windows) = O(trace / stride), still far
///   below the trace itself) and runs the batch path at `finish`.
///
/// # Example
///
/// ```rust
/// use sca_locator::{SegmentationConfig, Segmenter, StreamingSegmenter, ThresholdStrategy};
///
/// let config = SegmentationConfig {
///     threshold: ThresholdStrategy::Fixed(0.0),
///     median_filter_k: 3,
///     min_distance_windows: 2,
/// };
/// let swc: Vec<f32> = (0..64).map(|i| if (20..26).contains(&i) { 2.0 } else { -2.0 }).collect();
/// let mut streaming = StreamingSegmenter::new(config, 8);
/// for span in swc.chunks(7) {
///     streaming.push(span);
/// }
/// assert_eq!(streaming.finish(), Segmenter::new(config).segment(&swc, 8));
/// ```
#[derive(Debug, Clone)]
pub struct StreamingSegmenter {
    config: SegmentationConfig,
    stride: usize,
    mode: StreamingMode,
}

#[derive(Debug, Clone)]
enum StreamingMode {
    /// Fixed threshold: O(k) incremental state.
    Incremental(IncrementalState),
    /// Data-dependent threshold: the scores must be buffered.
    Buffered(Vec<f32>),
}

/// O(k) state of the incremental (fixed-threshold) path: the square wave is
/// materialised only inside one sliding median window.
#[derive(Debug, Clone)]
struct IncrementalState {
    threshold: f32,
    /// Ring of the most recent square-wave values, covering indices
    /// `[base, seen)` of the conceptual square wave.
    window: VecDeque<f32>,
    base: usize,
    /// Square-wave values consumed so far.
    seen: usize,
    /// Filtered values emitted so far (always `<= seen`).
    emitted: usize,
    /// Previous emitted filtered value (edge detection needs one of context).
    prev_filtered: f32,
    /// Last *kept* edge (post min-distance dedup), in window indices.
    last_edge: Option<usize>,
    /// Kept edges, in window indices.
    edges: Vec<usize>,
}

impl IncrementalState {
    fn new(threshold: f32) -> Self {
        Self {
            threshold,
            window: VecDeque::new(),
            base: 0,
            seen: 0,
            emitted: 0,
            prev_filtered: -1.0,
            last_edge: None,
            edges: Vec::new(),
        }
    }
}

impl StreamingSegmenter {
    /// Creates a streaming segmenter for score spans produced with the given
    /// window `stride` (used to map window indices to sample indices, as in
    /// [`Segmenter::segment`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, like [`Segmenter::new`].
    pub fn new(config: SegmentationConfig, stride: usize) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid segmentation config: {e}"));
        let mode = match config.threshold {
            ThresholdStrategy::Fixed(t) => StreamingMode::Incremental(IncrementalState::new(t)),
            _ => StreamingMode::Buffered(Vec::new()),
        };
        Self { config, stride, mode }
    }

    /// `true` if this segmenter runs in O(k) memory (fixed threshold) rather
    /// than buffering the score signal.
    pub fn is_incremental(&self) -> bool {
        matches!(self.mode, StreamingMode::Incremental(_))
    }

    /// Consumes the next span of sliding-window scores (chunks must arrive
    /// in window order, without gaps or overlap).
    pub fn push(&mut self, scores: &[f32]) {
        match &mut self.mode {
            StreamingMode::Buffered(buf) => buf.extend_from_slice(scores),
            StreamingMode::Incremental(state) => {
                let half = self.config.median_filter_k / 2;
                let min_distance = self.config.min_distance_windows.max(1);
                for &score in scores {
                    // Th stage, one sample at a time (NaN compares false → -1,
                    // exactly like `dsp::threshold_square_wave`).
                    state.window.push_back(if score > state.threshold { 1.0 } else { -1.0 });
                    state.seen += 1;
                    // Emit every filtered value whose right context is
                    // complete; the rest waits for more scores or `finish`.
                    while state.emitted + half < state.seen {
                        Self::emit_filtered(state, half, min_distance);
                    }
                }
            }
        }
    }

    /// Flushes the pending tail and returns the located CO start samples —
    /// identical to [`Segmenter::segment`] over the concatenated spans.
    pub fn finish(self) -> Vec<usize> {
        match self.mode {
            StreamingMode::Buffered(buf) => {
                Segmenter { config: self.config }.segment(&buf, self.stride)
            }
            StreamingMode::Incremental(mut state) => {
                let half = self.config.median_filter_k / 2;
                let min_distance = self.config.min_distance_windows.max(1);
                // The trailing `half` indices see a clamped (shrunken) median
                // window, exactly like the batch filter's border handling.
                while state.emitted < state.seen {
                    Self::emit_filtered(&mut state, half, min_distance);
                }
                state.edges.into_iter().map(|e| e * self.stride).collect()
            }
        }
    }

    /// Computes the next filtered value (median of the available square-wave
    /// window around `state.emitted`, clamped at both borders like
    /// `dsp::median_filter`) and runs edge detection + min-distance dedup on
    /// it.
    fn emit_filtered(state: &mut IncrementalState, half: usize, min_distance: usize) {
        let i = state.emitted;
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(state.seen);
        // The ±1 median at sorted index `len / 2` is -1 exactly when more
        // than `len / 2` values are negative.
        let negatives =
            state.window.iter().skip(lo - state.base).take(hi - lo).filter(|&&v| v < 0.0).count();
        let filtered = if negatives > (hi - lo) / 2 { -1.0 } else { 1.0 };

        // Rising-edge detection, including the batch path's index-0 rule (a
        // wave starting positive is an edge at 0).
        let is_edge =
            if i == 0 { filtered > 0.0 } else { state.prev_filtered < 0.0 && filtered >= 0.0 };
        if is_edge && state.last_edge.is_none_or(|last| i - last >= min_distance) {
            state.edges.push(i);
            state.last_edge = Some(i);
        }
        state.prev_filtered = filtered;
        state.emitted += 1;

        // Drop square-wave values no future median window can reach.
        let keep_from = state.emitted.saturating_sub(half);
        while state.base < keep_from {
            state.window.pop_front();
            state.base += 1;
        }
    }
}

/// All intermediate signals of one segmentation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentationOutput {
    /// The resolved threshold value.
    pub threshold: f32,
    /// The ±1 square wave after thresholding.
    pub square_wave: Vec<f32>,
    /// The square wave after median filtering.
    pub filtered_wave: Vec<f32>,
    /// The located CO start samples (edge index × stride).
    pub co_starts: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic swc signal with positive bumps at the given window
    /// indices (width `bump_width`), negative elsewhere.
    fn synthetic_swc(len: usize, bumps: &[usize], bump_width: usize) -> Vec<f32> {
        let mut swc = vec![-2.0f32; len];
        for &b in bumps {
            for v in swc[b..(b + bump_width).min(len)].iter_mut() {
                *v = 3.0;
            }
        }
        swc
    }

    #[test]
    fn locates_synthetic_bumps() {
        let swc = synthetic_swc(100, &[10, 40, 75], 6);
        let seg = Segmenter::default();
        let starts = seg.segment(&swc, 50);
        assert_eq!(starts, vec![10 * 50, 40 * 50, 75 * 50]);
    }

    #[test]
    fn median_filter_removes_single_window_glitches() {
        let mut swc = synthetic_swc(80, &[20, 60], 6);
        // Isolated false positive and a false negative inside the bump.
        swc[5] = 3.0;
        swc[23] = -2.0;
        let seg = Segmenter::new(SegmentationConfig {
            median_filter_k: 5,
            ..SegmentationConfig::default()
        });
        let starts = seg.segment(&swc, 10);
        assert_eq!(starts, vec![200, 600]);
    }

    #[test]
    fn bump_at_origin_is_detected() {
        let swc = synthetic_swc(50, &[0, 30], 6);
        let starts = Segmenter::default().segment(&swc, 4);
        assert_eq!(starts, vec![0, 120]);
    }

    #[test]
    fn fixed_and_meanstd_thresholds() {
        let swc = synthetic_swc(60, &[30], 8);
        let fixed = Segmenter::new(SegmentationConfig {
            threshold: ThresholdStrategy::Fixed(0.0),
            ..SegmentationConfig::default()
        });
        assert_eq!(fixed.segment(&swc, 1), vec![30]);
        let meanstd = Segmenter::new(SegmentationConfig {
            threshold: ThresholdStrategy::MeanPlusStd(1.0),
            ..SegmentationConfig::default()
        });
        assert_eq!(meanstd.segment(&swc, 1), vec![30]);
    }

    #[test]
    fn min_distance_suppresses_duplicates() {
        // Two bumps only 3 windows apart collapse into one start.
        let swc = synthetic_swc(40, &[10, 13], 2);
        let seg = Segmenter::new(SegmentationConfig {
            median_filter_k: 1,
            min_distance_windows: 6,
            ..SegmentationConfig::default()
        });
        let starts = seg.segment(&swc, 1);
        assert_eq!(starts, vec![10]);
    }

    #[test]
    fn empty_signal_yields_no_starts() {
        assert!(Segmenter::default().segment(&[], 10).is_empty());
    }

    #[test]
    fn even_or_zero_median_filter_is_rejected_at_construction() {
        // Regression: an even/zero `median_filter_k` used to slip through
        // `Segmenter::new` (the pub-field config was never validated) and
        // panic inside `segment_detailed` with the misleading message
        // "median filter size validated by configuration".
        for k in [0usize, 2, 4, 8] {
            let config = SegmentationConfig { median_filter_k: k, ..Default::default() };
            let err = Segmenter::try_new(config).unwrap_err();
            assert!(
                matches!(&err, TraceError::InvalidParameter(msg) if msg.contains("odd")),
                "k = {k}: {err:?}"
            );
        }
        assert!(Segmenter::try_new(SegmentationConfig::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid segmentation config")]
    fn new_panics_early_with_accurate_message_for_even_k() {
        Segmenter::new(SegmentationConfig { median_filter_k: 4, ..Default::default() });
    }

    #[test]
    fn nan_scores_do_not_poison_data_dependent_thresholds() {
        // Regression: one NaN made the MidRange/MeanPlusStd threshold NaN,
        // every comparison false, and the segmentation silently empty.
        let mut swc = synthetic_swc(100, &[10, 40, 75], 6);
        swc[3] = f32::NAN;
        swc[55] = f32::NAN;
        for threshold in [ThresholdStrategy::MidRange, ThresholdStrategy::MeanPlusStd(1.0)] {
            let seg = Segmenter::new(SegmentationConfig { threshold, ..Default::default() });
            let t = seg.resolve_threshold(&swc);
            assert!(t.is_finite(), "{threshold:?} resolved to {t}");
            let starts = seg.segment(&swc, 50);
            assert_eq!(starts, vec![10 * 50, 40 * 50, 75 * 50], "{threshold:?}");
        }
    }

    #[test]
    fn all_nan_signal_resolves_to_zero_and_no_starts() {
        let swc = vec![f32::NAN; 40];
        for threshold in [ThresholdStrategy::MidRange, ThresholdStrategy::MeanPlusStd(2.0)] {
            let seg = Segmenter::new(SegmentationConfig { threshold, ..Default::default() });
            assert_eq!(seg.resolve_threshold(&swc), 0.0);
            assert!(seg.segment(&swc, 4).is_empty());
        }
    }

    #[test]
    fn streaming_fixed_threshold_matches_batch_across_span_sizes() {
        let config = SegmentationConfig {
            threshold: ThresholdStrategy::Fixed(0.0),
            median_filter_k: 5,
            min_distance_windows: 3,
        };
        // Bumps at the borders, mid-signal, and closer than min_distance.
        let mut swc = synthetic_swc(200, &[0, 30, 34, 120, 195], 4);
        swc[60] = 3.0; // isolated glitch the median filter must remove
        swc[31] = -2.0; // notch inside a bump
        let batch = Segmenter::new(config).segment(&swc, 9);
        for span in [1usize, 2, 3, 7, 50, 200, 500] {
            let mut streaming = StreamingSegmenter::new(config, 9);
            assert!(streaming.is_incremental());
            for chunk in swc.chunks(span) {
                streaming.push(chunk);
            }
            assert_eq!(streaming.finish(), batch, "span {span}");
        }
    }

    #[test]
    fn streaming_data_dependent_threshold_matches_batch() {
        for threshold in [ThresholdStrategy::MidRange, ThresholdStrategy::MeanPlusStd(1.0)] {
            let config = SegmentationConfig { threshold, ..Default::default() };
            let swc = synthetic_swc(150, &[20, 80, 140], 6);
            let batch = Segmenter::new(config).segment(&swc, 5);
            let mut streaming = StreamingSegmenter::new(config, 5);
            assert!(!streaming.is_incremental());
            for chunk in swc.chunks(11) {
                streaming.push(chunk);
            }
            assert_eq!(streaming.finish(), batch, "{threshold:?}");
        }
    }

    #[test]
    fn streaming_empty_and_short_signals() {
        let config =
            SegmentationConfig { threshold: ThresholdStrategy::Fixed(0.0), ..Default::default() };
        assert!(StreamingSegmenter::new(config, 4).finish().is_empty());
        // One lone positive score: batch (shrunken median window) parity.
        let swc = [3.0f32];
        let batch = Segmenter::new(config).segment(&swc, 4);
        let mut streaming = StreamingSegmenter::new(config, 4);
        streaming.push(&swc);
        assert_eq!(streaming.finish(), batch);
    }

    #[test]
    fn streaming_randomized_signals_match_batch_exactly() {
        // Deterministic LCG noise: ±1-dense signals stress every filter and
        // edge path far more than clean bumps.
        let config = SegmentationConfig {
            threshold: ThresholdStrategy::Fixed(0.0),
            median_filter_k: 3,
            min_distance_windows: 2,
        };
        let mut state = 0x1234_5678_u64;
        for len in [1usize, 2, 5, 17, 64, 257] {
            let swc: Vec<f32> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) as f32 / (1u64 << 30) as f32) - 1.0
                })
                .collect();
            let batch = Segmenter::new(config).segment(&swc, 7);
            for span in [1usize, 3, 16] {
                let mut streaming = StreamingSegmenter::new(config, 7);
                for chunk in swc.chunks(span) {
                    streaming.push(chunk);
                }
                assert_eq!(streaming.finish(), batch, "len {len} span {span}");
            }
        }
    }

    #[test]
    fn detailed_output_is_consistent() {
        let swc = synthetic_swc(50, &[25], 5);
        let out = Segmenter::default().segment_detailed(&swc, 7);
        assert_eq!(out.square_wave.len(), 50);
        assert_eq!(out.filtered_wave.len(), 50);
        assert_eq!(out.co_starts, vec![25 * 7]);
        assert!(out.threshold > -2.0 && out.threshold < 3.0);
    }
}
