//! Segmentation (Section III-D of the paper).
//!
//! The sliding-window classification signal `swc` is refined into CO start
//! samples in four steps:
//!
//! 1. compare every score with a threshold, producing a ±1 square wave (`Th`);
//! 2. apply a median filter of size `k` to remove isolated misclassifications
//!    (`MF`);
//! 3. detect the rising edges of the filtered square wave;
//! 4. multiply each edge index by the stride `s` to obtain trace samples.

use sca_trace::dsp;
use serde::{Deserialize, Serialize};

/// How the threshold of the `Th` stage is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdStrategy {
    /// A fixed absolute threshold on the CNN score.
    Fixed(f32),
    /// Midpoint between the minimum and maximum observed scores (robust
    /// default: the class-1 scores at CO beginnings are well separated from
    /// the rest).
    MidRange,
    /// Mean of the scores plus `factor` standard deviations.
    MeanPlusStd(f32),
}

/// Segmentation-stage parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentationConfig {
    /// Threshold selection strategy.
    pub threshold: ThresholdStrategy,
    /// Median-filter window size `k` (odd).
    pub median_filter_k: usize,
    /// Minimum distance, in windows, between two reported CO starts
    /// (suppresses duplicate edges caused by residual score ripple).
    pub min_distance_windows: usize,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        Self { threshold: ThresholdStrategy::MidRange, median_filter_k: 5, min_distance_windows: 4 }
    }
}

/// The segmentation stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segmenter {
    config: SegmentationConfig,
}

impl Segmenter {
    /// Creates a segmenter.
    pub fn new(config: SegmentationConfig) -> Self {
        Self { config }
    }

    /// The segmentation configuration.
    pub fn config(&self) -> &SegmentationConfig {
        &self.config
    }

    /// Resolves the threshold value for a given score signal.
    pub fn resolve_threshold(&self, swc: &[f32]) -> f32 {
        match self.config.threshold {
            ThresholdStrategy::Fixed(t) => t,
            ThresholdStrategy::MidRange => {
                if swc.is_empty() {
                    return 0.0;
                }
                let min = swc.iter().copied().fold(f32::INFINITY, f32::min);
                let max = swc.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                (min + max) / 2.0
            }
            ThresholdStrategy::MeanPlusStd(factor) => {
                sca_trace::stats::mean(swc) + factor * sca_trace::stats::std(swc)
            }
        }
    }

    /// Intermediate signals of a segmentation run (useful for inspection and
    /// for the qualitative Figure 1 example).
    pub fn segment_detailed(&self, swc: &[f32], stride: usize) -> SegmentationOutput {
        let threshold = self.resolve_threshold(swc);
        let square = dsp::threshold_square_wave(swc, threshold);
        let filtered = dsp::median_filter(&square, self.config.median_filter_k)
            .expect("median filter size validated by configuration");
        let mut edges = dsp::rising_edges(&filtered);
        // A CO starting at the very first window has no preceding -1 sample;
        // treat a positive start of the wave as an edge at index 0.
        if filtered.first().copied().unwrap_or(-1.0) > 0.0 {
            edges.insert(0, 0);
        }
        // Enforce the minimum distance between starts.
        let mut deduped: Vec<usize> = Vec::with_capacity(edges.len());
        for e in edges {
            if deduped
                .last()
                .is_none_or(|&last| e - last >= self.config.min_distance_windows.max(1))
            {
                deduped.push(e);
            }
        }
        let co_starts = deduped.iter().map(|&e| e * stride).collect();
        SegmentationOutput { threshold, square_wave: square, filtered_wave: filtered, co_starts }
    }

    /// Runs the segmentation and returns the CO start samples.
    pub fn segment(&self, swc: &[f32], stride: usize) -> Vec<usize> {
        self.segment_detailed(swc, stride).co_starts
    }
}

impl Default for Segmenter {
    fn default() -> Self {
        Self::new(SegmentationConfig::default())
    }
}

/// All intermediate signals of one segmentation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentationOutput {
    /// The resolved threshold value.
    pub threshold: f32,
    /// The ±1 square wave after thresholding.
    pub square_wave: Vec<f32>,
    /// The square wave after median filtering.
    pub filtered_wave: Vec<f32>,
    /// The located CO start samples (edge index × stride).
    pub co_starts: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic swc signal with positive bumps at the given window
    /// indices (width `bump_width`), negative elsewhere.
    fn synthetic_swc(len: usize, bumps: &[usize], bump_width: usize) -> Vec<f32> {
        let mut swc = vec![-2.0f32; len];
        for &b in bumps {
            for v in swc[b..(b + bump_width).min(len)].iter_mut() {
                *v = 3.0;
            }
        }
        swc
    }

    #[test]
    fn locates_synthetic_bumps() {
        let swc = synthetic_swc(100, &[10, 40, 75], 6);
        let seg = Segmenter::default();
        let starts = seg.segment(&swc, 50);
        assert_eq!(starts, vec![10 * 50, 40 * 50, 75 * 50]);
    }

    #[test]
    fn median_filter_removes_single_window_glitches() {
        let mut swc = synthetic_swc(80, &[20, 60], 6);
        // Isolated false positive and a false negative inside the bump.
        swc[5] = 3.0;
        swc[23] = -2.0;
        let seg = Segmenter::new(SegmentationConfig {
            median_filter_k: 5,
            ..SegmentationConfig::default()
        });
        let starts = seg.segment(&swc, 10);
        assert_eq!(starts, vec![200, 600]);
    }

    #[test]
    fn bump_at_origin_is_detected() {
        let swc = synthetic_swc(50, &[0, 30], 6);
        let starts = Segmenter::default().segment(&swc, 4);
        assert_eq!(starts, vec![0, 120]);
    }

    #[test]
    fn fixed_and_meanstd_thresholds() {
        let swc = synthetic_swc(60, &[30], 8);
        let fixed = Segmenter::new(SegmentationConfig {
            threshold: ThresholdStrategy::Fixed(0.0),
            ..SegmentationConfig::default()
        });
        assert_eq!(fixed.segment(&swc, 1), vec![30]);
        let meanstd = Segmenter::new(SegmentationConfig {
            threshold: ThresholdStrategy::MeanPlusStd(1.0),
            ..SegmentationConfig::default()
        });
        assert_eq!(meanstd.segment(&swc, 1), vec![30]);
    }

    #[test]
    fn min_distance_suppresses_duplicates() {
        // Two bumps only 3 windows apart collapse into one start.
        let swc = synthetic_swc(40, &[10, 13], 2);
        let seg = Segmenter::new(SegmentationConfig {
            median_filter_k: 1,
            min_distance_windows: 6,
            ..SegmentationConfig::default()
        });
        let starts = seg.segment(&swc, 1);
        assert_eq!(starts, vec![10]);
    }

    #[test]
    fn empty_signal_yields_no_starts() {
        assert!(Segmenter::default().segment(&[], 10).is_empty());
    }

    #[test]
    fn detailed_output_is_consistent() {
        let swc = synthetic_swc(50, &[25], 5);
        let out = Segmenter::default().segment_detailed(&swc, 7);
        assert_eq!(out.square_wave.len(), 50);
        assert_eq!(out.filtered_wave.len(), 50);
        assert_eq!(out.co_starts, vec![25 * 7]);
        assert!(out.threshold > -2.0 && out.threshold < 3.0);
    }
}
