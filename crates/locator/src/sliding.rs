//! Sliding Window Classification (Section III-C of the paper).
//!
//! The inference trace is sliced into `N_inf`-sample windows with stride `s`;
//! every window is scored by the trained CNN with its linear class-1 output.
//! The resulting score signal (`swc`) exhibits a recurrent pattern at the CO
//! beginnings that the segmentation stage turns into start samples.

use sca_trace::{Trace, WindowSlicer};
use serde::{Deserialize, Serialize};

use crate::cnn::CoLocatorCnn;

/// The sliding-window classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlidingWindowClassifier {
    window_len: usize,
    stride: usize,
    batch_size: usize,
    standardize: bool,
}

impl SlidingWindowClassifier {
    /// Creates a classifier slicing `window_len`-sample windows with `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` or `stride` is zero.
    pub fn new(window_len: usize, stride: usize) -> Self {
        assert!(window_len > 0, "window length must be non-zero");
        assert!(stride > 0, "stride must be non-zero");
        Self { window_len, stride, batch_size: 64, standardize: true }
    }

    /// Sets the inference batch size (larger batches amortise per-call cost).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Enables/disables per-window standardisation (must match the dataset
    /// builder setting used during training).
    pub fn with_standardize(mut self, standardize: bool) -> Self {
        self.standardize = standardize;
        self
    }

    /// Inference window length `N_inf`.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Stride `s` between consecutive windows.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of score samples produced for a trace of `trace_len` samples.
    pub fn output_len(&self, trace_len: usize) -> usize {
        WindowSlicer::new(self.window_len, self.stride)
            .expect("parameters validated at construction")
            .window_count(trace_len)
    }

    /// Runs the sliding-window classification, returning the `swc` score
    /// signal (one score per window, in window order).
    pub fn classify(&self, cnn: &mut CoLocatorCnn, trace: &Trace) -> Vec<f32> {
        let slicer = WindowSlicer::new(self.window_len, self.stride)
            .expect("parameters validated at construction");
        let starts: Vec<usize> = slicer.window_starts(trace.len()).collect();
        let mut scores = Vec::with_capacity(starts.len());
        for chunk in starts.chunks(self.batch_size) {
            let windows: Vec<Vec<f32>> = chunk
                .iter()
                .map(|&s| {
                    let mut w = trace.samples()[s..s + self.window_len].to_vec();
                    if self.standardize {
                        sca_trace::dsp::standardize_in_place(&mut w);
                    }
                    w
                })
                .collect();
            let input = CoLocatorCnn::stack_windows(&windows);
            scores.extend(cnn.class1_scores(&input));
        }
        scores
    }

    /// Maps an index in the `swc` signal back to a trace sample index
    /// (multiplication by the stride, as in Section III-D).
    pub fn score_index_to_sample(&self, index: usize) -> usize {
        index * self.stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::CnnConfig;

    fn tiny_cnn() -> CoLocatorCnn {
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 3 })
    }

    #[test]
    fn output_length_matches_window_count() {
        let swc = SlidingWindowClassifier::new(16, 4);
        assert_eq!(swc.output_len(64), (64 - 16) / 4 + 1);
        assert_eq!(swc.output_len(10), 0);
        let mut cnn = tiny_cnn();
        let trace = Trace::from_samples(vec![0.1; 64]);
        let scores = swc.classify(&mut cnn, &trace);
        assert_eq!(scores.len(), swc.output_len(64));
    }

    #[test]
    fn score_index_mapping() {
        let swc = SlidingWindowClassifier::new(32, 8);
        assert_eq!(swc.score_index_to_sample(0), 0);
        assert_eq!(swc.score_index_to_sample(5), 40);
    }

    #[test]
    fn batching_does_not_change_scores() {
        let mut cnn_a = tiny_cnn();
        let mut cnn_b = tiny_cnn();
        let trace = Trace::from_samples((0..200).map(|x| (x as f32 * 0.1).sin()).collect());
        let small = SlidingWindowClassifier::new(16, 8).with_batch_size(2);
        let big = SlidingWindowClassifier::new(16, 8).with_batch_size(64);
        let a = small.classify(&mut cnn_a, &trace);
        let b = big.classify(&mut cnn_b, &trace);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        SlidingWindowClassifier::new(8, 0);
    }

    #[test]
    fn short_trace_yields_no_scores() {
        let swc = SlidingWindowClassifier::new(128, 16);
        let mut cnn = tiny_cnn();
        let scores = swc.classify(&mut cnn, &Trace::from_samples(vec![0.0; 50]));
        assert!(scores.is_empty());
    }
}
