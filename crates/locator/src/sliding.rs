//! Sliding Window Classification (Section III-C of the paper).
//!
//! The inference trace is sliced into `N_inf`-sample windows with stride `s`;
//! every window is scored by the trained CNN with its linear class-1 output.
//! The resulting score signal (`swc`) exhibits a recurrent pattern at the CO
//! beginnings that the segmentation stage turns into start samples.
//!
//! This stage dominates the pipeline's runtime (hundreds of thousands of CNN
//! forward passes on a long trace), so the scoring loop is zero-copy: windows
//! are written straight from the trace into one reused `[B, 1, N]` batch
//! tensor, standardised in place, and scored through
//! [`CoLocatorCnn::class1_scores_into`] without any per-window allocation.
//! Independent shards of the window list fan out across OS threads, every
//! shard scoring through **one shared `&CoLocatorCnn`** with its own
//! [`Workspace`] — the weights are never cloned. Per-window scores do not
//! depend on batching, so the output is identical for any thread or batch
//! configuration.
//!
//! For traces too long to hold in memory, [`SlidingWindowClassifier::classify_source`]
//! scores any [`TraceSource`] (e.g. an on-disk [`sca_trace::FileTraceSource`])
//! chunk by chunk — stride-aligned chunk boundaries with window-tail overlap
//! — producing the **bit-identical** `swc` signal in O(chunk) memory. The
//! chunks are double-buffered: a reader thread prefetches chunk `i + 1`
//! while chunk `i` is scored, hiding the source's read latency behind the
//! CNN work. Note that, in memory or streamed, only complete windows are
//! scored: trailing samples shorter than one window never contribute a
//! score (see [`SlidingWindowClassifier::output_len`]).

use sca_trace::{Trace, TraceError, TraceSource, WindowSlicer};
use serde::{Deserialize, Serialize};
use tinynn::Workspace;

use crate::cnn::{CoLocatorCnn, WindowScorer};

/// The sliding-window classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlidingWindowClassifier {
    window_len: usize,
    stride: usize,
    batch_size: usize,
    standardize: bool,
    threads: usize,
}

impl SlidingWindowClassifier {
    /// Creates a classifier slicing `window_len`-sample windows with `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` or `stride` is zero.
    pub fn new(window_len: usize, stride: usize) -> Self {
        assert!(window_len > 0, "window length must be non-zero");
        assert!(stride > 0, "stride must be non-zero");
        Self { window_len, stride, batch_size: 64, standardize: true, threads: 0 }
    }

    /// Sets the inference batch size (larger batches amortise per-call cost).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Enables/disables per-window standardisation (must match the dataset
    /// builder setting used during training).
    pub fn with_standardize(mut self, standardize: bool) -> Self {
        self.standardize = standardize;
        self
    }

    /// Sets the number of scoring threads (`0` = one per available core).
    /// Scores are independent per window, so any thread count produces
    /// identical output.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Inference window length `N_inf`.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Stride `s` between consecutive windows.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Inference batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Whether windows are standardised before scoring.
    pub fn standardize(&self) -> bool {
        self.standardize
    }

    /// Configured scoring thread count (`0` = one per available core).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of score samples produced for a trace of `trace_len` samples.
    ///
    /// Only *complete* windows are scored: trailing samples shorter than one
    /// window — up to `window_len + stride − 2` of them after the last
    /// stride-aligned window that fits — are never covered by any score, and
    /// a trace shorter than `window_len` yields an empty signal. This holds
    /// identically for [`Self::classify`] and [`Self::classify_source`] (see
    /// [`WindowSlicer::window_count`] for the underlying arithmetic).
    pub fn output_len(&self, trace_len: usize) -> usize {
        WindowSlicer::new(self.window_len, self.stride)
            .expect("parameters validated at construction")
            .window_count(trace_len)
    }

    /// Runs the sliding-window classification, returning the `swc` score
    /// signal (one score per window, in window order).
    ///
    /// Generic over [`WindowScorer`], so the `f32` CNN, its quantised
    /// counterpart and the engine's model wrapper all score through this one
    /// path (including the shard fan-out). The scorer is borrowed immutably:
    /// shards share the weights and allocate only a per-thread
    /// [`Workspace`].
    pub fn classify<S: WindowScorer>(&self, cnn: &S, trace: &Trace) -> Vec<f32> {
        let slicer = WindowSlicer::new(self.window_len, self.stride)
            .expect("parameters validated at construction");
        let starts: Vec<usize> = slicer.window_starts(trace.len()).collect();
        let mut scores = vec![0.0f32; starts.len()];
        self.score_starts(cnn, trace.samples(), &starts, &mut scores);
        scores
    }

    /// Runs the sliding-window classification over a [`TraceSource`] without
    /// ever holding more than one chunk of the trace in memory, returning
    /// the same `swc` signal as [`Self::classify`] **bit-identically**.
    ///
    /// The trace is scored in chunks of at most `chunk_len` samples. Chunk
    /// boundaries are aligned to the stride grid and consecutive chunks
    /// overlap by the tail a window needs (up to `window_len − 1` samples),
    /// so every window sees exactly the samples it would see in memory; the
    /// per-window scores then cannot differ (scoring is per-window
    /// independent — the same invariant that makes the thread fan-out
    /// exact). Chunks are double-buffered: a reader thread fetches chunk
    /// `i + 1` while chunk `i` is scored, so peak memory is two chunk
    /// buffers — O(`chunk_len` + `window_len`) each — independent of the
    /// trace length.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] if `chunk_len` is zero, and
    /// propagates source I/O failures.
    pub fn classify_source<S: WindowScorer, T: TraceSource + ?Sized>(
        &self,
        cnn: &S,
        source: &T,
        chunk_len: usize,
    ) -> sca_trace::Result<Vec<f32>> {
        let mut scores = Vec::with_capacity(self.output_len(source.len()));
        self.classify_source_with(cnn, source, chunk_len, |span| scores.extend_from_slice(span))?;
        Ok(scores)
    }

    /// Chunked scoring driver behind [`Self::classify_source`]: streams the
    /// `swc` signal to `sink` one chunk-span at a time (in window order,
    /// gap- and overlap-free) instead of collecting it, so a caller can
    /// segment incrementally without retaining the scores. Returns the total
    /// number of scores produced.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] if `chunk_len` is zero, and
    /// propagates source I/O failures.
    pub fn classify_source_with<S, T, F>(
        &self,
        cnn: &S,
        source: &T,
        chunk_len: usize,
        mut sink: F,
    ) -> sca_trace::Result<usize>
    where
        S: WindowScorer,
        T: TraceSource + ?Sized,
        F: FnMut(&[f32]),
    {
        if chunk_len == 0 {
            return Err(TraceError::InvalidParameter("chunk length must be > 0".into()));
        }
        let total_windows = self.output_len(source.len());
        if total_windows == 0 {
            return Ok(0);
        }
        // Windows per chunk: as many stride-aligned windows as fit in
        // `chunk_len` samples, but at least one (a chunk shorter than a
        // window would make no progress).
        let slicer = WindowSlicer::new(self.window_len, self.stride)
            .expect("parameters validated at construction");
        let windows_per_chunk = slicer.window_count(chunk_len).max(1);
        // Fills `buf` with the samples backing windows `[first, last)`.
        let fill_chunk = |buf: &mut Vec<f32>, first: usize| -> sca_trace::Result<()> {
            let last = (first + windows_per_chunk).min(total_windows);
            let sample_start = first * self.stride;
            let sample_end = (last - 1) * self.stride + self.window_len;
            buf.resize(sample_end - sample_start, 0.0);
            source.fill(sample_start, buf)
        };

        // Double-buffered streaming: while chunk i is scored, a reader
        // thread prefetches chunk i + 1 into the second buffer, hiding the
        // source's read latency behind the CNN work. Scoring order, chunk
        // geometry and every sample a window sees are exactly those of the
        // sequential loop this replaces, so the `swc` signal stays
        // bit-identical; a failed prefetch surfaces only after the
        // in-flight chunk's scores reach the sink, so the delivered score
        // prefix on error is the same as the sequential loop's.
        let mut cur: Vec<f32> = Vec::new();
        let mut next: Vec<f32> = Vec::new();
        let mut scores: Vec<f32> = Vec::new();
        let mut starts: Vec<usize> = Vec::new();
        fill_chunk(&mut cur, 0)?;
        let mut first = 0usize;
        while first < total_windows {
            let last = (first + windows_per_chunk).min(total_windows);
            // Window starts relative to the chunk buffer: the stride grid
            // re-based to the chunk's first sample.
            starts.clear();
            starts.extend((0..last - first).map(|i| i * self.stride));
            scores.resize(last - first, 0.0);
            let prefetch = if last < total_windows {
                let next_buf = &mut next;
                std::thread::scope(|scope| {
                    let reader = scope.spawn(move || fill_chunk(next_buf, last));
                    self.score_starts(cnn, &cur, &starts, &mut scores);
                    reader.join().expect("prefetch reader panicked")
                })
            } else {
                self.score_starts(cnn, &cur, &starts, &mut scores);
                Ok(())
            };
            sink(&scores);
            prefetch?;
            std::mem::swap(&mut cur, &mut next);
            first = last;
        }
        Ok(total_windows)
    }

    /// Scores the windows at `starts` (relative to `samples`) into `out`,
    /// fanning independent shards out across threads. This is the one
    /// scoring path shared by the in-memory and the chunked classifiers.
    fn score_starts<S: WindowScorer>(
        &self,
        cnn: &S,
        samples: &[f32],
        starts: &[usize],
        out: &mut [f32],
    ) {
        debug_assert_eq!(starts.len(), out.len());
        if starts.is_empty() {
            return;
        }
        let threads = self.effective_threads(starts.len());
        if threads <= 1 {
            let mut ws = Workspace::new();
            self.classify_shard(cnn, &mut ws, starts, samples, out);
        } else {
            let per_shard = starts.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (shard, shard_out) in starts.chunks(per_shard).zip(out.chunks_mut(per_shard)) {
                    scope.spawn(move || {
                        // The shards are the parallelism; the CNN's own batch
                        // fan-out must stay sequential inside them.
                        let _serial = tinynn::parallel::serial_region();
                        let mut ws = Workspace::new();
                        self.classify_shard(cnn, &mut ws, shard, samples, shard_out);
                    });
                }
            });
        }
    }

    /// The pre-optimisation scoring path (per-window `Vec` staging through
    /// [`CoLocatorCnn::stack_windows`]), kept as the reference for regression
    /// tests and the throughput benchmark.
    pub fn classify_reference(&self, cnn: &CoLocatorCnn, trace: &Trace) -> Vec<f32> {
        let slicer = WindowSlicer::new(self.window_len, self.stride)
            .expect("parameters validated at construction");
        let starts: Vec<usize> = slicer.window_starts(trace.len()).collect();
        let mut ws = Workspace::new();
        let mut scores = Vec::with_capacity(starts.len());
        for chunk in starts.chunks(self.batch_size) {
            let windows: Vec<Vec<f32>> = chunk
                .iter()
                .map(|&s| {
                    let mut w = trace.samples()[s..s + self.window_len].to_vec();
                    if self.standardize {
                        sca_trace::dsp::standardize_in_place(&mut w);
                    }
                    w
                })
                .collect();
            let input = CoLocatorCnn::stack_windows(&windows);
            scores.extend(cnn.class1_scores(&input, &mut ws));
        }
        scores
    }

    /// The full seed-equivalent baseline: per-window `Vec` staging *and*
    /// naive scalar convolution kernels
    /// ([`CoLocatorCnn::class1_scores_reference`]). This is the "before"
    /// measurement for the throughput benchmark; [`Self::classify`] must
    /// produce the same scores to within float reassociation error.
    pub fn classify_naive(&self, cnn: &CoLocatorCnn, trace: &Trace) -> Vec<f32> {
        let slicer = WindowSlicer::new(self.window_len, self.stride)
            .expect("parameters validated at construction");
        let starts: Vec<usize> = slicer.window_starts(trace.len()).collect();
        let mut ws = Workspace::new();
        let mut scores = Vec::with_capacity(starts.len());
        for chunk in starts.chunks(self.batch_size) {
            let windows: Vec<Vec<f32>> = chunk
                .iter()
                .map(|&s| {
                    let mut w = trace.samples()[s..s + self.window_len].to_vec();
                    if self.standardize {
                        sca_trace::dsp::standardize_in_place(&mut w);
                    }
                    w
                })
                .collect();
            let input = CoLocatorCnn::stack_windows(&windows);
            scores.extend(cnn.class1_scores_reference(&input, &mut ws));
        }
        scores
    }

    /// Thread count actually used for `windows` windows: the configured (or
    /// auto-detected) count, capped so every shard still gets at least two
    /// full batches of work (thread spawn has a cost, even if the weights are
    /// no longer cloned).
    fn effective_threads(&self, windows: usize) -> usize {
        let configured =
            if self.threads == 0 { tinynn::parallel::max_threads() } else { self.threads };
        configured.min(windows.div_ceil(2 * self.batch_size)).max(1)
    }

    /// Scores a contiguous shard of window starts into `out`, reusing one
    /// `[batch, 1, N]` tensor and one score buffer for the whole shard.
    fn classify_shard<S: WindowScorer>(
        &self,
        cnn: &S,
        ws: &mut Workspace,
        starts: &[usize],
        samples: &[f32],
        out: &mut [f32],
    ) {
        let n = self.window_len;
        let mut batch = ws.uninit_tensor(&[self.batch_size.min(starts.len()), 1, n]);
        let mut scores_buf: Vec<f32> = Vec::with_capacity(self.batch_size);
        let mut offset = 0usize;
        for chunk in starts.chunks(self.batch_size) {
            // The final chunk may be short; swap in a matching smaller
            // tensor from the arena (every row below is fully overwritten,
            // so stale arena contents never leak into a score).
            if chunk.len() * n != batch.len() {
                ws.recycle(batch);
                batch = ws.uninit_tensor(&[chunk.len(), 1, n]);
            }
            for (row, &start) in batch.data_mut().chunks_mut(n).zip(chunk.iter()) {
                row.copy_from_slice(&samples[start..start + n]);
                if self.standardize {
                    sca_trace::dsp::standardize_in_place(row);
                }
            }
            cnn.score_windows_into(&batch, ws, &mut scores_buf);
            out[offset..offset + chunk.len()].copy_from_slice(&scores_buf);
            offset += chunk.len();
        }
        ws.recycle(batch);
    }

    /// Maps an index in the `swc` signal back to a trace sample index
    /// (multiplication by the stride, as in Section III-D).
    pub fn score_index_to_sample(&self, index: usize) -> usize {
        index * self.stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::CnnConfig;

    fn tiny_cnn() -> CoLocatorCnn {
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 3 })
    }

    fn wavy_trace(len: usize) -> Trace {
        Trace::from_samples((0..len).map(|x| (x as f32 * 0.1).sin()).collect())
    }

    #[test]
    fn output_length_matches_window_count() {
        let swc = SlidingWindowClassifier::new(16, 4);
        assert_eq!(swc.output_len(64), (64 - 16) / 4 + 1);
        assert_eq!(swc.output_len(10), 0);
        let cnn = tiny_cnn();
        let trace = Trace::from_samples(vec![0.1; 64]);
        let scores = swc.classify(&cnn, &trace);
        assert_eq!(scores.len(), swc.output_len(64));
    }

    #[test]
    fn score_index_mapping() {
        let swc = SlidingWindowClassifier::new(32, 8);
        assert_eq!(swc.score_index_to_sample(0), 0);
        assert_eq!(swc.score_index_to_sample(5), 40);
    }

    #[test]
    fn batching_does_not_change_scores() {
        let cnn = tiny_cnn();
        let trace = wavy_trace(200);
        let small = SlidingWindowClassifier::new(16, 8).with_batch_size(2);
        let big = SlidingWindowClassifier::new(16, 8).with_batch_size(64);
        let a = small.classify(&cnn, &trace);
        let b = big.classify(&cnn, &trace);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_copy_path_matches_reference_exactly() {
        // Regression pin for the buffer-reuse rewrite: identical scores, not
        // merely close ones, for full and ragged final batches alike.
        for (window, stride, batch) in [(16, 8, 4), (16, 4, 7), (24, 16, 64)] {
            let swc = SlidingWindowClassifier::new(window, stride).with_batch_size(batch);
            let trace = wavy_trace(400);
            let fast = swc.classify(&tiny_cnn(), &trace);
            let reference = swc.classify_reference(&tiny_cnn(), &trace);
            assert_eq!(fast.len(), reference.len());
            for (a, b) in fast.iter().zip(reference.iter()) {
                assert!((a - b).abs() <= 1e-6, "zero-copy {a} vs reference {b}");
            }
        }
    }

    #[test]
    fn optimized_kernels_match_naive_network_end_to_end() {
        // Whole-network parity: GEMM kernels + zero-copy staging vs the
        // seed-equivalent naive path, within float reassociation error.
        let swc = SlidingWindowClassifier::new(24, 8).with_batch_size(8);
        let trace = wavy_trace(300);
        let fast = swc.classify(&tiny_cnn(), &trace);
        let naive = swc.classify_naive(&tiny_cnn(), &trace);
        assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(naive.iter()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "optimised {a} vs naive {b}");
        }
    }

    #[test]
    fn thread_count_does_not_change_scores() {
        let cnn = tiny_cnn();
        let trace = wavy_trace(600);
        let base = SlidingWindowClassifier::new(16, 4).with_batch_size(4);
        let sequential = base.with_threads(1).classify(&cnn, &trace);
        for threads in [2usize, 3, 8] {
            let parallel = base.with_threads(threads).classify(&cnn, &trace);
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn shared_weight_scores_match_staged_reference_across_thread_counts() {
        // Regression pin for the `&mut self` → `&self` redesign: the shared
        // weight path (one `&CoLocatorCnn`, per-thread workspaces — the old
        // path cloned the full CNN per shard per call) must reproduce the
        // per-window staged reference scores at 1e-6, whatever the thread
        // count.
        let cnn = tiny_cnn();
        let trace = wavy_trace(800);
        let base = SlidingWindowClassifier::new(16, 4).with_batch_size(4);
        let reference = base.classify_reference(&cnn, &trace);
        for threads in [1usize, 2, 3, 4, 8] {
            let scores = base.with_threads(threads).classify(&cnn, &trace);
            assert_eq!(scores.len(), reference.len());
            for (i, (a, b)) in scores.iter().zip(reference.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-6,
                    "threads={threads} window {i}: shared {a} vs reference {b}"
                );
            }
        }
    }

    #[test]
    fn chunked_source_scoring_is_bit_identical_to_in_memory() {
        let cnn = tiny_cnn();
        let trace = wavy_trace(500);
        for (window, stride) in [(16usize, 8usize), (16, 4), (24, 16), (16, 16), (24, 5)] {
            let swc = SlidingWindowClassifier::new(window, stride).with_batch_size(8);
            let in_memory = swc.classify(&cnn, &trace);
            // Chunks smaller than a window, equal to it, unaligned, and
            // larger than the whole trace.
            for chunk_len in [1usize, window - 1, window, 3 * window + 1, 100, 499, 500, 10_000] {
                let streamed = swc.classify_source(&cnn, &trace, chunk_len).unwrap();
                assert_eq!(streamed.len(), in_memory.len(), "chunk {chunk_len}");
                for (i, (a, b)) in streamed.iter().zip(in_memory.iter()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "window={window} stride={stride} chunk={chunk_len} score {i}: \
                         streamed {a} vs in-memory {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_source_rejects_zero_chunk_and_handles_short_traces() {
        let cnn = tiny_cnn();
        let swc = SlidingWindowClassifier::new(16, 4);
        assert!(swc.classify_source(&cnn, &wavy_trace(100), 0).is_err());
        // Shorter than one window: empty signal, no source reads needed.
        assert!(swc.classify_source(&cnn, &wavy_trace(10), 64).unwrap().is_empty());
        assert!(swc.classify_source(&cnn, &Trace::default(), 64).unwrap().is_empty());
    }

    #[test]
    fn chunked_spans_arrive_in_order_and_cover_everything() {
        let cnn = tiny_cnn();
        let trace = wavy_trace(300);
        let swc = SlidingWindowClassifier::new(16, 8).with_batch_size(4);
        let expected = swc.classify(&cnn, &trace);
        let mut collected = Vec::new();
        let mut spans = 0usize;
        let produced = swc
            .classify_source_with(&cnn, &trace, 64, |span| {
                assert!(!span.is_empty());
                collected.extend_from_slice(span);
                spans += 1;
            })
            .unwrap();
        assert_eq!(produced, expected.len());
        assert_eq!(collected, expected);
        assert!(spans > 1, "a 300-sample trace with 64-sample chunks must span multiple chunks");
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        SlidingWindowClassifier::new(8, 0);
    }

    #[test]
    fn short_trace_yields_no_scores() {
        let swc = SlidingWindowClassifier::new(128, 16);
        let cnn = tiny_cnn();
        let scores = swc.classify(&cnn, &Trace::from_samples(vec![0.0; 50]));
        assert!(scores.is_empty());
    }
}
