//! CNN training pipeline (Section IV-B of the paper): Adam on the
//! cross-entropy loss, mini-batches of 64, two epochs, best epoch selected by
//! validation error.

use sca_trace::{Dataset, DatasetSplit};
use serde::{Deserialize, Serialize};
use tinynn::{accuracy, Adam, ConfusionMatrix, CrossEntropyLoss, DataLoader, Workspace};

use crate::cnn::CoLocatorCnn;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of epochs (2 in the paper).
    pub epochs: usize,
    /// Mini-batch size (64 in the paper).
    pub batch_size: usize,
    /// Adam learning rate (0.001 in the paper).
    pub learning_rate: f32,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl TrainingConfig {
    /// The paper's hyper-parameters.
    pub fn paper() -> Self {
        Self { epochs: 2, batch_size: 64, learning_rate: 1e-3, seed: 1 }
    }

    /// CPU-scaled hyper-parameters: a few more epochs compensate for the much
    /// smaller dataset, with the paper's batch size and learning rate.
    pub fn scaled() -> Self {
        Self { epochs: 4, batch_size: 32, learning_rate: 2e-3, seed: 1 }
    }
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self::scaled()
    }
}

/// Per-epoch and final metrics of a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
    /// Validation loss per epoch.
    pub validation_losses: Vec<f32>,
    /// Validation accuracy per epoch.
    pub validation_accuracies: Vec<f64>,
    /// Index of the epoch whose weights were retained (lowest validation loss).
    pub best_epoch: usize,
}

impl TrainingReport {
    /// Validation accuracy of the retained epoch (0.0 when no epoch ran).
    pub fn best_validation_accuracy(&self) -> f64 {
        self.validation_accuracies.get(self.best_epoch).copied().unwrap_or(0.0)
    }
}

/// Trains and evaluates [`CoLocatorCnn`] classifiers.
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    config: TrainingConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainingConfig) -> Self {
        Self { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    fn loader(dataset: &Dataset, batch_size: usize) -> DataLoader {
        let samples: Vec<Vec<f32>> = dataset.iter().map(|w| w.samples().to_vec()).collect();
        let labels: Vec<usize> = dataset.iter().map(|w| w.label().class_index()).collect();
        DataLoader::new_signal(samples, labels, batch_size)
    }

    /// Trains `cnn` on the train split, evaluating on the validation split
    /// after every epoch and restoring the weights of the best epoch
    /// (lowest validation loss), as described in Section IV-B.
    ///
    /// # Panics
    ///
    /// Panics if the training split is empty.
    pub fn train(&self, cnn: &mut CoLocatorCnn, split: &DatasetSplit) -> TrainingReport {
        assert!(!split.train.is_empty(), "training split must not be empty");
        let loss_fn = CrossEntropyLoss::new();
        let mut optim = Adam::new(self.config.learning_rate);
        let train_loader = Self::loader(&split.train, self.config.batch_size);
        let mut report = TrainingReport::default();
        let mut best: Option<(f32, CoLocatorCnn)> = None;
        // One workspace serves every forward/backward pair of the run; its
        // buffers grow once to the high-water mark and are then reused.
        let mut ws = Workspace::new();

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for batch in train_loader.epoch(self.config.seed.wrapping_add(epoch as u64)) {
                let logits = cnn.forward(&batch.inputs, &mut ws, true);
                let (loss, grad) = loss_fn.loss_and_grad(&logits, &batch.labels);
                cnn.zero_grad();
                cnn.backward(&grad, &mut ws);
                optim.step(&mut cnn.params_mut());
                epoch_loss += loss as f64;
                batches += 1;
            }
            report.train_losses.push((epoch_loss / batches.max(1) as f64) as f32);

            let (val_loss, val_acc) = if split.validation.is_empty() {
                (report.train_losses[epoch], 0.0)
            } else {
                self.evaluate_loss(cnn, &split.validation)
            };
            report.validation_losses.push(val_loss);
            report.validation_accuracies.push(val_acc);

            if best.as_ref().is_none_or(|(l, _)| val_loss < *l) {
                best = Some((val_loss, cnn.clone()));
                report.best_epoch = epoch;
            }
        }
        if let Some((_, best_cnn)) = best {
            *cnn = best_cnn;
        }
        report
    }

    /// Mean loss and accuracy of `cnn` over a dataset (no weight updates).
    pub fn evaluate_loss(&self, cnn: &CoLocatorCnn, dataset: &Dataset) -> (f32, f64) {
        let loss_fn = CrossEntropyLoss::new();
        let loader = Self::loader(dataset, self.config.batch_size);
        let mut ws = Workspace::new();
        let mut total_loss = 0.0f64;
        let mut batches = 0usize;
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        for batch in loader.sequential() {
            let logits = cnn.forward(&batch.inputs, &mut ws, false);
            total_loss += loss_fn.loss(&logits, &batch.labels) as f64;
            batches += 1;
            preds.extend(logits.argmax_rows());
            labels.extend(batch.labels);
        }
        ((total_loss / batches.max(1) as f64) as f32, accuracy(&preds, &labels))
    }

    /// Builds the test confusion matrix of a trained classifier (Figure 3).
    pub fn confusion_matrix(&self, cnn: &CoLocatorCnn, dataset: &Dataset) -> ConfusionMatrix {
        let loader = Self::loader(dataset, self.config.batch_size);
        let mut cm = ConfusionMatrix::new(2);
        let mut ws = Workspace::new();
        let mut preds = Vec::with_capacity(self.config.batch_size);
        for batch in loader.sequential() {
            cnn.predict_into(&batch.inputs, &mut ws, &mut preds);
            cm.record_all(&batch.labels, &preds);
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::CnnConfig;
    use sca_trace::{SplitRatios, Window, WindowLabel};

    /// Builds a trivially separable dataset: class-1 windows contain a strong
    /// positive step at the origin, class-0 windows are flat noise.
    fn separable_dataset(n_per_class: usize, window: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n_per_class {
            let mut start = vec![0.0f32; window];
            for (j, v) in start.iter_mut().enumerate() {
                *v = if j < window / 2 { 1.0 } else { -1.0 } + 0.01 * (i % 7) as f32;
            }
            d.push(Window::new(start, WindowLabel::CipherStart, i));
            let flat = vec![0.02 * ((i % 5) as f32 - 2.0); window];
            d.push(Window::new(flat, WindowLabel::NotStart, i));
        }
        d
    }

    #[test]
    fn training_learns_separable_problem() {
        let split = separable_dataset(40, 24).split(SplitRatios::paper(), 3);
        let mut cnn = CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 5 });
        let trainer =
            Trainer::new(TrainingConfig { epochs: 3, batch_size: 8, learning_rate: 5e-3, seed: 1 });
        let report = trainer.train(&mut cnn, &split);
        assert_eq!(report.train_losses.len(), 3);
        assert!(report.best_validation_accuracy() > 0.9, "report: {report:?}");
        // The loss must decrease from the first to the best epoch.
        assert!(report.validation_losses[report.best_epoch] <= report.validation_losses[0] + 1e-6);
        // Test confusion matrix close to diagonal.
        let cm = trainer.confusion_matrix(&cnn, &split.test);
        assert!(cm.accuracy() > 0.9, "confusion matrix:\n{cm}");
    }

    #[test]
    fn evaluate_loss_without_training_is_near_chance() {
        let d = separable_dataset(10, 16);
        let cnn = CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 2 });
        let trainer = Trainer::default();
        let (loss, _acc) = trainer.evaluate_loss(&cnn, &d);
        // Untrained binary classifier: loss around ln(2) ~ 0.69.
        assert!(loss > 0.2 && loss < 2.0, "loss = {loss}");
    }

    #[test]
    #[should_panic(expected = "training split must not be empty")]
    fn empty_training_split_panics() {
        let mut cnn = CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 2 });
        Trainer::default().train(&mut cnn, &DatasetSplit::default());
    }

    #[test]
    fn paper_hyperparameters() {
        let c = TrainingConfig::paper();
        assert_eq!(c.epochs, 2);
        assert_eq!(c.batch_size, 64);
        assert!((c.learning_rate - 1e-3).abs() < 1e-9);
    }
}
