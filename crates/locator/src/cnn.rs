//! The 1-D ResNet-style CNN binary classifier (Section III-B, Figure 2).
//!
//! Architecture (exactly the block sequence of Figure 2):
//!
//! ```text
//! input [B, 1, N]
//!   └─ Conv1d(1 → f, k) ─ BatchNorm ─ ReLU          (convolutional block)
//!   └─ ResidualBlock(f → f, k)                       (residual block 1)
//!   └─ ResidualBlock(f → 2f, k)                      (residual block 2)
//!   └─ GlobalAvgPool  [B, 2f]
//!   └─ Linear(2f → 2f) ─ ReLU                        (fully connected block)
//!   └─ Linear(2f → 2)                                (class scores / logits)
//! ```
//!
//! The paper uses `f = 16` filters and kernel size 64; the scaled
//! configuration uses `f = 8`, kernel 9 (see [`CnnConfig::scaled`]).
//! The softmax is folded into the cross-entropy loss during training; at
//! inference the *linear* class-1 score (pre-softmax) is used as the sliding
//! window classification signal, as prescribed in Section III-C.
//!
//! The network holds **weights only**: `forward` takes `&self` plus an
//! explicit [`Workspace`], so one trained CNN can score windows from many
//! threads (and many traces) concurrently — each thread brings its own cheap
//! workspace instead of a clone of the weights.

use serde::{Deserialize, Serialize};
use tinynn::{
    forward_consuming, BatchNorm1d, Conv1d, GlobalAvgPool1d, Layer, Linear, Param, Relu,
    ResidualBlock1d, Tensor, Workspace,
};

/// Hyper-parameters of the CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Number of filters of the first convolutional block and the first
    /// residual block (the second residual block doubles it).
    pub base_filters: usize,
    /// Kernel size of every convolution.
    pub kernel_size: usize,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl CnnConfig {
    /// The paper's configuration: 16 filters, kernel size 64.
    pub fn paper() -> Self {
        Self { base_filters: 16, kernel_size: 64, seed: 1 }
    }

    /// CPU-scaled configuration: 8 filters, kernel size 9.
    pub fn scaled() -> Self {
        Self { base_filters: 8, kernel_size: 9, seed: 1 }
    }

    /// Returns a copy with a different initialisation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for CnnConfig {
    fn default() -> Self {
        Self::scaled()
    }
}

/// A model that can score batches of trace windows with the linear class-1
/// margin (the `swc` signal of Section III-C).
///
/// Implemented by the `f32` [`CoLocatorCnn`], its quantised counterpart
/// [`crate::qcnn::QuantizedCoLocatorCnn`], and the engine's model wrapper —
/// the sliding-window classifier (and therefore the whole shard fan-out and
/// batching machinery) is generic over this trait, so every scorer shares
/// one inference path.
pub trait WindowScorer: Send + Sync {
    /// Scores a `[B, 1, N]` batch of windows into `scores` (cleared first):
    /// one linear class-1 margin per window.
    fn score_windows_into(&self, input: &Tensor, ws: &mut Workspace, scores: &mut Vec<f32>);
}

impl WindowScorer for CoLocatorCnn {
    fn score_windows_into(&self, input: &Tensor, ws: &mut Workspace, scores: &mut Vec<f32>) {
        self.class1_scores_into(input, ws, scores);
    }
}

/// The CO-locator CNN of Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoLocatorCnn {
    config: CnnConfig,
    conv: Conv1d,
    bn: BatchNorm1d,
    relu: Relu,
    res1: ResidualBlock1d,
    res2: ResidualBlock1d,
    pool: GlobalAvgPool1d,
    fc1: Linear,
    fc_relu: Relu,
    fc2: Linear,
}

impl CoLocatorCnn {
    /// Builds the network from a configuration.
    pub fn new(config: CnnConfig) -> Self {
        let f = config.base_filters;
        let k = config.kernel_size;
        let s = config.seed;
        Self {
            config,
            conv: Conv1d::new(1, f, k, s),
            bn: BatchNorm1d::new(f),
            relu: Relu::new(),
            res1: ResidualBlock1d::new(f, f, k, s.wrapping_add(10)),
            res2: ResidualBlock1d::new(f, 2 * f, k, s.wrapping_add(20)),
            pool: GlobalAvgPool1d::new(),
            fc1: Linear::new(2 * f, 2 * f, s.wrapping_add(30)),
            fc_relu: Relu::new(),
            fc2: Linear::new(2 * f, 2, s.wrapping_add(40)),
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Shared access to the network's sub-layers, in forward order:
    /// `(conv, bn, res1, res2, fc1, fc2)`. Used by the quantised network to
    /// mirror the architecture.
    pub(crate) fn parts(
        &self,
    ) -> (&Conv1d, &BatchNorm1d, &ResidualBlock1d, &ResidualBlock1d, &Linear, &Linear) {
        (&self.conv, &self.bn, &self.res1, &self.res2, &self.fc1, &self.fc2)
    }

    /// Forward pass: windows `[B, 1, N]` → class logits `[B, 2]`.
    ///
    /// Shares the weights (`&self`); every piece of per-call state lives in
    /// `ws`, so concurrent callers each pass their own workspace.
    pub fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        let x = self.pooled_features(input, ws, training);
        let x = forward_consuming(&self.fc1, x, ws, training);
        let x = forward_consuming(&self.fc_relu, x, ws, training);
        forward_consuming(&self.fc2, x, ws, training)
    }

    /// Runs the convolutional backbone and global average pool only:
    /// windows `[B, 1, N]` → pooled features `[B, F2]`, the exact input the
    /// fully connected head sees. The quantiser compares these against its
    /// own pooled features to fold the quantised backbone's systematic
    /// offset into the head bias.
    pub fn pooled_features(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        // Each dead intermediate returns to the workspace arena as soon as
        // the next layer has consumed it (`forward_consuming`): after
        // warm-up a full inference pass performs zero heap allocations (see
        // `tinynn::Workspace`).
        let x = self.conv.forward(input, ws, training);
        let x = forward_consuming(&self.bn, x, ws, training);
        let x = forward_consuming(&self.relu, x, ws, training);
        let x = forward_consuming(&self.res1, x, ws, training);
        let x = forward_consuming(&self.res2, x, ws, training);
        forward_consuming(&self.pool, x, ws, training)
    }

    /// Backward pass for a batch previously run through [`Self::forward`]
    /// with `training == true` on the same workspace.
    pub fn backward(&mut self, grad_logits: &Tensor, ws: &mut Workspace) -> Tensor {
        let g = self.fc2.backward(grad_logits, ws);
        let g = self.fc_relu.backward(&g, ws);
        let g = self.fc1.backward(&g, ws);
        let g = self.pool.backward(&g, ws);
        let g = self.res2.backward(&g, ws);
        let g = self.res1.backward(&g, ws);
        let g = self.relu.backward(&g, ws);
        let g = self.bn.backward(&g, ws);
        self.conv.backward(&g, ws)
    }

    /// Shared access to every trainable parameter, in a fixed architecture
    /// order (matching [`Self::params_mut`] — the model persistence format
    /// relies on this order).
    pub fn params(&self) -> Vec<&Param> {
        let mut params = Vec::new();
        params.extend(self.conv.params());
        params.extend(self.bn.params());
        params.extend(self.res1.params());
        params.extend(self.res2.params());
        params.extend(self.fc1.params());
        params.extend(self.fc2.params());
        params
    }

    /// Mutable access to every trainable parameter (same order as
    /// [`Self::params`]).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.conv.params_mut());
        params.extend(self.bn.params_mut());
        params.extend(self.res1.params_mut());
        params.extend(self.res2.params_mut());
        params.extend(self.fc1.params_mut());
        params.extend(self.fc2.params_mut());
        params
    }

    /// Shared access to every non-trainable state buffer (batch-norm running
    /// statistics), in a fixed order matching [`Self::buffers_mut`].
    pub fn buffers(&self) -> Vec<&[f32]> {
        let mut buffers = Vec::new();
        buffers.extend(self.bn.buffers());
        buffers.extend(self.res1.buffers());
        buffers.extend(self.res2.buffers());
        buffers
    }

    /// Mutable access to every non-trainable state buffer (same order as
    /// [`Self::buffers`]).
    pub fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut buffers = Vec::new();
        buffers.extend(self.bn.buffers_mut());
        buffers.extend(self.res1.buffers_mut());
        buffers.extend(self.res2.buffers_mut());
        buffers
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Classifies a batch of windows, returning the predicted class index per
    /// window (0 = not start, 1 = cipher start).
    pub fn predict(&self, input: &Tensor, ws: &mut Workspace) -> Vec<usize> {
        let mut preds = Vec::new();
        self.predict_into(input, ws, &mut preds);
        preds
    }

    /// Like [`Self::predict`], but writes into a caller-owned buffer so batch
    /// loops allocate nothing per call. `preds` is cleared first.
    pub fn predict_into(&self, input: &Tensor, ws: &mut Workspace, preds: &mut Vec<usize>) {
        let logits = self.forward(input, ws, false);
        preds.clear();
        preds.reserve(logits.shape()[0]);
        for row in logits.data().chunks(logits.shape()[1]) {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate().skip(1) {
                if v > row[best] {
                    best = i;
                }
            }
            preds.push(best);
        }
        ws.recycle(logits);
    }

    /// Scores a batch of windows with the *linear* (pre-softmax) class-1
    /// output, the signal used by the sliding-window classification stage
    /// (Section III-C).
    pub fn class1_scores(&self, input: &Tensor, ws: &mut Workspace) -> Vec<f32> {
        let mut scores = Vec::new();
        self.class1_scores_into(input, ws, &mut scores);
        scores
    }

    /// Like [`Self::class1_scores`], but writes into a caller-owned buffer so
    /// the sliding-window loop allocates nothing per batch. `scores` is
    /// cleared first.
    pub fn class1_scores_into(&self, input: &Tensor, ws: &mut Workspace, scores: &mut Vec<f32>) {
        let logits = self.forward(input, ws, false);
        scores.clear();
        scores.reserve(logits.shape()[0]);
        for b in 0..logits.shape()[0] {
            scores.push(logits.at2(b, 1) - logits.at2(b, 0));
        }
        ws.recycle(logits);
    }

    /// Inference forward pass with every convolution and fully connected
    /// layer routed through its naive scalar reference implementation — the
    /// computational profile of the pre-GEMM seed. Used by throughput
    /// benchmarks and parity tests.
    pub fn forward_reference(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self.conv.forward_reference(input);
        let x = self.bn.forward(&x, ws, false);
        let x = self.relu.forward(&x, ws, false);
        let x = self.res1.forward_reference(&x, ws);
        let x = self.res2.forward_reference(&x, ws);
        let x = self.pool.forward(&x, ws, false);
        let x = self.fc1.forward_reference(&x);
        let x = self.fc_relu.forward(&x, ws, false);
        self.fc2.forward_reference(&x)
    }

    /// [`Self::class1_scores`] on top of [`Self::forward_reference`].
    pub fn class1_scores_reference(&self, input: &Tensor, ws: &mut Workspace) -> Vec<f32> {
        let logits = self.forward_reference(input, ws);
        (0..logits.shape()[0]).map(|b| logits.at2(b, 1) - logits.at2(b, 0)).collect()
    }

    /// Builds the `[B, 1, N]` input tensor from raw windows.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty or the windows have different lengths.
    pub fn stack_windows(windows: &[Vec<f32>]) -> Tensor {
        assert!(!windows.is_empty(), "cannot stack zero windows");
        let n = windows[0].len();
        assert!(windows.iter().all(|w| w.len() == n), "windows must share one length");
        let flat: Vec<f32> = windows.iter().flatten().copied().collect();
        Tensor::from_vec(flat, &[windows.len(), 1, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CnnConfig {
        CnnConfig { base_filters: 2, kernel_size: 3, seed: 7 }
    }

    #[test]
    fn forward_shapes() {
        let cnn = CoLocatorCnn::new(tiny_config());
        let mut ws = Workspace::new();
        let x = CoLocatorCnn::stack_windows(&[vec![0.1; 32], vec![-0.2; 32], vec![0.0; 32]]);
        let logits = cnn.forward(&x, &mut ws, true);
        ws.clear();
        assert_eq!(logits.shape(), &[3, 2]);
    }

    #[test]
    fn global_average_pooling_supports_different_window_lengths() {
        // The same network must accept N_train- and N_inf-sized windows
        // (Section III-B / IV-B).
        let cnn = CoLocatorCnn::new(tiny_config());
        let mut ws = Workspace::new();
        let train = CoLocatorCnn::stack_windows(&[vec![0.5; 40]]);
        let infer = CoLocatorCnn::stack_windows(&[vec![0.5; 24]]);
        assert_eq!(cnn.forward(&train, &mut ws, false).shape(), &[1, 2]);
        assert_eq!(cnn.forward(&infer, &mut ws, false).shape(), &[1, 2]);
    }

    #[test]
    fn param_count_grows_with_filters() {
        let small = CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 1 });
        let big = CoLocatorCnn::new(CnnConfig { base_filters: 4, kernel_size: 3, seed: 1 });
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    fn params_and_params_mut_agree_in_order() {
        let mut cnn = CoLocatorCnn::new(tiny_config());
        let shapes: Vec<Vec<usize>> =
            cnn.params().iter().map(|p| p.value.shape().to_vec()).collect();
        let shapes_mut: Vec<Vec<usize>> =
            cnn.params_mut().iter().map(|p| p.value.shape().to_vec()).collect();
        assert_eq!(shapes, shapes_mut);
        let buf_lens: Vec<usize> = cnn.buffers().iter().map(|b| b.len()).collect();
        let buf_lens_mut: Vec<usize> = cnn.buffers_mut().iter().map(|b| b.len()).collect();
        assert_eq!(buf_lens, buf_lens_mut);
        // 3 BatchNorm layers outside projections + 1 projection BN (res2
        // changes the channel count), 2 buffers each.
        assert_eq!(buf_lens.len(), 2 * 6);
    }

    #[test]
    fn paper_config_matches_figure2() {
        let c = CnnConfig::paper();
        assert_eq!(c.base_filters, 16);
        assert_eq!(c.kernel_size, 64);
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut cnn = CoLocatorCnn::new(tiny_config());
        let mut ws = Workspace::new();
        let x = CoLocatorCnn::stack_windows(&[vec![0.3; 16], vec![-0.3; 16]]);
        let logits = cnn.forward(&x, &mut ws, true);
        cnn.zero_grad();
        let grad =
            cnn.backward(&Tensor::from_vec(vec![1.0, -1.0, 0.5, -0.5], logits.shape()), &mut ws);
        assert_eq!(grad.shape(), x.shape());
        assert_eq!(ws.cache_depth(), 0, "backward must consume every layer cache");
        // Some parameter gradient must be non-zero.
        let any_nonzero = cnn.params().iter().any(|p| p.grad.max_abs() > 0.0);
        assert!(any_nonzero);
    }

    #[test]
    fn class1_scores_orders_like_softmax_probability() {
        let cnn = CoLocatorCnn::new(tiny_config());
        let mut ws = Workspace::new();
        let x = CoLocatorCnn::stack_windows(&[vec![0.9; 20], vec![-0.9; 20]]);
        let scores = cnn.class1_scores(&x, &mut ws);
        let logits = cnn.forward(&x, &mut ws, false);
        // The window with the larger class-1 margin also has the larger softmax probability.
        let p = |b: usize| {
            let row = logits.row(b);
            let m = row[1].max(row[0]);
            let e0 = (row[0] - m).exp();
            let e1 = (row[1] - m).exp();
            e1 / (e0 + e1)
        };
        if scores[0] > scores[1] {
            assert!(p(0) >= p(1));
        } else {
            assert!(p(1) >= p(0));
        }
    }

    #[test]
    #[should_panic(expected = "cannot stack zero windows")]
    fn stacking_no_windows_panics() {
        CoLocatorCnn::stack_windows(&[]);
    }

    #[test]
    fn predictions_are_binary() {
        let cnn = CoLocatorCnn::new(tiny_config());
        let mut ws = Workspace::new();
        let x = CoLocatorCnn::stack_windows(&vec![vec![0.0; 16]; 5]);
        let preds = cnn.predict(&x, &mut ws);
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn inference_forward_is_allocation_free_after_warmup() {
        // The output-activation arena contract: once the workspace has seen
        // the batch shape, repeated forwards must neither allocate (the
        // arena-miss counter freezes) nor grow any retained scratch buffer.
        let cnn = CoLocatorCnn::new(tiny_config());
        let mut ws = Workspace::new();
        let x = CoLocatorCnn::stack_windows(&vec![vec![0.25; 32]; 4]);
        let mut scores = Vec::new();
        for _ in 0..2 {
            cnn.class1_scores_into(&x, &mut ws, &mut scores);
        }
        let misses = ws.arena_misses();
        let retained = ws.retained_bytes();
        for _ in 0..10 {
            cnn.class1_scores_into(&x, &mut ws, &mut scores);
        }
        assert_eq!(ws.arena_misses(), misses, "steady-state forward must not allocate");
        assert_eq!(ws.retained_bytes(), retained, "steady-state forward must not grow scratch");
    }

    #[test]
    fn shared_cnn_scores_identically_across_threads() {
        // One CNN instance, several threads, per-thread workspaces: the
        // scores must be bit-identical to the single-threaded ones.
        let cnn = CoLocatorCnn::new(tiny_config());
        let x = CoLocatorCnn::stack_windows(&[vec![0.4; 24], vec![-0.1; 24]]);
        let mut ws = Workspace::new();
        let expected = cnn.class1_scores(&x, &mut ws);
        let cnn_ref = &cnn;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let x = x.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    let mut ws = Workspace::new();
                    assert_eq!(cnn_ref.class1_scores(&x, &mut ws), expected);
                });
            }
        });
    }
}
