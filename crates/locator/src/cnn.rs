//! The 1-D ResNet-style CNN binary classifier (Section III-B, Figure 2).
//!
//! Architecture (exactly the block sequence of Figure 2):
//!
//! ```text
//! input [B, 1, N]
//!   └─ Conv1d(1 → f, k) ─ BatchNorm ─ ReLU          (convolutional block)
//!   └─ ResidualBlock(f → f, k)                       (residual block 1)
//!   └─ ResidualBlock(f → 2f, k)                      (residual block 2)
//!   └─ GlobalAvgPool  [B, 2f]
//!   └─ Linear(2f → 2f) ─ ReLU                        (fully connected block)
//!   └─ Linear(2f → 2)                                (class scores / logits)
//! ```
//!
//! The paper uses `f = 16` filters and kernel size 64; the scaled
//! configuration uses `f = 8`, kernel 9 (see [`CnnConfig::scaled`]).
//! The softmax is folded into the cross-entropy loss during training; at
//! inference the *linear* class-1 score (pre-softmax) is used as the sliding
//! window classification signal, as prescribed in Section III-C.

use serde::{Deserialize, Serialize};
use tinynn::{
    BatchNorm1d, Conv1d, GlobalAvgPool1d, Layer, Linear, Param, Relu, ResidualBlock1d, Tensor,
};

/// Hyper-parameters of the CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Number of filters of the first convolutional block and the first
    /// residual block (the second residual block doubles it).
    pub base_filters: usize,
    /// Kernel size of every convolution.
    pub kernel_size: usize,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl CnnConfig {
    /// The paper's configuration: 16 filters, kernel size 64.
    pub fn paper() -> Self {
        Self { base_filters: 16, kernel_size: 64, seed: 1 }
    }

    /// CPU-scaled configuration: 8 filters, kernel size 9.
    pub fn scaled() -> Self {
        Self { base_filters: 8, kernel_size: 9, seed: 1 }
    }

    /// Returns a copy with a different initialisation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for CnnConfig {
    fn default() -> Self {
        Self::scaled()
    }
}

/// The CO-locator CNN of Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoLocatorCnn {
    config: CnnConfig,
    conv: Conv1d,
    bn: BatchNorm1d,
    relu: Relu,
    res1: ResidualBlock1d,
    res2: ResidualBlock1d,
    pool: GlobalAvgPool1d,
    fc1: Linear,
    fc_relu: Relu,
    fc2: Linear,
}

impl CoLocatorCnn {
    /// Builds the network from a configuration.
    pub fn new(config: CnnConfig) -> Self {
        let f = config.base_filters;
        let k = config.kernel_size;
        let s = config.seed;
        Self {
            config,
            conv: Conv1d::new(1, f, k, s),
            bn: BatchNorm1d::new(f),
            relu: Relu::new(),
            res1: ResidualBlock1d::new(f, f, k, s.wrapping_add(10)),
            res2: ResidualBlock1d::new(f, 2 * f, k, s.wrapping_add(20)),
            pool: GlobalAvgPool1d::new(),
            fc1: Linear::new(2 * f, 2 * f, s.wrapping_add(30)),
            fc_relu: Relu::new(),
            fc2: Linear::new(2 * f, 2, s.wrapping_add(40)),
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Forward pass: windows `[B, 1, N]` → class logits `[B, 2]`.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let x = self.conv.forward(input, training);
        let x = self.bn.forward(&x, training);
        let x = self.relu.forward(&x, training);
        let x = self.res1.forward(&x, training);
        let x = self.res2.forward(&x, training);
        let x = self.pool.forward(&x, training);
        let x = self.fc1.forward(&x, training);
        let x = self.fc_relu.forward(&x, training);
        self.fc2.forward(&x, training)
    }

    /// Backward pass for a batch previously run through [`Self::forward`].
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let g = self.fc2.backward(grad_logits);
        let g = self.fc_relu.backward(&g);
        let g = self.fc1.backward(&g);
        let g = self.pool.backward(&g);
        let g = self.res2.backward(&g);
        let g = self.res1.backward(&g);
        let g = self.relu.backward(&g);
        let g = self.bn.backward(&g);
        self.conv.backward(&g)
    }

    /// Mutable access to every trainable parameter.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.conv.params_mut());
        params.extend(self.bn.params_mut());
        params.extend(self.res1.params_mut());
        params.extend(self.res2.params_mut());
        params.extend(self.fc1.params_mut());
        params.extend(self.fc2.params_mut());
        params
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Classifies a batch of windows, returning the predicted class index per
    /// window (0 = not start, 1 = cipher start).
    pub fn predict(&mut self, input: &Tensor) -> Vec<usize> {
        let mut preds = Vec::new();
        self.predict_into(input, &mut preds);
        preds
    }

    /// Like [`Self::predict`], but writes into a caller-owned buffer so batch
    /// loops allocate nothing per call. `preds` is cleared first.
    pub fn predict_into(&mut self, input: &Tensor, preds: &mut Vec<usize>) {
        let logits = self.forward(input, false);
        preds.clear();
        preds.reserve(logits.shape()[0]);
        for row in logits.data().chunks(logits.shape()[1]) {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate().skip(1) {
                if v > row[best] {
                    best = i;
                }
            }
            preds.push(best);
        }
    }

    /// Scores a batch of windows with the *linear* (pre-softmax) class-1
    /// output, the signal used by the sliding-window classification stage
    /// (Section III-C).
    pub fn class1_scores(&mut self, input: &Tensor) -> Vec<f32> {
        let mut scores = Vec::new();
        self.class1_scores_into(input, &mut scores);
        scores
    }

    /// Like [`Self::class1_scores`], but writes into a caller-owned buffer so
    /// the sliding-window loop allocates nothing per batch. `scores` is
    /// cleared first.
    pub fn class1_scores_into(&mut self, input: &Tensor, scores: &mut Vec<f32>) {
        let logits = self.forward(input, false);
        scores.clear();
        scores.reserve(logits.shape()[0]);
        for b in 0..logits.shape()[0] {
            scores.push(logits.at2(b, 1) - logits.at2(b, 0));
        }
    }

    /// Inference forward pass with every convolution and fully connected
    /// layer routed through its naive scalar reference implementation — the
    /// computational profile of the pre-GEMM seed. Used by throughput
    /// benchmarks and parity tests.
    pub fn forward_reference(&mut self, input: &Tensor) -> Tensor {
        let x = self.conv.forward_reference(input);
        let x = self.bn.forward(&x, false);
        let x = self.relu.forward(&x, false);
        let x = self.res1.forward_reference(&x);
        let x = self.res2.forward_reference(&x);
        let x = self.pool.forward(&x, false);
        let x = self.fc1.forward_reference(&x);
        let x = self.fc_relu.forward(&x, false);
        self.fc2.forward_reference(&x)
    }

    /// [`Self::class1_scores`] on top of [`Self::forward_reference`].
    pub fn class1_scores_reference(&mut self, input: &Tensor) -> Vec<f32> {
        let logits = self.forward_reference(input);
        (0..logits.shape()[0]).map(|b| logits.at2(b, 1) - logits.at2(b, 0)).collect()
    }

    /// Builds the `[B, 1, N]` input tensor from raw windows.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty or the windows have different lengths.
    pub fn stack_windows(windows: &[Vec<f32>]) -> Tensor {
        assert!(!windows.is_empty(), "cannot stack zero windows");
        let n = windows[0].len();
        assert!(windows.iter().all(|w| w.len() == n), "windows must share one length");
        let flat: Vec<f32> = windows.iter().flatten().copied().collect();
        Tensor::from_vec(flat, &[windows.len(), 1, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CnnConfig {
        CnnConfig { base_filters: 2, kernel_size: 3, seed: 7 }
    }

    #[test]
    fn forward_shapes() {
        let mut cnn = CoLocatorCnn::new(tiny_config());
        let x = CoLocatorCnn::stack_windows(&[vec![0.1; 32], vec![-0.2; 32], vec![0.0; 32]]);
        let logits = cnn.forward(&x, true);
        assert_eq!(logits.shape(), &[3, 2]);
    }

    #[test]
    fn global_average_pooling_supports_different_window_lengths() {
        // The same network must accept N_train- and N_inf-sized windows
        // (Section III-B / IV-B).
        let mut cnn = CoLocatorCnn::new(tiny_config());
        let train = CoLocatorCnn::stack_windows(&[vec![0.5; 40]]);
        let infer = CoLocatorCnn::stack_windows(&[vec![0.5; 24]]);
        assert_eq!(cnn.forward(&train, false).shape(), &[1, 2]);
        assert_eq!(cnn.forward(&infer, false).shape(), &[1, 2]);
    }

    #[test]
    fn param_count_grows_with_filters() {
        let mut small = CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 1 });
        let mut big = CoLocatorCnn::new(CnnConfig { base_filters: 4, kernel_size: 3, seed: 1 });
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    fn paper_config_matches_figure2() {
        let c = CnnConfig::paper();
        assert_eq!(c.base_filters, 16);
        assert_eq!(c.kernel_size, 64);
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut cnn = CoLocatorCnn::new(tiny_config());
        let x = CoLocatorCnn::stack_windows(&[vec![0.3; 16], vec![-0.3; 16]]);
        let logits = cnn.forward(&x, true);
        cnn.zero_grad();
        let grad = cnn.backward(&Tensor::from_vec(vec![1.0, -1.0, 0.5, -0.5], logits.shape()));
        assert_eq!(grad.shape(), x.shape());
        // Some parameter gradient must be non-zero.
        let any_nonzero = cnn.params_mut().iter().any(|p| p.grad.max_abs() > 0.0);
        assert!(any_nonzero);
    }

    #[test]
    fn class1_scores_orders_like_softmax_probability() {
        let mut cnn = CoLocatorCnn::new(tiny_config());
        let x = CoLocatorCnn::stack_windows(&[vec![0.9; 20], vec![-0.9; 20]]);
        let scores = cnn.class1_scores(&x);
        let logits = cnn.forward(&x, false);
        // The window with the larger class-1 margin also has the larger softmax probability.
        let p = |b: usize| {
            let row = logits.row(b);
            let m = row[1].max(row[0]);
            let e0 = (row[0] - m).exp();
            let e1 = (row[1] - m).exp();
            e1 / (e0 + e1)
        };
        if scores[0] > scores[1] {
            assert!(p(0) >= p(1));
        } else {
            assert!(p(1) >= p(0));
        }
    }

    #[test]
    #[should_panic(expected = "cannot stack zero windows")]
    fn stacking_no_windows_panics() {
        CoLocatorCnn::stack_windows(&[]);
    }

    #[test]
    fn predictions_are_binary() {
        let mut cnn = CoLocatorCnn::new(tiny_config());
        let x = CoLocatorCnn::stack_windows(&vec![vec![0.0; 16]; 5]);
        let preds = cnn.predict(&x);
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|&p| p < 2));
    }
}
