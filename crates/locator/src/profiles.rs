//! Per-cipher pipeline parameters (Table I of the paper) and their
//! CPU-scaled equivalents used by this reproduction.
//!
//! The paper's traces were captured at 125 Ms/s from a 50 MHz SoC, so a single
//! AES-128 execution spans ~220 k samples and the CNN is trained on 22 k-sample
//! windows — far too large for the pure-CPU training loop of this
//! reproduction. [`ProfileKind::Scaled`] keeps the *ratios* of Table I
//! (N_train ≈ 10 % of the mean CO length, N_inf ≤ N_train, stride ≈ N_train/20)
//! while shrinking absolute sizes by roughly two orders of magnitude.

use serde::{Deserialize, Serialize};

/// Table I cipher identifiers re-exported for convenience.
pub use sca_ciphers::CipherId;

use crate::cnn::CnnConfig;
use crate::segmentation::SegmentationConfig;
use crate::training::TrainingConfig;

/// Which parameter set a profile carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileKind {
    /// The exact values reported in Table I of the paper (documentativo;
    /// training at this scale requires the paper's GPU setup).
    Paper,
    /// CPU-scaled values preserving the Table I ratios, used by the tests,
    /// examples and experiment binaries of this repository.
    Scaled,
}

/// The full per-cipher pipeline parameter set (one row of Table I plus the
/// CNN / segmentation / training hyper-parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CipherProfile {
    /// Cipher this profile applies to.
    pub cipher: CipherId,
    /// Parameter-set kind.
    pub kind: ProfileKind,
    /// Mean CO length in samples (measured on the respective platform).
    pub mean_co_len: usize,
    /// Training window size `N_train`.
    pub n_train: usize,
    /// Inference window size `N_inf`.
    pub n_inf: usize,
    /// Sliding stride `s`.
    pub stride: usize,
    /// Number of `cipher start` windows in the training dataset.
    pub cipher_start_windows: usize,
    /// Number of `cipher rest` windows in the training dataset.
    pub cipher_rest_windows: usize,
    /// Number of noise windows in the training dataset.
    pub noise_windows: usize,
    /// CNN hyper-parameters.
    pub cnn: CnnConfig,
    /// Segmentation parameters.
    pub segmentation: SegmentationConfig,
    /// Training hyper-parameters.
    pub training: TrainingConfig,
}

impl CipherProfile {
    /// The Table I row for `cipher` (paper-scale parameters).
    pub fn paper(cipher: CipherId) -> Self {
        let (mean, n_train, n_inf, stride, start, rest, noise) = match cipher {
            CipherId::Aes128 => (220_000, 22_000, 20_000, 1_000, 65_536, 65_536, 32_768),
            CipherId::MaskedAes128 => (50_000, 4_800, 5_000, 100, 131_072, 65_536, 65_536),
            CipherId::Clefia128 => (108_000, 6_000, 6_000, 500, 65_536, 32_768, 32_768),
            CipherId::Camellia128 => (6_000, 1_400, 1_000, 100, 32_768, 65_536, 32_768),
            CipherId::Simon128 => (10_000, 2_000, 2_000, 100, 65_536, 32_768, 32_768),
        };
        Self {
            cipher,
            kind: ProfileKind::Paper,
            mean_co_len: mean,
            n_train,
            n_inf,
            stride,
            cipher_start_windows: start,
            cipher_rest_windows: rest,
            noise_windows: noise,
            cnn: CnnConfig::paper(),
            segmentation: SegmentationConfig::default(),
            training: TrainingConfig::paper(),
        }
    }

    /// CPU-scaled profile for `cipher`, preserving the Table I ratios.
    ///
    /// `mean_co_len` should be the mean CO length measured on the simulated
    /// platform (e.g. via `SocSimulator::mean_co_samples`); the window sizes
    /// and stride are derived from it the same way the paper derives its own
    /// from the measured CO lengths.
    pub fn scaled(cipher: CipherId, mean_co_len: usize) -> Self {
        // N_train ≈ 10 % of the CO (as in Table I for AES/Clefia/AES-mask),
        // clamped to a CPU-friendly range.
        let n_train = (mean_co_len / 10).clamp(48, 256);
        let n_inf = (n_train * 9 / 10).max(32);
        let stride = (n_train / 16).max(4);
        Self {
            cipher,
            kind: ProfileKind::Scaled,
            mean_co_len,
            n_train,
            n_inf,
            stride,
            cipher_start_windows: 192,
            cipher_rest_windows: 192,
            noise_windows: 128,
            cnn: CnnConfig::scaled(),
            segmentation: SegmentationConfig::default(),
            training: TrainingConfig::scaled(),
        }
    }

    /// All five paper profiles in Table I order.
    pub fn paper_all() -> Vec<Self> {
        CipherId::ALL.iter().map(|&c| Self::paper(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profiles_match_table1() {
        let aes = CipherProfile::paper(CipherId::Aes128);
        assert_eq!(aes.mean_co_len, 220_000);
        assert_eq!(aes.n_train, 22_000);
        assert_eq!(aes.n_inf, 20_000);
        assert_eq!(aes.stride, 1_000);
        assert_eq!(aes.cipher_start_windows, 65_536);

        let masked = CipherProfile::paper(CipherId::MaskedAes128);
        assert_eq!(masked.n_train, 4_800);
        assert_eq!(masked.cipher_start_windows, 131_072);

        let camellia = CipherProfile::paper(CipherId::Camellia128);
        assert_eq!(camellia.mean_co_len, 6_000);
        assert_eq!(camellia.stride, 100);

        assert_eq!(CipherProfile::paper_all().len(), 5);
    }

    #[test]
    fn scaled_profile_preserves_ratios() {
        let p = CipherProfile::scaled(CipherId::Aes128, 2_000);
        assert_eq!(p.kind, ProfileKind::Scaled);
        // N_train about 10 % of the CO length.
        assert!(p.n_train >= 150 && p.n_train <= 256, "n_train = {}", p.n_train);
        assert!(p.n_inf <= p.n_train);
        assert!(p.stride >= 4 && p.stride < p.n_train);
    }

    #[test]
    fn scaled_profile_clamps_tiny_cos() {
        let p = CipherProfile::scaled(CipherId::Simon128, 100);
        assert!(p.n_train >= 48);
        assert!(p.n_inf >= 32);
        assert!(p.stride >= 4);
    }

    #[test]
    fn paper_inference_window_never_exceeds_training_window_by_much() {
        // Global average pooling allows N_inf != N_train; Table I keeps
        // N_inf <= N_train except for masked AES (5000 vs 4800).
        for p in CipherProfile::paper_all() {
            assert!(p.n_inf as f64 <= p.n_train as f64 * 1.1, "{:?}", p.cipher);
        }
    }
}
