//! The shared-weight serving engine: profile once, score many traces.
//!
//! The paper's workflow (and the follow-up localisation literature) trains a
//! CNN once per cipher and then applies it to whole sets of long traces. A
//! [`LocatorEngine`] is the object built for that second phase:
//!
//! * every entry point takes **`&self`** — one warm weight set is shared by
//!   all scoring threads, which allocate only a per-thread
//!   [`tinynn::Workspace`] (no weight clones anywhere);
//! * [`LocatorEngine::locate_batch`] streams many traces through one thread
//!   pool, parallelising across traces when the batch is wide and falling
//!   back to intra-trace shard parallelism when it is narrow — the scores
//!   are identical either way;
//! * [`LocatorEngine::save`] / [`LocatorEngine::load`] persist a trained
//!   model in the versioned binary format of [`crate::persist`], so a fleet
//!   of workers can load one profile from disk instead of retraining.
//!
//! # Example: build → save → load → serve
//!
//! ```
//! use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
//! use sca_trace::Trace;
//!
//! // Normally the CNN comes out of `LocatorBuilder::fit(...)`; an untrained
//! // network keeps the example fast.
//! let cnn = CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 1 });
//! let engine =
//!     LocatorEngine::new(cnn, SlidingWindowClassifier::new(16, 4), Segmenter::default());
//!
//! let traces: Vec<Trace> = (0..3)
//!     .map(|i| Trace::from_samples((0..96).map(|x| ((x + i) as f32 * 0.2).sin()).collect()))
//!     .collect();
//! let located = engine.locate_batch(&traces);
//! assert_eq!(located.len(), traces.len());
//!
//! // Persist the profile and serve it from a fresh process.
//! let path =
//!     std::env::temp_dir().join(format!("colocator_doc_{}.engine", std::process::id()));
//! engine.save(&path).unwrap();
//! let restored = LocatorEngine::load(&path).unwrap();
//! assert_eq!(restored.locate(&traces[0]), located[0]);
//! # std::fs::remove_file(&path).ok();
//! ```

use std::path::Path;
use std::sync::Arc;

use sca_trace::{Trace, TraceSource};
use tinynn::{Tensor, Workspace};

use crate::cnn::{CoLocatorCnn, WindowScorer};
use crate::persist::{self, PersistError};
use crate::pipeline::CoLocator;
use crate::qcnn::QuantizedCoLocatorCnn;
use crate::segmentation::{Segmenter, StreamingSegmenter};
use crate::sliding::SlidingWindowClassifier;

/// The weight set an engine serves: the trained `f32` network or its
/// quantised (`i8` weights, per-channel scales) counterpart.
///
/// Both variants implement [`WindowScorer`], so every scoring path of the
/// engine — single-trace, shard fan-out, batched multi-trace — is shared
/// verbatim between them.
// The variants genuinely differ in size (f32 tensors vs i8 blocks); an
// engine holds exactly one model for its whole lifetime, so boxing would
// only add a pointer chase to every score.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum EngineModel {
    /// Full-precision weights (model format v1).
    F32(CoLocatorCnn),
    /// Per-channel symmetric `i8` weights with calibrated activation grids
    /// (model format v3; v2 files load and self-calibrate).
    Quantized(QuantizedCoLocatorCnn),
}

impl EngineModel {
    /// Heap bytes the weight set keeps resident at serving time.
    ///
    /// For `f32` models this is the parameter and buffer storage; for
    /// quantised models it counts the `i8` blocks *and* their derived
    /// `i16`/pair-packed kernel operands plus the `f32` head (see
    /// [`QuantizedCoLocatorCnn::resident_weight_bytes`]). This is the
    /// per-model term a serving registry budgets against.
    pub fn weight_bytes(&self) -> usize {
        match self {
            EngineModel::F32(cnn) => {
                let params = cnn.param_count() * 4;
                let buffers: usize = cnn.buffers().iter().map(|b| b.len() * 4).sum();
                params + buffers
            }
            EngineModel::Quantized(qcnn) => qcnn.resident_weight_bytes(),
        }
    }

    /// The architecture configuration behind either variant.
    pub fn config(&self) -> &crate::cnn::CnnConfig {
        match self {
            EngineModel::F32(cnn) => cnn.config(),
            EngineModel::Quantized(qcnn) => qcnn.config(),
        }
    }
}

impl WindowScorer for EngineModel {
    fn score_windows_into(&self, input: &Tensor, ws: &mut Workspace, scores: &mut Vec<f32>) {
        match self {
            EngineModel::F32(cnn) => cnn.score_windows_into(input, ws, scores),
            EngineModel::Quantized(qcnn) => qcnn.score_windows_into(input, ws, scores),
        }
    }
}

/// A trained, immutable CO-locating model ready to serve many traces.
///
/// Built from a trained [`CoLocator`] (via [`CoLocator::into_engine`] or
/// [`LocatorEngine::from_locator`]) or loaded from disk with
/// [`LocatorEngine::load`]. All scoring entry points take `&self`, so one
/// engine can be shared behind an `Arc` (or plain borrows) by any number of
/// worker threads. [`LocatorEngine::quantize`] derives a drop-in engine
/// with `i8` weights that serves the same API from a quarter of the weight
/// memory.
/// The weight set is held behind an [`Arc`], so cloning an engine (or the
/// [`Self::quantize`] of an already quantised engine) shares the weights
/// instead of deep-copying them — a registry can hand out engine clones per
/// request generation at the cost of a reference count.
#[derive(Debug, Clone)]
pub struct LocatorEngine {
    model: Arc<EngineModel>,
    sliding: SlidingWindowClassifier,
    segmenter: Segmenter,
}

impl LocatorEngine {
    /// Assembles an engine from an already trained CNN and explicit inference
    /// parameters.
    pub fn new(cnn: CoLocatorCnn, sliding: SlidingWindowClassifier, segmenter: Segmenter) -> Self {
        Self { model: Arc::new(EngineModel::F32(cnn)), sliding, segmenter }
    }

    /// Converts a trained [`CoLocator`] into an engine.
    pub fn from_locator(locator: CoLocator) -> Self {
        let (cnn, sliding, segmenter) = locator.into_parts();
        Self::new(cnn, sliding, segmenter)
    }

    /// The model served by this engine.
    pub fn model(&self) -> &EngineModel {
        &self.model
    }

    /// The reference-counted weight set itself — what a registry or service
    /// pins per in-flight request so a hot swap can never free weights still
    /// being scored against.
    pub fn shared_model(&self) -> Arc<EngineModel> {
        Arc::clone(&self.model)
    }

    /// Estimated resident bytes of serving this engine: the weight set
    /// ([`EngineModel::weight_bytes`]) plus a per-thread workspace estimate
    /// for one scoring batch (`batch_size` windows staged as `[B, 1, N]`
    /// input, the im2col expansion of the first convolution — the widest
    /// intermediate — and the activation arena). The estimate is
    /// deterministic in the engine's configuration, so an eviction budget
    /// compares like with like across save/load cycles.
    pub fn memory_footprint(&self) -> usize {
        let weights = self.model.weight_bytes();
        let kernel = self.model.config().kernel_size;
        // [B, 1, N] staging + im2col [kernel, B·N] + ~2 activation copies.
        let workspace = self.sliding.batch_size() * self.sliding.window_len() * (kernel + 3) * 4;
        weights + workspace
    }

    /// The trained `f32` CNN, or `None` for a quantised engine.
    pub fn cnn(&self) -> Option<&CoLocatorCnn> {
        match &*self.model {
            EngineModel::F32(cnn) => Some(cnn),
            EngineModel::Quantized(_) => None,
        }
    }

    /// `true` if this engine serves quantised (`i8`) weights.
    pub fn is_quantized(&self) -> bool {
        matches!(&*self.model, EngineModel::Quantized(_))
    }

    /// Derives an engine serving the quantised (`i8` weights, per-channel
    /// scales) version of this engine's model, with identical inference
    /// parameters. The activation grids of the fixed-point inference chain
    /// are calibrated on the deterministic built-in probe set at this
    /// engine's window length; [`Self::quantize_with_samples`] calibrates
    /// on representative trace windows instead. `locate` / `locate_batch`
    /// of the result are drop-in replacements whose scores track the `f32`
    /// engine within the quantisation error bound (see the parity tests);
    /// quantising an already quantised engine shares the weights (a
    /// reference-count bump, not a deep copy).
    pub fn quantize(&self) -> LocatorEngine {
        let model = match &*self.model {
            EngineModel::F32(cnn) => {
                let mut qcnn = QuantizedCoLocatorCnn::from_cnn(cnn);
                qcnn.calibrate(&QuantizedCoLocatorCnn::synthetic_calibration_windows(
                    self.sliding.window_len(),
                ));
                Arc::new(EngineModel::Quantized(qcnn))
            }
            EngineModel::Quantized(_) => Arc::clone(&self.model),
        };
        LocatorEngine { model, sliding: self.sliding, segmenter: self.segmenter }
    }

    /// Like [`Self::quantize`], but calibrates the fixed-point chain on
    /// caller-provided sample windows (raw, equal-length slices of real
    /// traces — typically cut with this engine's window length). The
    /// windows are standardized exactly as the sliding classifier would
    /// standardize them before they drive the calibration pass, so the
    /// grids match what inference will actually see.
    ///
    /// Beyond the activation grids, the samples also align the head: the
    /// quantised backbone's systematic pooled-feature offset under the
    /// sample distribution is folded into the `f32` head bias (see
    /// `QuantizedCoLocatorCnn::align_head`), which roughly halves the
    /// score divergence against the `f32` engine on matching traces. An
    /// empty sample set falls back to the built-in probes; quantising an
    /// already quantised engine recalibrates its grids on the samples but
    /// cannot re-align the head (the `f32` reference is gone).
    pub fn quantize_with_samples(&self, windows: &[Vec<f32>]) -> LocatorEngine {
        let mut engine = self.quantize();
        if windows.is_empty() {
            return engine;
        }
        let mut prepared = windows.to_vec();
        if self.sliding.standardize() {
            for w in &mut prepared {
                sca_trace::dsp::standardize_in_place(w);
            }
        }
        let stacked = CoLocatorCnn::stack_windows(&prepared);
        // `make_mut` is free for the fresh f32→i8 conversion (refcount 1)
        // and deep-copies only when recalibrating an engine whose weights
        // are still shared with `self`.
        let EngineModel::Quantized(qcnn) = Arc::make_mut(&mut engine.model) else { unreachable!() };
        qcnn.calibrate(&stacked);
        if let EngineModel::F32(cnn) = &*self.model {
            qcnn.align_head(cnn, &stacked);
        }
        engine
    }

    /// The sliding-window classifier parameters.
    pub fn sliding(&self) -> &SlidingWindowClassifier {
        &self.sliding
    }

    /// The segmentation stage.
    pub fn segmenter(&self) -> &Segmenter {
        &self.segmenter
    }

    /// Sets the number of scoring threads (`0` = one per available core).
    /// Scores are independent per window, so the located starts do not
    /// depend on the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sliding = self.sliding.with_threads(threads);
        self
    }

    /// Converts the engine back into a [`CoLocator`].
    ///
    /// # Panics
    ///
    /// Panics for a quantised engine: a [`CoLocator`] wraps the trainable
    /// `f32` network, which a quantised model no longer carries.
    pub fn into_locator(self) -> CoLocator {
        let model = Arc::try_unwrap(self.model).unwrap_or_else(|shared| (*shared).clone());
        match model {
            EngineModel::F32(cnn) => CoLocator::from_parts(cnn, self.sliding, self.segmenter),
            EngineModel::Quantized(_) => {
                panic!("a quantised engine cannot become a CoLocator (no f32 weights)")
            }
        }
    }

    /// Locates the CO start samples in one trace (identical to
    /// [`CoLocator::locate`]).
    pub fn locate(&self, trace: &Trace) -> Vec<usize> {
        let swc = self.sliding.classify(self.model.as_ref(), trace);
        self.segmenter.segment(&swc, self.sliding.stride())
    }

    /// Like [`Self::locate`] but also returns the raw sliding-window scores.
    pub fn locate_detailed(&self, trace: &Trace) -> (Vec<f32>, Vec<usize>) {
        let swc = self.sliding.classify(self.model.as_ref(), trace);
        let starts = self.segmenter.segment(&swc, self.sliding.stride());
        (swc, starts)
    }

    /// Locates the CO start samples of a trace served by a [`TraceSource`]
    /// — typically an on-disk [`sca_trace::FileTraceSource`] holding far
    /// more samples than fit in memory — scoring it in chunks of at most
    /// `chunk_len` samples.
    ///
    /// The `swc` scores are **bit-identical** to [`Self::locate`] on the
    /// fully loaded trace (see
    /// [`SlidingWindowClassifier::classify_source`]), and the per-chunk
    /// score spans are segmented incrementally through a
    /// [`StreamingSegmenter`], so the located starts are exactly
    /// [`Self::locate`]'s. Peak memory is O(`chunk_len`) for the samples;
    /// with a [`crate::ThresholdStrategy::Fixed`] threshold the segmentation
    /// state is O(median filter size) too, while the data-dependent
    /// strategies additionally buffer the score signal
    /// (O(trace ∕ stride) — see [`StreamingSegmenter`]).
    ///
    /// # Errors
    ///
    /// Returns [`sca_trace::TraceError::InvalidParameter`] if `chunk_len` is
    /// zero, and propagates source I/O failures.
    pub fn locate_streamed<T: TraceSource + ?Sized>(
        &self,
        source: &T,
        chunk_len: usize,
    ) -> sca_trace::Result<Vec<usize>> {
        let mut segmenter =
            StreamingSegmenter::new(*self.segmenter.config(), self.sliding.stride());
        self.sliding.classify_source_with(self.model.as_ref(), source, chunk_len, |span| {
            segmenter.push(span);
        })?;
        Ok(segmenter.finish())
    }

    /// Locates the CO starts of every trace in `traces`, streaming all of
    /// them through the one shared weight set and one scoped thread pool.
    ///
    /// Wide batches fan out **across traces**: workers pull the next
    /// unscored trace from a shared atomic counter (intra-trace scoring
    /// kept sequential), so a trailing remainder of `n mod cores` traces
    /// never idles most of the pool — the static chunking this replaces
    /// could leave almost half the cores parked on uneven fleets, which is
    /// what made the batch path measurably *slower* than looped locate.
    /// "Wide" means the batch either fills the pool's waves exactly
    /// (`cores` divides `n`) or is at least two waves deep, so the
    /// under-filled final wave is a minority of the makespan; anything
    /// narrower (and single-core hosts) falls back to per-trace calls so
    /// the intra-trace shard parallelism of [`SlidingWindowClassifier`]
    /// can use every core instead. Per-window scores depend on neither
    /// batching nor threading, and each trace's result is written by
    /// exactly one worker, so both routes return results identical to
    /// looping [`Self::locate`] — the choice is purely a throughput matter.
    pub fn locate_batch(&self, traces: &[Trace]) -> Vec<Vec<usize>> {
        let n = traces.len();
        let cores = tinynn::parallel::max_threads();
        // Fall back to per-trace inner parallelism unless the across-trace
        // pool stays well filled: e.g. 8 traces on 6 cores would run a
        // 6-trace wave and then park 4 cores for a 2-trace tail (~33% of
        // the makespan idle), losing to looped locate's intra-trace shards.
        let wide = n >= cores && (n.is_multiple_of(cores) || n >= 2 * cores);
        if n <= 1 || cores <= 1 || !wide {
            return traces.iter().map(|t| self.locate(t)).collect();
        }
        let workers = cores.min(n);
        // Inside a worker the whole pipeline must stay sequential: the
        // across-traces split is the parallelism.
        let serial_sliding = self.sliding.with_threads(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let sliding = serial_sliding;
                    let next = &next;
                    scope.spawn(move || {
                        let _serial = tinynn::parallel::serial_region();
                        let mut local: Vec<(usize, Vec<usize>)> = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(trace) = traces.get(idx) else { break };
                            let swc = sliding.classify(self.model.as_ref(), trace);
                            local.push((idx, self.segmenter.segment(&swc, sliding.stride())));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (idx, starts) in handle.join().expect("batch worker panicked") {
                    out[idx] = starts;
                }
            }
        });
        out
    }

    /// Serialises the engine (weights + inference parameters) to `path` in
    /// the versioned binary format of [`crate::persist`]: the checksummed
    /// format v4, carrying the `f32` or quantised payload as the engine is.
    /// A [`Self::load`]-ed copy reproduces every score bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the file cannot be written.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        persist::save_engine(path.as_ref(), &self.model, &self.sliding, &self.segmenter)
    }

    /// Loads an engine previously written by [`Self::save`] — any format
    /// version, current or legacy; the loaded engine is quantised exactly
    /// when the file was.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PersistError`] for missing files, foreign files
    /// (bad magic), incompatible versions and corrupt/truncated payloads
    /// (including v4 checksum mismatches).
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let (model, sliding, segmenter) = persist::load_engine(path.as_ref())?;
        Ok(Self { model: Arc::new(model), sliding, segmenter })
    }

    /// Loads an engine from any [`std::io::Read`] source — the same formats
    /// and error contract as [`Self::load`], without touching the
    /// filesystem. This is how integrity tooling (and the service's fault
    /// harness) validates model bytes it already holds in memory.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PersistError`]; see [`Self::load`].
    pub fn load_from<R: std::io::Read>(reader: R) -> Result<Self, PersistError> {
        let (model, sliding, segmenter) = persist::load_engine_from(reader)?;
        Ok(Self { model: Arc::new(model), sliding, segmenter })
    }
}

impl From<CoLocator> for LocatorEngine {
    fn from(locator: CoLocator) -> Self {
        Self::from_locator(locator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::CnnConfig;
    use crate::segmentation::{SegmentationConfig, ThresholdStrategy};

    fn tiny_engine() -> LocatorEngine {
        LocatorEngine::new(
            CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 5 }),
            SlidingWindowClassifier::new(16, 4).with_batch_size(8),
            Segmenter::new(SegmentationConfig {
                threshold: ThresholdStrategy::MidRange,
                median_filter_k: 3,
                min_distance_windows: 2,
            }),
        )
    }

    fn wavy_trace(len: usize, phase: usize) -> Trace {
        Trace::from_samples((0..len).map(|x| ((x + phase) as f32 * 0.13).sin()).collect())
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sca_locator_engine_{name}_{}", std::process::id()))
    }

    #[test]
    fn engine_locate_matches_colocator_locate() {
        let engine = tiny_engine();
        let locator = engine.clone().into_locator();
        for len in [80usize, 200, 333] {
            let trace = wavy_trace(len, len);
            assert_eq!(engine.locate(&trace), locator.locate(&trace));
        }
    }

    #[test]
    fn locate_batch_matches_per_trace_locate_exactly() {
        // Acceptance pin: batched multi-trace scoring from a single `&self`
        // borrow must be bit-identical to looping single-trace locate.
        let engine = tiny_engine();
        let traces: Vec<Trace> = (0..12).map(|i| wavy_trace(150 + 17 * i, i)).collect();
        let batched = engine.locate_batch(&traces);
        let looped: Vec<Vec<usize>> = traces.iter().map(|t| engine.locate(t)).collect();
        assert_eq!(batched, looped);
    }

    #[test]
    fn locate_batch_scores_match_detailed_scores() {
        let engine = tiny_engine();
        let traces: Vec<Trace> = (0..9).map(|i| wavy_trace(240, 3 * i)).collect();
        let batched = engine.locate_batch(&traces);
        for (trace, starts) in traces.iter().zip(batched.iter()) {
            let (_, detailed_starts) = engine.locate_detailed(trace);
            assert_eq!(&detailed_starts, starts);
        }
    }

    #[test]
    fn locate_batch_handles_empty_and_short_inputs() {
        let engine = tiny_engine();
        assert!(engine.locate_batch(&[]).is_empty());
        // A trace shorter than the window yields no starts but keeps its slot.
        let traces = vec![Trace::from_samples(vec![0.0; 4]), wavy_trace(120, 0)];
        let out = engine.locate_batch(&traces);
        assert_eq!(out.len(), 2);
        assert!(out[0].is_empty());
    }

    #[test]
    fn locate_streamed_matches_locate_for_both_model_kinds() {
        let engine = tiny_engine();
        let quantized = engine.quantize();
        for eng in [&engine, &quantized] {
            for len in [40usize, 150, 333] {
                let trace = wavy_trace(len, len / 3);
                let expected = eng.locate(&trace);
                for chunk_len in [24usize, 100, 1000] {
                    assert_eq!(
                        eng.locate_streamed(&trace, chunk_len).unwrap(),
                        expected,
                        "quantized={} len={len} chunk={chunk_len}",
                        eng.is_quantized()
                    );
                }
            }
        }
    }

    #[test]
    fn locate_streamed_from_disk_matches_in_memory() {
        let engine = tiny_engine();
        let trace = wavy_trace(400, 7);
        let path = temp_path("streamed_disk");
        sca_trace::io::write_samples_binary(std::fs::File::create(&path).unwrap(), trace.samples())
            .unwrap();
        let source = sca_trace::FileTraceSource::open_raw_f32(&path).unwrap();
        assert_eq!(engine.locate_streamed(&source, 96).unwrap(), engine.locate(&trace));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = tiny_engine();
        let trace = wavy_trace(300, 1);
        let expected = engine.locate(&trace);
        let engine_ref = &engine;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let trace = trace.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    assert_eq!(engine_ref.locate(&trace), expected);
                });
            }
        });
    }

    #[test]
    fn save_load_roundtrip_reproduces_scores_bit_exactly() {
        let engine = tiny_engine();
        let path = temp_path("roundtrip");
        engine.save(&path).unwrap();
        let restored = LocatorEngine::load(&path).unwrap();
        for (i, len) in [100usize, 257, 400].into_iter().enumerate() {
            let trace = wavy_trace(len, i);
            let (scores_a, starts_a) = engine.locate_detailed(&trace);
            let (scores_b, starts_b) = restored.locate_detailed(&trace);
            assert_eq!(starts_a, starts_b);
            assert_eq!(scores_a.len(), scores_b.len());
            for (a, b) in scores_a.iter().zip(scores_b.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "roundtrip scores must be bit-identical");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_foreign_file_with_typed_error() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a model file").unwrap();
        assert_eq!(LocatorEngine::load(&path).unwrap_err(), PersistError::BadMagic);
        std::fs::remove_file(&path).ok();
    }
}
