//! Versioned binary model persistence for the locator engine.
//!
//! The offline build's serde shims are no-ops, so the format is hand-rolled
//! in the spirit of `sca-trace::io`: a little-endian binary layout built from
//! the shared primitives in [`sca_trace::io`]. Weights are stored as raw
//! bits (IEEE-754 for `f32`, two's complement for `i8`), so a save → load
//! roundtrip reproduces every score **bit-exactly**.
//!
//! ## Layout
//!
//! All versions share one header and configuration block:
//!
//! ```text
//! magic      8 bytes  "SCALOCEN"
//! version    u32      1 (f32 weights) · 2 (quantised i8 weights) ·
//!                     3 (quantised + calibrated activation grids) ·
//!                     4 (checksummed; either weight kind)
//! cnn config            base_filters u64 · kernel_size u64 · seed u64
//! sliding config        window_len u64 · stride u64 · batch_size u64 ·
//!                       standardize u8 · threads u64
//! segmentation config   threshold tag u8 (0 Fixed · 1 MidRange · 2 MeanPlusStd) ·
//!                       threshold value f32 · median_filter_k u64 ·
//!                       min_distance_windows u64
//! ```
//!
//! **Version 4** (checksummed, written by current builds) wraps both weight
//! kinds in per-section CRC32 (IEEE 802.3, the zlib/PNG polynomial)
//! checksums so a corrupt file is rejected with a typed
//! [`PersistError::Corrupt`] instead of being served as garbage weights:
//!
//! ```text
//! magic      8 bytes  "SCALOCEN"
//! version    u32      4
//! kind       u8       0 (f32 payload) · 1 (quantised payload)
//! configs             the shared configuration block above
//! config_crc u32      CRC32 over kind + configs
//! payload             the version 1 payload (kind 0) or the version 3
//!                     payload (kind 1), byte-identical layouts
//! payload_crc u32     CRC32 over payload
//! ```
//!
//! The two checksums split the failure domains: a flipped bit in the
//! configuration block is caught **before** the architecture is
//! instantiated, and a flipped bit in a weight that still parses
//! structurally (most do — weights are raw bits) is caught before the
//! engine is returned. Versions 1–3 predate the checksums; they still load
//! (shape/range validation only), and a save always writes version 4, so a
//! legacy → load → save cycle upgrades canonically.
//!
//! **Version 1** (full precision) continues after the configuration block
//! with:
//!
//! ```text
//! weights    u32 count, then per parameter: ndim u32 · dims u64… · data f32…
//! buffers    u32 count, then per buffer:    len u64 · data f32…
//! ```
//!
//! **Version 2** (quantised) stores every convolution GEMM operand as an
//! `i8` block with per-output-channel `f32` scale vectors and the layer's
//! `f32` bias (batch normalisation is folded into the convolutions at
//! quantise time), followed by the `f32` fully connected head:
//!
//! ```text
//! qblocks    u32 count, then per block: rows u64 · cols u64 ·
//!            scales f32[rows] · bias f32[rows] · data i8[rows·cols]
//! head       u32 count, then per parameter: len u64 · data f32…
//! ```
//!
//! **Version 3** (quantised, written by current builds) is the version 2
//! payload followed by the calibrated activation grid scales of the
//! fixed-point inference chain:
//!
//! ```text
//! act scales u32 count (6) · data f32[6]
//! ```
//!
//! Blocks, parameters and buffers are enumerated in the fixed architecture
//! order of the network's accessors; the loader rebuilds the network from
//! the stored configuration and verifies every shape, so a truncated,
//! corrupted or incompatible file yields a typed [`PersistError`] instead of
//! a panic or a silently wrong model. Version 1 and 3 files written by
//! older builds load unchanged; version 2 files load and recalibrate their
//! activation grids deterministically at the stored window length (the
//! weights fully determine the grids, so the upgrade to the current format
//! is canonical for every legacy version).
//!
//! ## Memory accounting
//!
//! A loaded engine reports its resident size through
//! [`LocatorEngine::memory_footprint`](crate::LocatorEngine::memory_footprint):
//! the exact in-RAM weight bytes (`f32` parameters and buffers for v1;
//! `i8` blocks plus 16-bit repacks, scale and bias vectors for v2/v3 —
//! typically larger than the file, which stores each operand once) plus a
//! deterministic estimate of the per-batch scoring workspace. The service
//! registry uses this figure for its eviction budget, so models loaded from
//! the same file always account identically.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use sca_trace::io::{
    read_f32s_le, read_i8s, read_u32_le, read_u64_le, write_f32s_le, write_i8s, write_u32_le,
    write_u64_le,
};
use tinynn::Tensor;

use crate::cnn::{CnnConfig, CoLocatorCnn};
use crate::engine::EngineModel;
use crate::qcnn::QuantizedCoLocatorCnn;
use crate::segmentation::{SegmentationConfig, Segmenter, ThresholdStrategy};
use crate::sliding::SlidingWindowClassifier;

/// File magic of the engine model format.
pub const MAGIC: &[u8; 8] = b"SCALOCEN";

/// Format version of full-precision (`f32`) models.
pub const FORMAT_VERSION: u32 = 1;

/// Legacy format version of quantised models without stored activation
/// grids (still loadable; the grids are recalibrated deterministically).
pub const FORMAT_VERSION_QUANTIZED: u32 = 2;

/// Legacy format version of quantised (`i8` weights + per-channel scales +
/// calibrated activation grids) models without checksums (still loadable).
pub const FORMAT_VERSION_QUANTIZED_V3: u32 = 3;

/// Format version of checksummed models (either weight kind, per-section
/// CRC32) — what current builds write.
pub const FORMAT_VERSION_CHECKSUMMED_V4: u32 = 4;

/// v4 kind byte: the payload is the version 1 `f32` layout.
const KIND_F32: u8 = 0;

/// v4 kind byte: the payload is the version 3 quantised layout.
const KIND_QUANTIZED: u8 = 1;

/// Upper bound accepted for any stored dimension — rejects absurd sizes from
/// corrupt headers before they turn into multi-gigabyte allocations.
const MAX_DIM: u64 = 1 << 32;

/// Upper bound on the stored filter count. The paper uses 16; anything past
/// this is a corrupt or hostile header, and the network must not be
/// constructed from it (its weight tensors scale with `base_filters²`).
const MAX_BASE_FILTERS: usize = 1 << 12;

/// Upper bound on the stored kernel size (the paper uses 64).
const MAX_KERNEL_SIZE: usize = 1 << 16;

/// Upper bound on the *estimated* parameter count implied by the stored CNN
/// configuration (~1 GiB of f32 weights). Checked before the architecture is
/// instantiated, so a corrupt header yields [`PersistError::Corrupt`] instead
/// of an allocation abort.
const MAX_PARAM_ESTIMATE: u64 = 1 << 28;

/// Typed errors of the model persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The underlying file could not be read or written.
    Io(String),
    /// The file does not start with the engine magic — not a model file.
    BadMagic,
    /// The file uses a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file is truncated or internally inconsistent (shape mismatch,
    /// invalid configuration values, trailing data, …).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "model file I/O error: {msg}"),
            PersistError::BadMagic => write!(f, "not a locator engine model file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported model format version {v} (this build reads \
                     {FORMAT_VERSION}, {FORMAT_VERSION_QUANTIZED}, \
                     {FORMAT_VERSION_QUANTIZED_V3} and \
                     {FORMAT_VERSION_CHECKSUMMED_V4})"
                )
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt model file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Maps an I/O failure onto the persistence error space: truncation while
/// parsing a structured file is corruption, everything else is I/O.
fn io_err(e: std::io::Error) -> PersistError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        PersistError::Corrupt("unexpected end of file".into())
    } else {
        PersistError::Io(e.to_string())
    }
}

/// CRC32 lookup table (IEEE 802.3 reflected polynomial `0xEDB88320` — the
/// zlib/PNG checksum), built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Advances a raw (pre-finalisation) CRC32 state over `bytes`. The state is
/// seeded with `!0` and finalised by complementing.
fn crc32_advance(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// A [`Write`] adaptor accumulating the CRC32 of everything written through
/// it. [`Crc32Writer::emit_sum`] appends the finalised checksum **without**
/// feeding it back into the running state, then re-arms for the next
/// section.
struct Crc32Writer<W: Write> {
    inner: W,
    state: u32,
}

impl<W: Write> Crc32Writer<W> {
    fn new(inner: W) -> Self {
        Self { inner, state: !0 }
    }

    /// Writes the little-endian finalised checksum of the section written so
    /// far directly to the underlying writer and resets for the next
    /// section.
    fn emit_sum(&mut self) -> std::io::Result<()> {
        let sum = !self.state;
        self.inner.write_all(&sum.to_le_bytes())?;
        self.state = !0;
        Ok(())
    }

    fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.state = crc32_advance(self.state, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The reading mirror of [`Crc32Writer`]: accumulates the CRC32 of
/// everything read through it; [`Crc32Reader::check_sum`] reads the stored
/// checksum from the underlying reader (not through the accumulator),
/// compares, and re-arms for the next section.
struct Crc32Reader<R: Read> {
    inner: R,
    state: u32,
}

impl<R: Read> Crc32Reader<R> {
    fn new(inner: R) -> Self {
        Self { inner, state: !0 }
    }

    /// Reads the stored section checksum and verifies it against the bytes
    /// consumed since the last section boundary.
    fn check_sum(&mut self, section: &str) -> Result<(), PersistError> {
        let computed = !self.state;
        let mut stored = [0u8; 4];
        self.inner.read_exact(&mut stored).map_err(io_err)?;
        let stored = u32::from_le_bytes(stored);
        if stored != computed {
            return Err(PersistError::Corrupt(format!(
                "{section} checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        self.state = !0;
        Ok(())
    }

    fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.state = crc32_advance(self.state, &buf[..n]);
        Ok(n)
    }
}

/// Writes the shared configuration block (everything between the version —
/// or, in v4, the kind byte — and the weight payload).
fn write_config_block<W: Write>(
    w: &mut W,
    config: &CnnConfig,
    sliding: &SlidingWindowClassifier,
    segmenter: &Segmenter,
) -> Result<(), PersistError> {
    write_u64_le(&mut *w, config.base_filters as u64).map_err(io_err)?;
    write_u64_le(&mut *w, config.kernel_size as u64).map_err(io_err)?;
    write_u64_le(&mut *w, config.seed).map_err(io_err)?;

    write_u64_le(&mut *w, sliding.window_len() as u64).map_err(io_err)?;
    write_u64_le(&mut *w, sliding.stride() as u64).map_err(io_err)?;
    write_u64_le(&mut *w, sliding.batch_size() as u64).map_err(io_err)?;
    w.write_all(&[sliding.standardize() as u8]).map_err(io_err)?;
    write_u64_le(&mut *w, sliding.threads() as u64).map_err(io_err)?;

    let seg = segmenter.config();
    let (tag, value) = match seg.threshold {
        ThresholdStrategy::Fixed(t) => (0u8, t),
        ThresholdStrategy::MidRange => (1u8, 0.0),
        ThresholdStrategy::MeanPlusStd(f) => (2u8, f),
    };
    w.write_all(&[tag]).map_err(io_err)?;
    write_f32s_le(&mut *w, &[value]).map_err(io_err)?;
    write_u64_le(&mut *w, seg.median_filter_k as u64).map_err(io_err)?;
    write_u64_le(&mut *w, seg.min_distance_windows as u64).map_err(io_err)
}

/// Writes the version 1 `f32` weight payload (v4 kind 0 uses the identical
/// layout).
fn write_f32_payload<W: Write>(w: &mut W, cnn: &CoLocatorCnn) -> Result<(), PersistError> {
    let params = cnn.params();
    write_u32_le(&mut *w, params.len() as u32).map_err(io_err)?;
    for p in params {
        let shape = p.value.shape();
        write_u32_le(&mut *w, shape.len() as u32).map_err(io_err)?;
        for &dim in shape {
            write_u64_le(&mut *w, dim as u64).map_err(io_err)?;
        }
        write_f32s_le(&mut *w, p.value.data()).map_err(io_err)?;
    }
    let buffers = cnn.buffers();
    write_u32_le(&mut *w, buffers.len() as u32).map_err(io_err)?;
    for b in buffers {
        write_u64_le(&mut *w, b.len() as u64).map_err(io_err)?;
        write_f32s_le(&mut *w, b).map_err(io_err)?;
    }
    Ok(())
}

/// Writes the version 3 quantised weight payload (v4 kind 1 uses the
/// identical layout).
fn write_quantized_payload<W: Write>(
    w: &mut W,
    qcnn: &QuantizedCoLocatorCnn,
) -> Result<(), PersistError> {
    let gemms = qcnn.qgemms();
    write_u32_le(&mut *w, gemms.len() as u32).map_err(io_err)?;
    for g in gemms {
        write_u64_le(&mut *w, g.rows() as u64).map_err(io_err)?;
        write_u64_le(&mut *w, g.cols() as u64).map_err(io_err)?;
        write_f32s_le(&mut *w, g.scales()).map_err(io_err)?;
        write_f32s_le(&mut *w, g.bias()).map_err(io_err)?;
        write_i8s(&mut *w, g.data()).map_err(io_err)?;
    }
    let head = qcnn.head_params();
    write_u32_le(&mut *w, head.len() as u32).map_err(io_err)?;
    for p in head {
        write_u64_le(&mut *w, p.len() as u64).map_err(io_err)?;
        write_f32s_le(&mut *w, p.value.data()).map_err(io_err)?;
    }
    let scales = qcnn.activation_scales();
    write_u32_le(&mut *w, scales.len() as u32).map_err(io_err)?;
    write_f32s_le(&mut *w, &scales).map_err(io_err)
}

/// Serialises a trained engine (model weights + inference parameters) to
/// `path` in the checksummed v4 format (kind 0 for `f32` models, kind 1
/// for quantised models).
///
/// # Errors
///
/// Returns [`PersistError::Io`] if the file cannot be written.
pub(crate) fn save_engine(
    path: &Path,
    model: &EngineModel,
    sliding: &SlidingWindowClassifier,
    segmenter: &Segmenter,
) -> Result<(), PersistError> {
    let file = File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC).map_err(io_err)?;
    write_u32_le(&mut w, FORMAT_VERSION_CHECKSUMMED_V4).map_err(io_err)?;
    let mut w = Crc32Writer::new(w);
    match model {
        EngineModel::F32(cnn) => {
            w.write_all(&[KIND_F32]).map_err(io_err)?;
            write_config_block(&mut w, cnn.config(), sliding, segmenter)?;
            w.emit_sum().map_err(io_err)?;
            write_f32_payload(&mut w, cnn)?;
        }
        EngineModel::Quantized(qcnn) => {
            w.write_all(&[KIND_QUANTIZED]).map_err(io_err)?;
            write_config_block(&mut w, qcnn.config(), sliding, segmenter)?;
            w.emit_sum().map_err(io_err)?;
            write_quantized_payload(&mut w, qcnn)?;
        }
    }
    w.emit_sum().map_err(io_err)?;
    w.into_inner().flush().map_err(io_err)
}

/// Reads a `u64` and validates it as a sane `usize` dimension.
fn read_dim<R: Read>(r: R, what: &str) -> Result<usize, PersistError> {
    let v = read_u64_le(r).map_err(io_err)?;
    if v > MAX_DIM {
        return Err(PersistError::Corrupt(format!("{what} {v} exceeds the sanity bound")));
    }
    Ok(v as usize)
}

/// Reads the v1 weight payload into a freshly constructed architecture.
fn load_f32_payload<R: Read>(r: &mut R, config: CnnConfig) -> Result<CoLocatorCnn, PersistError> {
    let mut cnn = CoLocatorCnn::new(config);
    let expected_shapes: Vec<Vec<usize>> =
        cnn.params().iter().map(|p| p.value.shape().to_vec()).collect();
    let n_params = read_u32_le(&mut *r).map_err(io_err)? as usize;
    if n_params != expected_shapes.len() {
        return Err(PersistError::Corrupt(format!(
            "parameter count {n_params} does not match the architecture ({})",
            expected_shapes.len()
        )));
    }
    let mut values = Vec::with_capacity(n_params);
    for expected in &expected_shapes {
        let ndim = read_u32_le(&mut *r).map_err(io_err)? as usize;
        if ndim != expected.len() {
            return Err(PersistError::Corrupt(format!(
                "parameter rank {ndim} does not match expected {:?}",
                expected
            )));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_dim(&mut *r, "parameter dimension")?);
        }
        if &shape != expected {
            return Err(PersistError::Corrupt(format!(
                "parameter shape {shape:?} does not match expected {expected:?}"
            )));
        }
        let len: usize = shape.iter().product();
        let data = read_f32s_le(&mut *r, len).map_err(io_err)?;
        values.push(Tensor::from_vec(data, &shape));
    }
    for (param, value) in cnn.params_mut().into_iter().zip(values) {
        param.value = value;
    }
    let expected_buffers: Vec<usize> = cnn.buffers().iter().map(|b| b.len()).collect();
    let buffer_values = load_buffers(r, &expected_buffers)?;
    for (buffer, value) in cnn.buffers_mut().into_iter().zip(buffer_values) {
        *buffer = value;
    }
    Ok(cnn)
}

/// Reads the v2/v3 quantised payload into a freshly constructed
/// architecture. A v3 file carries its calibrated activation grids, which
/// are validated and installed; a v2 file predates stored grids, so they
/// are recalibrated on the deterministic built-in probe set at the stored
/// window length — the weights fully determine the result, making the
/// upgrade canonical.
fn load_quantized_payload<R: Read>(
    r: &mut R,
    config: CnnConfig,
    version: u32,
    window_len: usize,
) -> Result<QuantizedCoLocatorCnn, PersistError> {
    // Build the architecture skeleton (the random init values are discarded;
    // only the tensor geometry matters) and overwrite every payload.
    let mut qcnn = QuantizedCoLocatorCnn::from_cnn(&CoLocatorCnn::new(config));

    let expected_geoms: Vec<(usize, usize)> =
        qcnn.qgemms().iter().map(|g| (g.rows(), g.cols())).collect();
    let n_blocks = read_u32_le(&mut *r).map_err(io_err)? as usize;
    if n_blocks != expected_geoms.len() {
        return Err(PersistError::Corrupt(format!(
            "quantised block count {n_blocks} does not match the architecture ({})",
            expected_geoms.len()
        )));
    }
    let mut payloads = Vec::with_capacity(n_blocks);
    for &(rows, cols) in &expected_geoms {
        let file_rows = read_dim(&mut *r, "quantised block rows")?;
        let file_cols = read_dim(&mut *r, "quantised block cols")?;
        if (file_rows, file_cols) != (rows, cols) {
            return Err(PersistError::Corrupt(format!(
                "quantised block geometry {file_rows}x{file_cols} does not match \
                 expected {rows}x{cols}"
            )));
        }
        let scales = read_f32s_le(&mut *r, rows).map_err(io_err)?;
        let bias = read_f32s_le(&mut *r, rows).map_err(io_err)?;
        let data = read_i8s(&mut *r, rows * cols).map_err(io_err)?;
        payloads.push((data, scales, bias));
    }
    for (gemm, (data, scales, bias)) in qcnn.qgemms_mut().into_iter().zip(payloads) {
        gemm.set_payload(data, scales, bias).map_err(PersistError::Corrupt)?;
    }

    let expected_head: Vec<Vec<usize>> =
        qcnn.head_params().iter().map(|p| p.value.shape().to_vec()).collect();
    let n_head = read_u32_le(&mut *r).map_err(io_err)? as usize;
    if n_head != expected_head.len() {
        return Err(PersistError::Corrupt(format!(
            "head parameter count {n_head} does not match the architecture ({})",
            expected_head.len()
        )));
    }
    let mut head_values = Vec::with_capacity(n_head);
    for shape in &expected_head {
        let expected_len: usize = shape.iter().product();
        let len = read_dim(&mut *r, "head parameter length")?;
        if len != expected_len {
            return Err(PersistError::Corrupt(format!(
                "head parameter length {len} does not match expected {expected_len}"
            )));
        }
        head_values.push(Tensor::from_vec(read_f32s_le(&mut *r, len).map_err(io_err)?, shape));
    }
    for (param, value) in qcnn.head_params_mut().into_iter().zip(head_values) {
        param.value = value;
    }

    // The fixed-point plans still reflect the discarded skeleton weights;
    // installing the activation grids below rebuilds them from the loaded
    // payload.
    if version == FORMAT_VERSION_QUANTIZED_V3 {
        let n_scales = read_u32_le(&mut *r).map_err(io_err)? as usize;
        if n_scales != crate::qcnn::ACTIVATION_SCALE_COUNT {
            return Err(PersistError::Corrupt(format!(
                "activation scale count {n_scales} does not match the architecture ({})",
                crate::qcnn::ACTIVATION_SCALE_COUNT
            )));
        }
        let stored = read_f32s_le(&mut *r, n_scales).map_err(io_err)?;
        let mut scales = [0.0f32; crate::qcnn::ACTIVATION_SCALE_COUNT];
        scales.copy_from_slice(&stored);
        qcnn.set_activation_scales(scales).map_err(PersistError::Corrupt)?;
    } else {
        qcnn.calibrate(&QuantizedCoLocatorCnn::synthetic_calibration_windows(window_len));
    }
    Ok(qcnn)
}

/// Reads a length-checked list of `f32` buffers (shared by both versions).
fn load_buffers<R: Read>(
    r: &mut R,
    expected_lens: &[usize],
) -> Result<Vec<Vec<f32>>, PersistError> {
    let n_buffers = read_u32_le(&mut *r).map_err(io_err)? as usize;
    if n_buffers != expected_lens.len() {
        return Err(PersistError::Corrupt(format!(
            "buffer count {n_buffers} does not match the architecture ({})",
            expected_lens.len()
        )));
    }
    let mut values = Vec::with_capacity(n_buffers);
    for &expected_len in expected_lens {
        let len = read_dim(&mut *r, "buffer length")?;
        if len != expected_len {
            return Err(PersistError::Corrupt(format!(
                "buffer length {len} does not match expected {expected_len}"
            )));
        }
        values.push(read_f32s_le(&mut *r, len).map_err(io_err)?);
    }
    Ok(values)
}

/// The decoded shared configuration block (everything between the version —
/// or, in v4, the kind byte — and the weight payload).
struct ParsedConfig {
    config: CnnConfig,
    window_len: usize,
    stride: usize,
    batch_size: usize,
    standardize: bool,
    threads: usize,
    threshold: ThresholdStrategy,
    median_filter_k: usize,
    min_distance_windows: usize,
}

impl ParsedConfig {
    /// Builds the inference parts the configuration describes (the weight
    /// payload is loaded separately).
    fn into_parts(self) -> Result<(SlidingWindowClassifier, Segmenter), PersistError> {
        let sliding = SlidingWindowClassifier::new(self.window_len, self.stride)
            .with_batch_size(self.batch_size)
            .with_standardize(self.standardize)
            .with_threads(self.threads);
        // `median_filter_k` was range-checked during parsing, but route
        // through the fallible constructor anyway so a corrupt file can
        // never panic here.
        let segmenter = Segmenter::try_new(SegmentationConfig {
            threshold: self.threshold,
            median_filter_k: self.median_filter_k,
            min_distance_windows: self.min_distance_windows,
        })
        .map_err(|e| PersistError::Corrupt(e.to_string()))?;
        Ok((sliding, segmenter))
    }
}

/// Reads and range-validates the shared configuration block.
fn read_config_block<R: Read>(mut r: &mut R) -> Result<ParsedConfig, PersistError> {
    let base_filters = read_dim(&mut r, "base_filters")?;
    let kernel_size = read_dim(&mut r, "kernel_size")?;
    let seed = read_u64_le(&mut r).map_err(io_err)?;
    if base_filters == 0 || kernel_size == 0 {
        return Err(PersistError::Corrupt("CNN configuration dimensions must be non-zero".into()));
    }
    if base_filters > MAX_BASE_FILTERS || kernel_size > MAX_KERNEL_SIZE {
        return Err(PersistError::Corrupt(format!(
            "CNN configuration ({base_filters} filters, kernel {kernel_size}) exceeds the \
             sanity bounds ({MAX_BASE_FILTERS}, {MAX_KERNEL_SIZE})"
        )));
    }
    // The largest tensors are the residual-block convolutions:
    // ~(2·base_filters)² · kernel_size weights. Reject configurations whose
    // implied parameter count is absurd *before* instantiating the network.
    let param_estimate = 8 * (base_filters as u64).pow(2) * kernel_size as u64;
    if param_estimate > MAX_PARAM_ESTIMATE {
        return Err(PersistError::Corrupt(format!(
            "CNN configuration implies ~{param_estimate} parameters \
             (bound {MAX_PARAM_ESTIMATE})"
        )));
    }

    let window_len = read_dim(&mut r, "window_len")?;
    let stride = read_dim(&mut r, "stride")?;
    let batch_size = read_dim(&mut r, "batch_size")?;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag).map_err(io_err)?;
    let standardize = match flag[0] {
        0 => false,
        1 => true,
        other => {
            return Err(PersistError::Corrupt(format!("invalid standardize flag {other}")));
        }
    };
    let threads = read_dim(&mut r, "threads")?;
    if window_len == 0 || stride == 0 || batch_size == 0 {
        return Err(PersistError::Corrupt("sliding-window parameters must be non-zero".into()));
    }

    let mut tag = [0u8; 1];
    r.read_exact(&mut tag).map_err(io_err)?;
    let value = read_f32s_le(&mut r, 1).map_err(io_err)?[0];
    let threshold = match tag[0] {
        0 => ThresholdStrategy::Fixed(value),
        1 => ThresholdStrategy::MidRange,
        2 => ThresholdStrategy::MeanPlusStd(value),
        other => {
            return Err(PersistError::Corrupt(format!("invalid threshold strategy tag {other}")));
        }
    };
    let median_filter_k = read_dim(&mut r, "median_filter_k")?;
    let min_distance_windows = read_dim(&mut r, "min_distance_windows")?;
    if median_filter_k == 0 || median_filter_k % 2 == 0 {
        return Err(PersistError::Corrupt(format!(
            "median filter size {median_filter_k} must be odd and non-zero"
        )));
    }

    Ok(ParsedConfig {
        config: CnnConfig { base_filters, kernel_size, seed },
        window_len,
        stride,
        batch_size,
        standardize,
        threads,
        threshold,
        median_filter_k,
        min_distance_windows,
    })
}

/// Rejects any unread byte left in `r` — anything after the model is not
/// ours, so a concatenated or doctored file fails typed rather than being
/// silently ignored.
fn reject_trailing<R: Read>(r: &mut R) -> Result<(), PersistError> {
    let mut trailing = [0u8; 1];
    match r.read(&mut trailing).map_err(io_err)? {
        0 => Ok(()),
        _ => Err(PersistError::Corrupt("trailing data after model".into())),
    }
}

/// Loads a legacy (v1–v3, pre-checksum) body: shared configuration block
/// followed directly by the version-implied payload.
fn load_legacy_body<R: Read>(
    r: &mut R,
    version: u32,
) -> Result<(EngineModel, SlidingWindowClassifier, Segmenter), PersistError> {
    let parsed = read_config_block(r)?;
    let model = if version == FORMAT_VERSION {
        EngineModel::F32(load_f32_payload(r, parsed.config)?)
    } else {
        EngineModel::Quantized(load_quantized_payload(
            r,
            parsed.config,
            version,
            parsed.window_len,
        )?)
    };
    reject_trailing(r)?;
    let (sliding, segmenter) = parsed.into_parts()?;
    Ok((model, sliding, segmenter))
}

/// Loads a v4 body: kind byte + configuration block under `config_crc`,
/// then the kind-implied payload under `payload_crc`. The configuration
/// checksum is verified **before** the architecture is instantiated, the
/// payload checksum before the model is returned.
fn load_v4_body<R: Read>(
    r: R,
) -> Result<(EngineModel, SlidingWindowClassifier, Segmenter), PersistError> {
    let mut r = Crc32Reader::new(r);
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind).map_err(io_err)?;
    let parsed = read_config_block(&mut r)?;
    r.check_sum("configuration")?;
    let model = match kind[0] {
        KIND_F32 => EngineModel::F32(load_f32_payload(&mut r, parsed.config)?),
        KIND_QUANTIZED => EngineModel::Quantized(load_quantized_payload(
            &mut r,
            parsed.config,
            FORMAT_VERSION_QUANTIZED_V3,
            parsed.window_len,
        )?),
        other => return Err(PersistError::Corrupt(format!("invalid model kind byte {other}"))),
    };
    r.check_sum("payload")?;
    let mut r = r.into_inner();
    reject_trailing(&mut r)?;
    let (sliding, segmenter) = parsed.into_parts()?;
    Ok((model, sliding, segmenter))
}

/// Deserialises an engine model from any [`Read`] source — any format
/// version [`save_engine`] (current or legacy builds) ever wrote.
///
/// # Errors
///
/// * [`PersistError::BadMagic`] — not an engine model file;
/// * [`PersistError::UnsupportedVersion`] — written by an incompatible build;
/// * [`PersistError::Corrupt`] — truncated file, shape mismatch, checksum
///   mismatch, invalid configuration values or trailing bytes;
/// * [`PersistError::Io`] — underlying read failure.
pub(crate) fn load_engine_from<R: Read>(
    mut r: R,
) -> Result<(EngineModel, SlidingWindowClassifier, Segmenter), PersistError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = read_u32_le(&mut r).map_err(io_err)?;
    match version {
        FORMAT_VERSION | FORMAT_VERSION_QUANTIZED | FORMAT_VERSION_QUANTIZED_V3 => {
            load_legacy_body(&mut r, version)
        }
        FORMAT_VERSION_CHECKSUMMED_V4 => load_v4_body(r),
        other => Err(PersistError::UnsupportedVersion(other)),
    }
}

/// Deserialises an engine model file written by [`save_engine`] — any
/// format version (see [`load_engine_from`] for the error contract).
pub(crate) fn load_engine(
    path: &Path,
) -> Result<(EngineModel, SlidingWindowClassifier, Segmenter), PersistError> {
    let file = File::open(path).map_err(io_err)?;
    load_engine_from(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_parts() -> (EngineModel, SlidingWindowClassifier, Segmenter) {
        let cnn = CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 9 });
        let sliding = SlidingWindowClassifier::new(16, 4).with_batch_size(8);
        let segmenter = Segmenter::new(SegmentationConfig {
            threshold: ThresholdStrategy::MeanPlusStd(1.5),
            median_filter_k: 3,
            min_distance_windows: 2,
        });
        (EngineModel::F32(cnn), sliding, segmenter)
    }

    fn tiny_quantized_parts() -> (EngineModel, SlidingWindowClassifier, Segmenter) {
        let (model, sliding, segmenter) = tiny_parts();
        let qcnn = match &model {
            EngineModel::F32(cnn) => QuantizedCoLocatorCnn::from_cnn(cnn),
            EngineModel::Quantized(_) => unreachable!(),
        };
        (EngineModel::Quantized(qcnn), sliding, segmenter)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sca_locator_persist_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_weights_and_config_bit_exactly() {
        let (model, sliding, segmenter) = tiny_parts();
        let path = temp_path("roundtrip");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let (model2, sliding2, segmenter2) = load_engine(&path).unwrap();
        let cnn = match &model {
            EngineModel::F32(cnn) => cnn,
            EngineModel::Quantized(_) => unreachable!(),
        };
        let cnn2 = match &model2 {
            EngineModel::F32(cnn) => cnn,
            other => panic!("expected an f32 model, got {other:?}"),
        };
        assert_eq!(cnn2.config(), cnn.config());
        assert_eq!(sliding2, sliding);
        assert_eq!(segmenter2.config(), segmenter.config());
        for (a, b) in cnn.params().iter().zip(cnn2.params().iter()) {
            assert_eq!(a.value.shape(), b.value.shape());
            for (x, y) in a.value.data().iter().zip(b.value.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "weights must roundtrip bit-exactly");
            }
        }
        for (a, b) in cnn.buffers().iter().zip(cnn2.buffers().iter()) {
            assert_eq!(a, b);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_roundtrip_is_bit_exact() {
        let (model, sliding, segmenter) = tiny_quantized_parts();
        let path = temp_path("qroundtrip");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let first = std::fs::read(&path).unwrap();
        let (model2, sliding2, _seg2) = load_engine(&path).unwrap();
        assert_eq!(sliding2, sliding);
        let (qcnn, qcnn2) = match (&model, &model2) {
            (EngineModel::Quantized(a), EngineModel::Quantized(b)) => (a, b),
            other => panic!("expected quantised models, got {other:?}"),
        };
        for (a, b) in qcnn.qgemms().iter().zip(qcnn2.qgemms().iter()) {
            assert_eq!(a, b, "quantised blocks must roundtrip bit-exactly");
        }
        // Save → load → save must be byte-identical.
        let path2 = temp_path("qroundtrip2");
        save_engine(&path2, &model2, &sliding2, &_seg2).unwrap();
        assert_eq!(std::fs::read(&path2).unwrap(), first);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn truncated_file_is_corrupt_not_panic() {
        for (what, (model, sliding, segmenter)) in
            [("f32", tiny_parts()), ("quantized", tiny_quantized_parts())]
        {
            let path = temp_path(&format!("truncated_{what}"));
            save_engine(&path, &model, &sliding, &segmenter).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            // Cut the file at several depths: inside the header, inside the
            // config block and inside the weight payload.
            for cut in [4usize, 11, 40, bytes.len() / 2, bytes.len() - 1] {
                std::fs::write(&path, &bytes[..cut]).unwrap();
                match load_engine(&path) {
                    Err(PersistError::Corrupt(_)) => {}
                    other => panic!("{what} cut at {cut}: expected Corrupt, got {other:?}"),
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let (model, sliding, segmenter) = tiny_parts();
        let path = temp_path("magic");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_engine(&path).unwrap_err(), PersistError::BadMagic);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_is_typed() {
        let (model, sliding, segmenter) = tiny_parts();
        let path = temp_path("version");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_engine(&path).unwrap_err(), PersistError::UnsupportedVersion(99));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_payload_mismatch_is_corrupt() {
        // Flip a v2 file's version field to 1: the payload no longer parses
        // as f32 tensors and must surface as Corrupt, not a wrong model.
        let (model, sliding, segmenter) = tiny_quantized_parts();
        let path = temp_path("vmix");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load_engine(&path) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        for (what, (model, sliding, segmenter)) in
            [("f32", tiny_parts()), ("quantized", tiny_quantized_parts())]
        {
            let path = temp_path(&format!("trailing_{what}"));
            save_engine(&path, &model, &sliding, &segmenter).unwrap();
            let mut bytes = std::fs::read(&path).unwrap();
            bytes.push(0x42);
            std::fs::write(&path, &bytes).unwrap();
            match load_engine(&path) {
                Err(PersistError::Corrupt(msg)) => assert!(msg.contains("trailing")),
                other => panic!("{what}: expected Corrupt, got {other:?}"),
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn absurd_config_is_rejected_before_network_construction() {
        let (model, sliding, segmenter) = tiny_parts();
        let path = temp_path("absurd");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // base_filters lives right after magic (8) + version (4).
        bytes[12..20].copy_from_slice(&4_000_000_000u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load_engine(&path) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("bound"), "unexpected message: {msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // A value inside MAX_DIM but implying a gigantic network must also be
        // rejected (the parameter-count estimate, not just the field bound).
        bytes[12..20].copy_from_slice(&4096u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load_engine(&path) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_writes_the_checksummed_v4_header() {
        for (what, (model, sliding, segmenter), kind) in
            [("f32", tiny_parts(), KIND_F32), ("quantized", tiny_quantized_parts(), KIND_QUANTIZED)]
        {
            let path = temp_path(&format!("v4header_{what}"));
            save_engine(&path, &model, &sliding, &segmenter).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(&bytes[..8], MAGIC);
            assert_eq!(
                u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
                FORMAT_VERSION_CHECKSUMMED_V4
            );
            assert_eq!(bytes[12], kind, "{what} kind byte");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v4_flipped_weight_byte_fails_the_payload_checksum() {
        // A flipped bit in raw weight data parses structurally (weights are
        // raw bits) — only the payload CRC can catch it. Flip a byte just
        // before the trailing payload_crc: for both kinds that lands in raw
        // `f32` data (buffers / activation scales).
        for (what, (model, sliding, segmenter)) in
            [("f32", tiny_parts()), ("quantized", tiny_quantized_parts())]
        {
            let path = temp_path(&format!("v4weightflip_{what}"));
            save_engine(&path, &model, &sliding, &segmenter).unwrap();
            let mut bytes = std::fs::read(&path).unwrap();
            let idx = bytes.len() - 6;
            bytes[idx] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            match load_engine(&path) {
                Err(PersistError::Corrupt(msg)) => {
                    assert!(msg.contains("payload checksum"), "{what}: {msg}")
                }
                other => panic!("{what}: expected Corrupt, got {other:?}"),
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v4_flipped_config_byte_fails_the_configuration_checksum() {
        let (model, sliding, segmenter) = tiny_parts();
        let path = temp_path("v4configflip");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The stored init seed (magic 8 + version 4 + kind 1 + base_filters 8
        // + kernel_size 8 = offset 29) passes every range check with any
        // value — only the configuration CRC can reject the flip, and it
        // must do so before the architecture is instantiated.
        bytes[30] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match load_engine(&path) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("configuration checksum"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v4_invalid_kind_byte_is_corrupt() {
        // The kind byte is covered by the configuration checksum, so a
        // doctored kind fails that check (it cannot silently re-route the
        // payload parser).
        let (model, sliding, segmenter) = tiny_parts();
        let path = temp_path("v4kind");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] = 7;
        std::fs::write(&path, &bytes).unwrap();
        match load_engine(&path) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_from_reads_in_memory_bytes() {
        let (model, sliding, segmenter) = tiny_parts();
        let path = temp_path("loadfrom");
        save_engine(&path, &model, &sliding, &segmenter).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let (model2, sliding2, _) = load_engine_from(&bytes[..]).unwrap();
        assert_eq!(sliding2, sliding);
        assert!(matches!(model2, EngineModel::F32(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io() {
        match load_engine(Path::new("/nonexistent/definitely_missing.engine")) {
            Err(PersistError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = PersistError::UnsupportedVersion(7);
        assert!(e.to_string().contains('7'));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
    }
}
