//! # sca-locator
//!
//! The core contribution of the reproduced paper: a deep-learning pipeline
//! that locates the beginning of cryptographic operations (COs) in a
//! side-channel trace, even when the target platform deploys a random-delay
//! desynchronisation countermeasure.
//!
//! The crate mirrors the structure of the paper's Section III:
//!
//! * [`dataset`] — *Dataset Creation* (III-A): cut cipher traces and a noise
//!   trace into `N`-sample windows labelled `c1` (beginning of CO) / `c0`
//!   (not beginning).
//! * [`cnn`] — the 1-D ResNet-style CNN binary classifier (III-B, Figure 2).
//! * [`training`] — the training pipeline: Adam, cross-entropy, 80/15/5
//!   train/validation/test split, best-epoch selection (IV-B).
//! * [`sliding`] — *Sliding Window Classification* (III-C): slide an
//!   `N_inf`-sample window with stride `s` over an unknown trace and score
//!   every window with the trained CNN (linear class-1 output).
//! * [`segmentation`] — *Segmentation* (III-D): threshold → ±1 square wave →
//!   median filter → rising edges → CO start samples; includes
//!   [`segmentation::StreamingSegmenter`] for incremental segmentation over
//!   per-chunk score spans.
//! * [`alignment`] — cut and align the located COs for the downstream attack.
//! * [`evaluation`] — hit-rate scoring against ground truth (IV-B).
//! * [`pipeline`] — [`pipeline::CoLocator`], the end-to-end inference object,
//!   and [`pipeline::LocatorBuilder`] to assemble it.
//! * [`engine`] — [`engine::LocatorEngine`], the profile-once / score-many
//!   serving front-end: `&self` scoring, batched multi-trace
//!   [`engine::LocatorEngine::locate_batch`], out-of-core
//!   [`engine::LocatorEngine::locate_streamed`] over any
//!   [`sca_trace::TraceSource`], model save/load, and
//!   [`engine::LocatorEngine::quantize`] for the `i8` serving path.
//! * [`qcnn`] — [`qcnn::QuantizedCoLocatorCnn`], the inference-only
//!   quantised CNN (per-channel symmetric `i8` weights, `f32` activations).
//! * [`persist`] — the versioned little-endian binary model format behind
//!   the engine's save/load.
//! * [`profiles`] — per-cipher pipeline parameters: the paper's Table I
//!   values and the CPU-scaled equivalents used by this reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod cnn;
pub mod dataset;
pub mod engine;
pub mod evaluation;
pub mod persist;
pub mod pipeline;
pub mod profiles;
pub mod qcnn;
pub mod segmentation;
pub mod sliding;
pub mod training;

pub use alignment::Aligner;
pub use cnn::{CnnConfig, CoLocatorCnn, WindowScorer};
pub use dataset::DatasetBuilder;
pub use engine::{EngineModel, LocatorEngine};
pub use evaluation::{hit_rate, HitReport};
pub use persist::PersistError;
pub use pipeline::{CoLocator, LocatorBuilder};
pub use profiles::{CipherProfile, ProfileKind};
pub use qcnn::QuantizedCoLocatorCnn;
pub use segmentation::{SegmentationConfig, Segmenter, StreamingSegmenter, ThresholdStrategy};
pub use sliding::SlidingWindowClassifier;
pub use training::{Trainer, TrainingConfig, TrainingReport};
