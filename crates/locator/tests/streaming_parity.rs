//! Streaming ↔ in-memory parity: the acceptance tests of the out-of-core
//! scoring path.
//!
//! `classify_source` must produce the **bit-identical** `swc` signal to
//! `classify`, and `locate_streamed` the identical CO starts to `locate`,
//! for every combination of chunk size, stride, thread count, ragged final
//! chunk, threshold strategy and trace-source backing (in-memory, raw-f32
//! file, `SCATRC01` text file) — including traces shorter than one chunk or
//! one window.

use sca_locator::{
    CnnConfig, CoLocatorCnn, LocatorEngine, SegmentationConfig, Segmenter, SlidingWindowClassifier,
    StreamingSegmenter, ThresholdStrategy,
};
use sca_trace::{FileTraceSource, Trace, TraceSource};

fn tiny_cnn(seed: u64) -> CoLocatorCnn {
    CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed })
}

/// Deterministic pseudo-noise trace: dense sign changes stress the
/// segmentation paths much harder than a smooth sine.
fn noisy_trace(len: usize, seed: u64) -> Trace {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Trace::from_samples(
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                (i as f32 * 0.07).sin() + 0.6 * noise
            })
            .collect(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sca_streaming_parity_{name}_{}", std::process::id()))
}

fn assert_bits_equal(streamed: &[f32], in_memory: &[f32], what: &str) {
    assert_eq!(streamed.len(), in_memory.len(), "{what}: length mismatch");
    for (i, (a, b)) in streamed.iter().zip(in_memory.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: score {i} diverged (streamed {a} vs in-memory {b})"
        );
    }
}

#[test]
fn scores_are_bit_identical_across_chunk_stride_thread_grid() {
    let cnn = tiny_cnn(21);
    let trace = noisy_trace(700, 1);
    for (window, stride) in [(16usize, 4usize), (16, 16), (24, 7), (32, 32)] {
        for threads in [1usize, 2, 5] {
            let swc = SlidingWindowClassifier::new(window, stride)
                .with_batch_size(8)
                .with_threads(threads);
            let in_memory = swc.classify(&cnn, &trace);
            // Chunk sizes below one window, window-aligned, prime-odd (ragged
            // final chunk), and beyond the trace length.
            for chunk_len in [window / 2, window, 2 * window, 157, 699, 700, 4096] {
                let streamed = swc.classify_source(&cnn, &trace, chunk_len).unwrap();
                assert_bits_equal(
                    &streamed,
                    &in_memory,
                    &format!("window={window} stride={stride} threads={threads} chunk={chunk_len}"),
                );
            }
        }
    }
}

#[test]
fn scores_are_bit_identical_from_both_file_formats() {
    let cnn = tiny_cnn(8);
    let trace = noisy_trace(600, 3);
    let swc = SlidingWindowClassifier::new(24, 8).with_batch_size(16);
    let in_memory = swc.classify(&cnn, &trace);

    let raw_path = temp_path("raw");
    sca_trace::io::write_samples_binary(std::fs::File::create(&raw_path).unwrap(), trace.samples())
        .unwrap();
    let raw = FileTraceSource::open_raw_f32(&raw_path).unwrap();
    assert_eq!(raw.len(), trace.len());
    assert_bits_equal(&swc.classify_source(&cnn, &raw, 128).unwrap(), &in_memory, "raw-f32");

    let text_path = temp_path("text");
    sca_trace::io::write_trace_text(&text_path, &trace).unwrap();
    let text = FileTraceSource::open_text(&text_path).unwrap();
    assert_eq!(text.len(), trace.len());
    assert_bits_equal(&swc.classify_source(&cnn, &text, 128).unwrap(), &in_memory, "text");

    std::fs::remove_file(&raw_path).ok();
    std::fs::remove_file(&text_path).ok();
}

#[test]
fn quantized_scorer_streams_bit_identically_too() {
    // The one generic scoring path must serve the i8 model unchanged.
    let engine = LocatorEngine::new(
        tiny_cnn(33),
        SlidingWindowClassifier::new(16, 8).with_batch_size(4),
        Segmenter::default(),
    )
    .quantize();
    let trace = noisy_trace(500, 9);
    let (in_memory, starts) = engine.locate_detailed(&trace);
    for chunk_len in [16usize, 100, 333] {
        let streamed = engine.sliding().classify_source(engine.model(), &trace, chunk_len).unwrap();
        assert_bits_equal(&streamed, &in_memory, &format!("quantized chunk={chunk_len}"));
        assert_eq!(engine.locate_streamed(&trace, chunk_len).unwrap(), starts);
    }
}

#[test]
fn located_starts_match_for_every_threshold_strategy() {
    let trace = noisy_trace(900, 5);
    for threshold in [
        ThresholdStrategy::Fixed(0.0),
        ThresholdStrategy::MidRange,
        ThresholdStrategy::MeanPlusStd(0.5),
    ] {
        let engine = LocatorEngine::new(
            tiny_cnn(4),
            SlidingWindowClassifier::new(16, 4).with_batch_size(8),
            Segmenter::new(SegmentationConfig {
                threshold,
                median_filter_k: 3,
                min_distance_windows: 2,
            }),
        );
        let expected = engine.locate(&trace);
        for chunk_len in [48usize, 250, 899, 2048] {
            assert_eq!(
                engine.locate_streamed(&trace, chunk_len).unwrap(),
                expected,
                "{threshold:?} chunk={chunk_len}"
            );
        }
    }
}

#[test]
fn short_traces_and_edge_lengths_stream_exactly() {
    let cnn = tiny_cnn(2);
    let swc = SlidingWindowClassifier::new(16, 8);
    // Shorter than one window, exactly one window, one window + partial
    // stride, shorter than one chunk.
    for len in [0usize, 1, 15, 16, 17, 23, 24, 31, 100] {
        let trace = noisy_trace(len, 11);
        let in_memory = swc.classify(&cnn, &trace);
        for chunk_len in [8usize, 16, 64, 1024] {
            let streamed = swc.classify_source(&cnn, &trace, chunk_len).unwrap();
            assert_bits_equal(&streamed, &in_memory, &format!("len={len} chunk={chunk_len}"));
        }
    }
}

#[test]
fn streaming_segmenter_consumes_real_score_spans_like_batch() {
    // End-to-end with the real score signal (not synthetic bumps): push the
    // actual per-chunk spans and compare with the batch segmentation.
    let cnn = tiny_cnn(17);
    let trace = noisy_trace(800, 13);
    let sliding = SlidingWindowClassifier::new(16, 4).with_batch_size(8);
    let config = SegmentationConfig {
        threshold: ThresholdStrategy::Fixed(0.1),
        median_filter_k: 5,
        min_distance_windows: 3,
    };
    let swc = sliding.classify(&cnn, &trace);
    let batch = Segmenter::new(config).segment(&swc, sliding.stride());
    for chunk_len in [32usize, 128, 799] {
        let mut streaming = StreamingSegmenter::new(config, sliding.stride());
        assert!(streaming.is_incremental());
        sliding.classify_source_with(&cnn, &trace, chunk_len, |span| streaming.push(span)).unwrap();
        assert_eq!(streaming.finish(), batch, "chunk={chunk_len}");
    }
}
