//! A single shared `LocatorEngine` hammered from many threads must behave
//! exactly like a serial one: `locate` and `locate_streamed`, for the f32
//! and the quantized i8 model, are pure functions of the trace — no hidden
//! mutable state, no cross-thread interference, bit-identical outputs.
//! (This is the invariant the locate service's coalescing scheduler is
//! built on.)

use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;

fn tiny_engine(seed: u64) -> LocatorEngine {
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed }),
        SlidingWindowClassifier::new(16, 4).with_batch_size(8),
        Segmenter::default(),
    )
}

fn noisy_trace(len: usize, seed: u64) -> Trace {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Trace::from_samples(
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                (i as f32 * 0.07).sin() + 0.6 * noise
            })
            .collect(),
    )
}

fn hammer(engine: &LocatorEngine, what: &str) {
    const THREADS: usize = 8;
    const TRACES: usize = 4;
    const ROUNDS: usize = 3;
    let traces: Vec<Trace> = (0..TRACES).map(|i| noisy_trace(420 + 40 * i, i as u64)).collect();
    // Serial ground truth, computed before any concurrency exists.
    let expected: Vec<(Vec<f32>, Vec<usize>, Vec<usize>)> = traces
        .iter()
        .map(|t| {
            let (scores, starts) = engine.locate_detailed(t);
            let streamed = engine.locate_streamed(t, 100).unwrap();
            (scores, starts, streamed)
        })
        .collect();
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let traces = &traces;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let i = (thread + round) % TRACES;
                    let (scores, starts, streamed) = &expected[i];
                    let (got_scores, got_starts) = engine.locate_detailed(&traces[i]);
                    assert_eq!(
                        &got_starts, starts,
                        "{what}: thread {thread} round {round} trace {i}: starts diverged"
                    );
                    assert_eq!(got_scores.len(), scores.len());
                    for (w, (a, b)) in got_scores.iter().zip(scores).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{what}: thread {thread} trace {i}: score {w} diverged"
                        );
                    }
                    assert_eq!(
                        &engine.locate_streamed(&traces[i], 100).unwrap(),
                        streamed,
                        "{what}: thread {thread} round {round} trace {i}: streamed starts diverged"
                    );
                }
            });
        }
    });
}

#[test]
fn shared_f32_engine_is_bit_identical_under_thread_hammering() {
    hammer(&tiny_engine(11), "f32");
}

#[test]
fn shared_quantized_engine_is_bit_identical_under_thread_hammering() {
    hammer(&tiny_engine(11).quantize(), "i8");
}
