//! Golden-file tests of the engine model format: byte-exact v1–v4 fixtures
//! checked in under `tests/fixtures/`, loaded and verified against freshly
//! constructed engines.
//!
//! The in-crate unit tests cover the error paths against in-memory buffers;
//! these tests pin the *on-disk* artefacts: the exact bytes a past build
//! wrote must keep loading, a fresh save of the same deterministic model
//! must reproduce the current-format fixture bit-for-bit (format
//! stability), and every typed error must surface from mutated copies of
//! the real files.
//!
//! `engine_v1.scaloc`, `engine_v2.scaloc` and `engine_v3.scaloc` are
//! **frozen legacy artefacts**: current builds write the checksummed v4, so
//! the legacy bytes can never be regenerated — they pin backward
//! compatibility. Loading any of them and saving must land byte-exactly on
//! the corresponding v4 fixture (`engine_v4_f32.scaloc` for v1,
//! `engine_v4_quant.scaloc` for v2/v3 — the v2 recalibration is
//! deterministic), making every legacy upgrade canonical.
//!
//! Regenerate the v4 fixtures after an *intentional* format change with
//! `cargo test -p sca-locator --test persist_golden -- --ignored`.

use std::path::PathBuf;

use sca_locator::{
    CnnConfig, CoLocatorCnn, LocatorEngine, PersistError, SegmentationConfig, Segmenter,
    SlidingWindowClassifier, ThresholdStrategy,
};
use sca_trace::Trace;

/// The deterministic reference engine behind both fixtures: fixed seeds
/// everywhere, so every build constructs bit-identical weights.
fn golden_engine() -> LocatorEngine {
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 77 }),
        SlidingWindowClassifier::new(24, 6).with_batch_size(16).with_threads(2),
        Segmenter::new(SegmentationConfig {
            threshold: ThresholdStrategy::MeanPlusStd(1.25),
            median_filter_k: 5,
            min_distance_windows: 3,
        }),
    )
}

/// Every committed fixture: the three frozen legacy formats plus the two
/// current-format (checksummed v4) artefacts.
const ALL_FIXTURES: [&str; 5] = [
    "engine_v1.scaloc",
    "engine_v2.scaloc",
    "engine_v3.scaloc",
    "engine_v4_f32.scaloc",
    "engine_v4_quant.scaloc",
];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sca_locator_golden_{name}_{}", std::process::id()))
}

fn golden_trace() -> Trace {
    Trace::from_samples(
        (0..480).map(|i| (i as f32 * 0.11).sin() * (1.0 + i as f32 * 1e-3)).collect(),
    )
}

/// One-time fixture writer (run explicitly with `--ignored` after an
/// intentional format change; never runs in CI).
#[test]
#[ignore = "regenerates the golden fixtures in the source tree"]
fn regenerate_fixtures() {
    let engine = golden_engine();
    std::fs::create_dir_all(fixture_path("")).unwrap();
    // Current builds write v4; engine_v1/v2/v3.scaloc are frozen legacy
    // fixtures and are deliberately NOT regenerated here.
    engine.save(fixture_path("engine_v4_f32.scaloc")).unwrap();
    engine.quantize().save(fixture_path("engine_v4_quant.scaloc")).unwrap();
}

#[test]
fn v4_fixtures_load_and_match_fresh_save_byte_exactly() {
    let engine = golden_engine();
    for (fixture, fresh_engine, quantized) in [
        ("engine_v4_f32.scaloc", golden_engine(), false),
        ("engine_v4_quant.scaloc", golden_engine().quantize(), true),
    ] {
        let restored = LocatorEngine::load(fixture_path(fixture)).expect(fixture);
        assert_eq!(restored.is_quantized(), quantized, "{fixture}");
        assert_eq!(restored.sliding(), engine.sliding());
        assert_eq!(restored.segmenter().config(), engine.segmenter().config());

        // The deterministic engine must keep serialising to the committed
        // bytes: any accidental layout change shows up as a byte diff here.
        let fresh = temp_path("v4");
        fresh_engine.save(&fresh).unwrap();
        assert_eq!(
            std::fs::read(&fresh).unwrap(),
            std::fs::read(fixture_path(fixture)).unwrap(),
            "format v4 serialisation drifted from the golden fixture {fixture}"
        );
        std::fs::remove_file(&fresh).ok();

        // And the loaded model scores bit-identically to the in-memory one.
        let trace = golden_trace();
        let (scores_a, starts_a) = fresh_engine.locate_detailed(&trace);
        let (scores_b, starts_b) = restored.locate_detailed(&trace);
        assert_eq!(starts_a, starts_b);
        for (a, b) in scores_a.iter().zip(scores_b.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{fixture} model must score bit-identically");
        }
    }
}

#[test]
fn legacy_fixtures_load_and_upgrade_canonically_to_v4() {
    // Backward compatibility: every frozen pre-checksum file must keep
    // loading, and saving it must land byte-exactly on the corresponding v4
    // fixture — the v2 activation-grid recalibration is deterministic, so
    // even that upgrade is canonical.
    for (fixture, v4_fixture, quantized) in [
        ("engine_v1.scaloc", "engine_v4_f32.scaloc", false),
        ("engine_v2.scaloc", "engine_v4_quant.scaloc", true),
        ("engine_v3.scaloc", "engine_v4_quant.scaloc", true),
    ] {
        let restored = LocatorEngine::load(fixture_path(fixture)).expect(fixture);
        assert_eq!(restored.is_quantized(), quantized, "{fixture}");

        let upgraded = temp_path("legacy_upgrade");
        restored.save(&upgraded).unwrap();
        assert_eq!(
            std::fs::read(&upgraded).unwrap(),
            std::fs::read(fixture_path(v4_fixture)).unwrap(),
            "{fixture} load → save must produce exactly the canonical {v4_fixture} bytes"
        );
        std::fs::remove_file(&upgraded).ok();

        // And the legacy file scores bit-identically to the v4 model.
        let v4 = LocatorEngine::load(fixture_path(v4_fixture)).unwrap();
        let trace = golden_trace();
        let (scores_a, starts_a) = restored.locate_detailed(&trace);
        let (scores_b, starts_b) = v4.locate_detailed(&trace);
        assert_eq!(starts_a, starts_b);
        for (a, b) in scores_a.iter().zip(scores_b.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{fixture} and {v4_fixture} models must score bit-identically"
            );
        }
    }
}

#[test]
fn quantised_files_are_smaller_than_v1() {
    let v1 = std::fs::metadata(fixture_path("engine_v1.scaloc")).unwrap().len();
    for fixture in ["engine_v2.scaloc", "engine_v3.scaloc", "engine_v4_quant.scaloc"] {
        let q = std::fs::metadata(fixture_path(fixture)).unwrap().len();
        assert!(q < v1, "{fixture} ({q} bytes) should undercut the f32 file ({v1} bytes)");
    }
}

#[test]
fn corrupt_activation_scale_block_is_typed() {
    // The v3 activation grid block is the file tail: u32 count (6) followed
    // by 6 f32 scales — 28 bytes.
    let bytes = std::fs::read(fixture_path("engine_v3.scaloc")).unwrap();
    let count_at = bytes.len() - 28;
    let path = temp_path("scales");

    // Wrong scale count.
    let mut doctored = bytes.clone();
    doctored[count_at..count_at + 4].copy_from_slice(&7u32.to_le_bytes());
    std::fs::write(&path, &doctored).unwrap();
    match LocatorEngine::load(&path) {
        Err(PersistError::Corrupt(msg)) => assert!(msg.contains("scale count"), "{msg}"),
        other => panic!("wrong scale count: expected Corrupt, got {other:?}"),
    }

    // A zero, negative, NaN or infinite scale is rejected, not installed.
    for bad in [0.0f32, -1.0, f32::NAN, f32::INFINITY] {
        let mut doctored = bytes.clone();
        let at = count_at + 4 + 3 * 4; // scale #3
        doctored[at..at + 4].copy_from_slice(&bad.to_le_bytes());
        std::fs::write(&path, &doctored).unwrap();
        match LocatorEngine::load(&path) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("positive finite"), "scale {bad}: {msg}")
            }
            other => panic!("scale {bad}: expected Corrupt, got {other:?}"),
        }
    }

    // Truncation inside the scale block.
    for cut in [count_at, count_at + 4, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match LocatorEngine::load(&path) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_v4_weight_byte_is_rejected_by_checksum() {
    // The integrity property the service's registry depends on: flip one
    // byte in the middle of a v4 file (raw weight data, structurally
    // valid) and the load must fail with a typed `Corrupt` — the model is
    // never served.
    for fixture in ["engine_v4_f32.scaloc", "engine_v4_quant.scaloc"] {
        let mut bytes = std::fs::read(fixture_path(fixture)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let path = temp_path("v4flip");
        std::fs::write(&path, &bytes).unwrap();
        match LocatorEngine::load(&path) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("{fixture}: expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn bad_magic_on_fixture_bytes_is_typed() {
    for fixture in ALL_FIXTURES {
        let mut bytes = std::fs::read(fixture_path(fixture)).unwrap();
        bytes[0] ^= 0xFF;
        let path = temp_path("magic");
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(LocatorEngine::load(&path).unwrap_err(), PersistError::BadMagic, "{fixture}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn unknown_version_on_fixture_bytes_is_typed() {
    let mut bytes = std::fs::read(fixture_path("engine_v1.scaloc")).unwrap();
    bytes[8..12].copy_from_slice(&5u32.to_le_bytes());
    let path = temp_path("version");
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(LocatorEngine::load(&path).unwrap_err(), PersistError::UnsupportedVersion(5));
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_of_fixture_bytes_is_corrupt_at_every_boundary() {
    for fixture in ALL_FIXTURES {
        let bytes = std::fs::read(fixture_path(fixture)).unwrap();
        let path = temp_path("trunc");
        // Walk a spread of cut points through header, configs and payload.
        for cut in [0usize, 4, 8, 11, 12, 20, 60, bytes.len() / 3, bytes.len() - 4, bytes.len() - 1]
        {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            match LocatorEngine::load(&path) {
                Err(PersistError::Corrupt(_)) => {}
                Err(PersistError::BadMagic) if cut < 8 => {}
                other => panic!("{fixture} cut at {cut}: expected a typed error, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn inflated_length_headers_fail_fast_with_typed_errors() {
    // Untrusted-input hardening: length/count fields doctored to absurd
    // values must yield a typed `Corrupt` error quickly — never a
    // `count * 4` allocation, an OOM abort, or a panic. Offsets below follow
    // the documented v1 layout: magic 8 + version 4 + cnn config 24 +
    // sliding config 33 + segmentation config 21 = 90, where the parameter
    // count (u32) and the first parameter's rank (u32) + dims (u64 each)
    // live.
    let bytes = std::fs::read(fixture_path("engine_v1.scaloc")).unwrap();
    let path = temp_path("inflated");

    // Parameter count pinned to u32::MAX.
    let mut doctored = bytes.clone();
    doctored[90..94].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &doctored).unwrap();
    match LocatorEngine::load(&path) {
        Err(PersistError::Corrupt(msg)) => assert!(msg.contains("count"), "{msg}"),
        other => panic!("inflated parameter count: expected Corrupt, got {other:?}"),
    }

    // First parameter dimension pinned to ~1.8e19 (u64::MAX / 2 + 1): the
    // loader must reject it against the sanity bound / expected shape
    // before any data read sized by it.
    let mut doctored = bytes.clone();
    doctored[98..106].copy_from_slice(&(u64::MAX / 2 + 1).to_le_bytes());
    std::fs::write(&path, &doctored).unwrap();
    match LocatorEngine::load(&path) {
        Err(PersistError::Corrupt(_)) => {}
        other => panic!("inflated dimension: expected Corrupt, got {other:?}"),
    }

    // v2: quantised block row count inflated the same way.
    let v2 = std::fs::read(fixture_path("engine_v2.scaloc")).unwrap();
    let mut doctored = v2.clone();
    doctored[94..102].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &doctored).unwrap();
    match LocatorEngine::load(&path) {
        Err(PersistError::Corrupt(_)) => {}
        other => panic!("inflated block rows: expected Corrupt, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trailing_data_on_fixture_bytes_is_corrupt() {
    for fixture in ALL_FIXTURES {
        let mut bytes = std::fs::read(fixture_path(fixture)).unwrap();
        bytes.extend_from_slice(b"junk");
        let path = temp_path("trail");
        std::fs::write(&path, &bytes).unwrap();
        match LocatorEngine::load(&path) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("trailing"), "{fixture}: {msg}")
            }
            other => panic!("{fixture}: expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
