//! SAD (sum of absolute differences) template-matching locator
//! (in the spirit of baselines [11]/[16] of the paper).
//!
//! A reference waveform of the CO is slid over the trace; positions where the
//! per-sample SAD (normalised by the template length) falls below a threshold
//! are reported as CO starts. Like the matched filter, this assumes the CO
//! shape is rigid in time, so random delays defeat it.

use sca_trace::{dsp, Trace};
use serde::{Deserialize, Serialize};

use crate::BaselineLocator;

/// SAD template-matching locator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SadTemplateLocator {
    template: Vec<f32>,
    max_sad_per_sample: f32,
    min_distance: usize,
}

impl SadTemplateLocator {
    /// Creates a locator from a CO template, a maximum mean absolute
    /// difference per sample and a minimum distance between reported starts.
    ///
    /// # Panics
    ///
    /// Panics if the template is empty or the threshold is not positive.
    pub fn new(template: Vec<f32>, max_sad_per_sample: f32, min_distance: usize) -> Self {
        assert!(!template.is_empty(), "template must not be empty");
        assert!(max_sad_per_sample > 0.0, "SAD threshold must be positive");
        Self { template, max_sad_per_sample, min_distance }
    }

    /// The template length in samples.
    pub fn template_len(&self) -> usize {
        self.template.len()
    }
}

impl BaselineLocator for SadTemplateLocator {
    fn name(&self) -> &'static str {
        "SAD template matching [11]"
    }

    fn locate(&self, trace: &Trace) -> Vec<usize> {
        if trace.len() < self.template.len() {
            return Vec::new();
        }
        let sad = dsp::sliding_sad(trace.samples(), &self.template)
            .expect("template validated at construction");
        // Convert "low SAD is good" into a peak-finding problem by negating.
        let neg: Vec<f32> = sad.iter().map(|&s| -s / self.template.len() as f32).collect();
        dsp::find_peaks(&neg, -self.max_sad_per_sample, self.min_distance.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn co_shape(len: usize) -> Vec<f32> {
        (0..len).map(|i| 0.5 + ((i as f32) * 0.9).cos()).collect()
    }

    #[test]
    fn locates_exact_copies() {
        let co = co_shape(32);
        let mut samples = vec![0.0f32; 20];
        let mut truth = Vec::new();
        for _ in 0..2 {
            truth.push(samples.len());
            samples.extend_from_slice(&co);
            samples.extend(vec![0.0f32; 40]);
        }
        let locator = SadTemplateLocator::new(co.clone(), 0.05, 30);
        let found = locator.locate(&Trace::from_samples(samples));
        assert_eq!(found, truth);
    }

    #[test]
    fn fails_on_time_stretched_cos() {
        let co = co_shape(32);
        let mut stretched = Vec::new();
        for (i, &v) in co.iter().enumerate() {
            stretched.push(v);
            if i % 2 == 1 {
                stretched.push(0.1);
            }
        }
        let mut samples = vec![0.0f32; 20];
        let start = samples.len();
        samples.extend_from_slice(&stretched);
        samples.extend(vec![0.0f32; 40]);
        let locator = SadTemplateLocator::new(co, 0.05, 20);
        let found = locator.locate(&Trace::from_samples(samples));
        assert!(found.iter().all(|&f| f.abs_diff(start) >= 5), "unexpected hit: {found:?}");
    }

    #[test]
    fn tolerates_small_amplitude_noise() {
        let co = co_shape(24);
        let noisy: Vec<f32> =
            co.iter().enumerate().map(|(i, &v)| v + 0.01 * ((i % 3) as f32 - 1.0)).collect();
        let mut samples = vec![0.0f32; 10];
        samples.extend_from_slice(&noisy);
        samples.extend(vec![0.0f32; 10]);
        let locator = SadTemplateLocator::new(co, 0.05, 10);
        let found = locator.locate(&Trace::from_samples(samples));
        assert_eq!(found, vec![10]);
    }

    #[test]
    fn short_trace_yields_nothing() {
        let locator = SadTemplateLocator::new(vec![1.0; 8], 0.1, 2);
        assert!(locator.locate(&Trace::from_samples(vec![0.0; 3])).is_empty());
    }

    #[test]
    #[should_panic(expected = "SAD threshold must be positive")]
    fn non_positive_threshold_panics() {
        SadTemplateLocator::new(vec![1.0], 0.0, 1);
    }
}
