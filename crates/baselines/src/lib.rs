//! # sca-baselines
//!
//! The two state-of-the-art CO-locating techniques the paper compares against
//! in Table II:
//!
//! * [`matched_filter::MatchedFilterLocator`] — the matched-filter approach of
//!   Barenghi et al. (reference [10] in the paper): correlate a previously
//!   acquired CO template against the trace and report correlation peaks.
//! * [`sad_template::SadTemplateLocator`] — the waveform/template-matching
//!   approach in the spirit of Trautmann et al. / Beckers et al. (references
//!   [11] and [16]): slide a template and report positions whose sum of
//!   absolute differences (SAD) falls below a threshold.
//!
//! Both techniques assume the CO power shape is (almost) rigid in time. The
//! random-delay countermeasure stretches every execution non-uniformly, which
//! is exactly why they collapse to 0 % hits in Table II while the CNN-based
//! locator keeps working.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matched_filter;
pub mod sad_template;

pub use matched_filter::MatchedFilterLocator;
pub use sad_template::SadTemplateLocator;

use sca_trace::Trace;

/// Common interface of the baseline locators (mirrors the signature of the
/// CNN-based locator so the Table II harness can treat them uniformly).
pub trait BaselineLocator {
    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Returns the located CO start samples in ascending order.
    fn locate(&self, trace: &Trace) -> Vec<usize>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_are_usable() {
        let template = vec![0.0, 1.0, 0.0];
        let locators: Vec<Box<dyn BaselineLocator>> = vec![
            Box::new(MatchedFilterLocator::new(template.clone(), 0.9, 4)),
            Box::new(SadTemplateLocator::new(template, 0.5, 4)),
        ];
        let trace = Trace::from_samples(vec![0.0; 16]);
        for locator in &locators {
            assert!(!locator.name().is_empty());
            let starts = locator.locate(&trace);
            assert!(starts.len() <= trace.len());
        }
    }
}
