//! Matched-filter CO locator (baseline [10] of the paper).
//!
//! A template of the CO (e.g. the average of a few triggered acquisitions on
//! an unprotected device) is correlated against the unknown trace with a
//! normalised cross-correlation; positions whose correlation exceeds a
//! threshold — separated by at least a minimum distance — are reported as CO
//! starts. Robust to moderate amplitude noise and to interrupts, but not to
//! the non-uniform time stretching introduced by random delays.

use sca_trace::{dsp, Trace};
use serde::{Deserialize, Serialize};

use crate::BaselineLocator;

/// Matched-filter (normalised cross-correlation) locator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchedFilterLocator {
    template: Vec<f32>,
    threshold: f32,
    min_distance: usize,
}

impl MatchedFilterLocator {
    /// Creates a locator from a CO template, a correlation threshold in
    /// `(0, 1]` and a minimum distance (in samples) between reported starts.
    ///
    /// # Panics
    ///
    /// Panics if the template is empty or the threshold is outside `(0, 1]`.
    pub fn new(template: Vec<f32>, threshold: f32, min_distance: usize) -> Self {
        assert!(!template.is_empty(), "template must not be empty");
        assert!(threshold > 0.0 && threshold <= 1.0, "threshold must be in (0, 1]");
        Self { template, threshold, min_distance }
    }

    /// Builds a template by averaging aligned reference CO traces
    /// (they must share the same length).
    ///
    /// # Panics
    ///
    /// Panics if `references` is empty or the lengths differ.
    pub fn template_from_references(references: &[Vec<f32>]) -> Vec<f32> {
        assert!(!references.is_empty(), "at least one reference trace required");
        let len = references[0].len();
        assert!(references.iter().all(|r| r.len() == len), "reference lengths differ");
        let mut template = vec![0.0f32; len];
        for r in references {
            for (t, &v) in template.iter_mut().zip(r.iter()) {
                *t += v;
            }
        }
        for t in template.iter_mut() {
            *t /= references.len() as f32;
        }
        template
    }

    /// The template length in samples.
    pub fn template_len(&self) -> usize {
        self.template.len()
    }

    /// The correlation threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

impl BaselineLocator for MatchedFilterLocator {
    fn name(&self) -> &'static str {
        "matched filter [10]"
    }

    fn locate(&self, trace: &Trace) -> Vec<usize> {
        if trace.len() < self.template.len() {
            return Vec::new();
        }
        let ncc = dsp::normalized_cross_correlation(trace.samples(), &self.template)
            .expect("template validated at construction");
        dsp::find_peaks(&ncc, self.threshold, self.min_distance.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn co_shape(len: usize) -> Vec<f32> {
        (0..len).map(|i| ((i as f32) * 0.7).sin() + if i % 5 == 0 { 0.8 } else { 0.0 }).collect()
    }

    #[test]
    fn locates_rigid_copies_of_the_template() {
        let co = co_shape(40);
        let mut samples = vec![0.0f32; 30];
        let mut truth = Vec::new();
        for _ in 0..3 {
            truth.push(samples.len());
            samples.extend_from_slice(&co);
            samples.extend(vec![0.0f32; 25]);
        }
        let locator = MatchedFilterLocator::new(co.clone(), 0.9, 30);
        let found = locator.locate(&Trace::from_samples(samples));
        assert_eq!(found, truth);
    }

    #[test]
    fn fails_on_time_stretched_cos() {
        // Simulate random delay by dilating the CO non-uniformly: the rigid
        // template no longer correlates above threshold at the true starts.
        let co = co_shape(40);
        let mut stretched = Vec::new();
        for (i, &v) in co.iter().enumerate() {
            stretched.push(v);
            if i % 2 == 0 {
                stretched.push(0.05); // inserted dummy-instruction samples
            }
            if i % 3 == 0 {
                stretched.push(0.05);
            }
        }
        let mut samples = vec![0.0f32; 30];
        let start = samples.len();
        samples.extend_from_slice(&stretched);
        samples.extend(vec![0.0f32; 30]);
        let locator = MatchedFilterLocator::new(co, 0.9, 30);
        let found = locator.locate(&Trace::from_samples(samples));
        let hit = found.iter().any(|&f| f.abs_diff(start) < 10);
        assert!(!hit, "matched filter unexpectedly survived the stretching: {found:?}");
    }

    #[test]
    fn template_from_references_averages() {
        let t = MatchedFilterLocator::template_from_references(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t, vec![2.0, 3.0]);
    }

    #[test]
    fn short_trace_yields_nothing() {
        let locator = MatchedFilterLocator::new(vec![1.0; 10], 0.8, 5);
        assert!(locator.locate(&Trace::from_samples(vec![0.0; 5])).is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0, 1]")]
    fn invalid_threshold_panics() {
        MatchedFilterLocator::new(vec![1.0], 1.5, 1);
    }
}
