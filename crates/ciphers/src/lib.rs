//! # sca-ciphers
//!
//! Software implementations of the cryptographic primitives evaluated by the
//! reproduced paper — AES-128, a boolean-masked AES-128, Camellia-128,
//! Clefia-128 and Simon-128 — together with an *operation recording*
//! mechanism ([`exec::ExecutionTrace`]) that captures every intermediate
//! value the software processes. The recorded operation stream is what the
//! [`soc-sim`](../soc_sim/index.html) crate converts into a simulated
//! side-channel power trace via a Hamming-weight leakage model.
//!
//! ## Fidelity notes
//!
//! * **AES-128** (and its masked variant) are bit-exact FIPS-197
//!   implementations, verified against the official test vectors. AES is the
//!   cipher attacked with CPA in the paper's Table II, so its intermediates
//!   must be correct.
//! * **Camellia-128, Clefia-128 and Simon-128** follow the round structure,
//!   round counts and operation mix of the original specifications (Feistel
//!   network with FL layers, 4-branch generalised Feistel, and ARX rounds
//!   respectively), but the constant tables that the specifications list as
//!   raw data (Camellia `SBOX1`, Clefia `S0`/`S1`, Simon `z` sequences) are
//!   derived algorithmically in this crate instead of being copied from the
//!   standards. They are therefore **workload-faithful models** (same length,
//!   same operation profile, same data-dependent leakage structure), not
//!   interoperable implementations. In the paper these three ciphers only
//!   serve as *localisation targets*, never as CPA targets, so this
//!   substitution does not affect any reproduced result. See `DESIGN.md`.
//!
//! ## Example
//!
//! ```rust
//! use sca_ciphers::{Aes128, RecordingCipher, ExecutionTrace};
//!
//! let key = [0u8; 16];
//! let pt = [0u8; 16];
//! let aes = Aes128::new();
//! let mut rec = ExecutionTrace::new();
//! let ct = aes.encrypt_recorded(&key, &pt, &mut rec);
//! assert_eq!(ct.len(), 16);
//! assert!(rec.len() > 500); // hundreds of recorded micro-operations
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based round loops intentionally mirror the cipher specifications.
#![allow(clippy::needless_range_loop)]

pub mod aes;
pub mod camellia;
pub mod clefia;
pub mod exec;
pub mod masked_aes;
pub mod simon;
pub mod testvectors;

pub use aes::Aes128;
pub use camellia::Camellia128;
pub use clefia::Clefia128;
pub use exec::{CipherId, ExecutionTrace, Op, OpKind, RecordingCipher};
pub use masked_aes::MaskedAes128;
pub use simon::Simon128;

/// Returns a boxed cipher implementation for every cipher evaluated in the
/// paper, in the order of Table I (AES, masked AES, Clefia, Camellia, Simon).
pub fn all_ciphers() -> Vec<Box<dyn RecordingCipher>> {
    vec![
        Box::new(Aes128::new()),
        Box::new(MaskedAes128::new(0xC0FFEE)),
        Box::new(Clefia128::new()),
        Box::new(Camellia128::new()),
        Box::new(Simon128::new()),
    ]
}

/// Returns the cipher implementation matching `id`.
pub fn cipher_by_id(id: CipherId) -> Box<dyn RecordingCipher> {
    match id {
        CipherId::Aes128 => Box::new(Aes128::new()),
        CipherId::MaskedAes128 => Box::new(MaskedAes128::new(0xC0FFEE)),
        CipherId::Clefia128 => Box::new(Clefia128::new()),
        CipherId::Camellia128 => Box::new(Camellia128::new()),
        CipherId::Simon128 => Box::new(Simon128::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ciphers_have_distinct_names() {
        let ciphers = all_ciphers();
        let names: Vec<&str> = ciphers.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(ciphers.len(), 5);
    }

    #[test]
    fn cipher_by_id_matches_id() {
        for id in CipherId::ALL {
            let c = cipher_by_id(id);
            assert_eq!(c.id(), id);
        }
    }

    #[test]
    fn all_ciphers_roundtrip_encrypt_decrypt() {
        let key = [0x2Au8; 16];
        let pt = [0x17u8; 16];
        for cipher in all_ciphers() {
            let ct = cipher.encrypt(&key, &pt);
            let back = cipher.decrypt(&key, &ct);
            assert_eq!(back, pt.to_vec(), "roundtrip failed for {}", cipher.name());
        }
    }

    #[test]
    fn recorded_and_plain_encrypt_agree() {
        let key = [0x01u8; 16];
        let pt = [0xFEu8; 16];
        for cipher in all_ciphers() {
            let mut rec = ExecutionTrace::new();
            let ct_rec = cipher.encrypt_recorded(&key, &pt, &mut rec);
            let ct = cipher.encrypt(&key, &pt);
            assert_eq!(ct, ct_rec, "recorded encryption differs for {}", cipher.name());
            assert!(!rec.is_empty());
        }
    }
}
