//! Operation recording: the bridge between software cipher execution and the
//! power simulator.
//!
//! Every cipher in this crate can run in *recording* mode, in which each
//! elementary operation (S-box lookup, XOR, load/store, rotation, …) appends
//! an [`Op`] to an [`ExecutionTrace`]. The power simulator in `soc-sim` then
//! maps each operation to one (or more) clock cycles whose power consumption
//! is `baseline(kind) + gain * HammingWeight(value) + noise`.

use serde::{Deserialize, Serialize};

/// Identifier of every cipher evaluated in the paper (Table I order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CipherId {
    /// Unprotected constant-time AES-128.
    Aes128,
    /// Boolean-masked Tiny-AES-128.
    MaskedAes128,
    /// Clefia-128 (structure-faithful model).
    Clefia128,
    /// Camellia-128 (structure-faithful model).
    Camellia128,
    /// Simon-128/128 (structure-faithful model).
    Simon128,
}

impl CipherId {
    /// All cipher identifiers in Table I order.
    pub const ALL: [CipherId; 5] = [
        CipherId::Aes128,
        CipherId::MaskedAes128,
        CipherId::Clefia128,
        CipherId::Camellia128,
        CipherId::Simon128,
    ];

    /// Short human-readable name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            CipherId::Aes128 => "AES",
            CipherId::MaskedAes128 => "AES mask",
            CipherId::Clefia128 => "Clefia",
            CipherId::Camellia128 => "Camellia",
            CipherId::Simon128 => "Simon",
        }
    }
}

impl std::fmt::Display for CipherId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The class of a recorded micro-operation.
///
/// Each class has a distinct baseline power level in the simulator, which is
/// what gives every cipher its recognisable power "shape"; the data-dependent
/// component (the Hamming weight of [`Op::value`]) rides on top of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Memory load of an input/state byte or word.
    Load,
    /// Memory store of a state/output byte or word.
    Store,
    /// Table lookup (S-box or T-table access).
    TableLookup,
    /// Bitwise XOR.
    Xor,
    /// Bitwise AND/OR.
    Logic,
    /// Addition / subtraction.
    Arith,
    /// Rotation or shift.
    Shift,
    /// Finite-field multiplication (xtime / GF(2^8) product).
    GfMul,
    /// Random-number generation (masking refresh).
    Rng,
    /// No-operation (used for the NOP preamble in training-trace collection).
    Nop,
    /// Other bookkeeping (loop counters, address computation).
    Other,
}

impl OpKind {
    /// All operation kinds (useful for exhaustive iteration in tests and in
    /// the power-model configuration).
    pub const ALL: [OpKind; 11] = [
        OpKind::Load,
        OpKind::Store,
        OpKind::TableLookup,
        OpKind::Xor,
        OpKind::Logic,
        OpKind::Arith,
        OpKind::Shift,
        OpKind::GfMul,
        OpKind::Rng,
        OpKind::Nop,
        OpKind::Other,
    ];
}

/// A single recorded micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// Operation class.
    pub kind: OpKind,
    /// The data value produced/processed by the operation (zero-extended).
    pub value: u32,
    /// Number of significant bits of `value` (8 for byte ops, 32/64-capped for words).
    pub bits: u8,
}

impl Op {
    /// Creates a byte-wide operation.
    pub fn byte(kind: OpKind, value: u8) -> Self {
        Self { kind, value: value as u32, bits: 8 }
    }

    /// Creates a 32-bit operation.
    pub fn word(kind: OpKind, value: u32) -> Self {
        Self { kind, value, bits: 32 }
    }

    /// Hamming weight of the operation's data value.
    pub fn hamming_weight(&self) -> u32 {
        self.value.count_ones()
    }
}

/// An ordered trace of recorded micro-operations for one cipher execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    ops: Vec<Op>,
}

impl ExecutionTrace {
    /// Creates an empty execution trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty execution trace with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { ops: Vec::with_capacity(capacity) }
    }

    /// Records one operation.
    #[inline]
    pub fn record(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Records a byte-wide operation.
    #[inline]
    pub fn byte(&mut self, kind: OpKind, value: u8) {
        self.record(Op::byte(kind, value));
    }

    /// Records a 32-bit operation.
    #[inline]
    pub fn word(&mut self, kind: OpKind, value: u32) {
        self.record(Op::word(kind, value));
    }

    /// Records `count` NOP operations (used for the training-time NOP preamble).
    pub fn nops(&mut self, count: usize) {
        for _ in 0..count {
            self.record(Op::byte(OpKind::Nop, 0));
        }
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Consumes the trace and returns the operations.
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }

    /// Appends all operations of `other`.
    pub fn extend_from(&mut self, other: &ExecutionTrace) {
        self.ops.extend_from_slice(&other.ops);
    }

    /// Number of operations of the given kind.
    pub fn count_kind(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|op| op.kind == kind).count()
    }
}

impl FromIterator<Op> for ExecutionTrace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Self { ops: iter.into_iter().collect() }
    }
}

/// A block cipher that can record the micro-operations of its software
/// execution for leakage simulation.
///
/// All ciphers in this crate operate on 16-byte blocks and 16-byte keys
/// (the 128-bit variants evaluated by the paper).
pub trait RecordingCipher: Send + Sync {
    /// Identifier of the cipher.
    fn id(&self) -> CipherId;

    /// Human-readable cipher name.
    fn name(&self) -> &'static str {
        self.id().label()
    }

    /// Block length in bytes (16 for every cipher in the paper).
    fn block_len(&self) -> usize {
        16
    }

    /// Key length in bytes (16 for every cipher in the paper).
    fn key_len(&self) -> usize {
        16
    }

    /// Encrypts one block. `key` and `plaintext` must be [`Self::key_len`]
    /// and [`Self::block_len`] bytes respectively.
    fn encrypt(&self, key: &[u8], plaintext: &[u8]) -> Vec<u8>;

    /// Decrypts one block.
    fn decrypt(&self, key: &[u8], ciphertext: &[u8]) -> Vec<u8>;

    /// Encrypts one block while recording every micro-operation into `trace`.
    ///
    /// The returned ciphertext must be identical to [`Self::encrypt`].
    fn encrypt_recorded(&self, key: &[u8], plaintext: &[u8], trace: &mut ExecutionTrace)
        -> Vec<u8>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors() {
        let b = Op::byte(OpKind::Xor, 0xF0);
        assert_eq!(b.bits, 8);
        assert_eq!(b.hamming_weight(), 4);
        let w = Op::word(OpKind::Arith, 0xFFFF_0001);
        assert_eq!(w.bits, 32);
        assert_eq!(w.hamming_weight(), 17);
    }

    #[test]
    fn trace_recording_and_counts() {
        let mut t = ExecutionTrace::new();
        t.byte(OpKind::Load, 1);
        t.byte(OpKind::TableLookup, 2);
        t.byte(OpKind::TableLookup, 3);
        t.nops(5);
        assert_eq!(t.len(), 8);
        assert_eq!(t.count_kind(OpKind::TableLookup), 2);
        assert_eq!(t.count_kind(OpKind::Nop), 5);
        assert_eq!(t.count_kind(OpKind::Store), 0);
    }

    #[test]
    fn trace_extend_and_collect() {
        let a: ExecutionTrace = (0..4).map(|i| Op::byte(OpKind::Xor, i)).collect();
        let mut b = ExecutionTrace::with_capacity(8);
        b.extend_from(&a);
        b.extend_from(&a);
        assert_eq!(b.len(), 8);
        assert_eq!(b.into_ops().len(), 8);
    }

    #[test]
    fn cipher_id_labels_match_paper() {
        assert_eq!(CipherId::Aes128.label(), "AES");
        assert_eq!(CipherId::MaskedAes128.label(), "AES mask");
        assert_eq!(CipherId::ALL.len(), 5);
        assert_eq!(format!("{}", CipherId::Camellia128), "Camellia");
    }
}
