//! Camellia-128 workload model (18-round Feistel network with FL/FL⁻¹ layers).
//!
//! The round structure, round count, F-function shape (key XOR → eight S-box
//! lookups → byte-wise linear P-function) and the FL/FL⁻¹ functions follow the
//! Camellia specification (RFC 3713). The four 8-bit S-boxes are derived from
//! the algorithmically generated AES S-box (`s2 = rotl1(s1)`, `s3 = rotr1(s1)`,
//! `s4 = s1(rotl1(x))`, which mirrors how the Camellia specification derives
//! its own SBOX2-4 from SBOX1) rather than copying the SBOX1 table from the
//! standard, so this implementation is **not interoperable** with RFC 3713
//! vectors — it is a workload-faithful model for trace simulation (same
//! operation count, same leakage structure). See the crate documentation.

use crate::aes::AesTables;
use crate::exec::{CipherId, ExecutionTrace, OpKind, RecordingCipher};

const ROUNDS: usize = 18;
/// Sigma constants of the key schedule (from the Camellia specification).
const SIGMA: [u64; 6] = [
    0xA09E667F3BCC908B,
    0xB67AE8584CAA73B2,
    0xC6EF372FE94F82BE,
    0x54FF53A5F1D36F1C,
    0x10E527FADE682D1D,
    0xB05688C2B3E6C1FD,
];

/// Camellia-128 workload model.
#[derive(Debug, Clone)]
pub struct Camellia128 {
    s1: [u8; 256],
    s2: [u8; 256],
    s3: [u8; 256],
    s4: [u8; 256],
}

impl Camellia128 {
    /// Creates a new instance (derives the four S-boxes).
    pub fn new() -> Self {
        let base = AesTables::generate().sbox;
        let mut s1 = [0u8; 256];
        let mut s2 = [0u8; 256];
        let mut s3 = [0u8; 256];
        let mut s4 = [0u8; 256];
        for x in 0..256usize {
            s1[x] = base[x];
            s2[x] = base[x].rotate_left(1);
            s3[x] = base[x].rotate_right(1);
            s4[x] = base[(x as u8).rotate_left(1) as usize];
        }
        Self { s1, s2, s3, s4 }
    }

    /// The Camellia F-function: 64-bit input, 64-bit subkey.
    fn f(&self, input: u64, subkey: u64, mut rec: Option<&mut ExecutionTrace>) -> u64 {
        let x = input ^ subkey;
        let mut t = [0u8; 8];
        for i in 0..8 {
            t[i] = (x >> (56 - 8 * i)) as u8;
        }
        // S-function.
        t[0] = self.s1[t[0] as usize];
        t[1] = self.s2[t[1] as usize];
        t[2] = self.s3[t[2] as usize];
        t[3] = self.s4[t[3] as usize];
        t[4] = self.s2[t[4] as usize];
        t[5] = self.s3[t[5] as usize];
        t[6] = self.s4[t[6] as usize];
        t[7] = self.s1[t[7] as usize];
        if let Some(rec) = rec.as_deref_mut() {
            for &b in t.iter() {
                rec.byte(OpKind::TableLookup, b);
            }
        }
        // P-function (byte-wise linear layer from the specification).
        let y1 = t[0] ^ t[2] ^ t[3] ^ t[5] ^ t[6] ^ t[7];
        let y2 = t[0] ^ t[1] ^ t[3] ^ t[4] ^ t[6] ^ t[7];
        let y3 = t[0] ^ t[1] ^ t[2] ^ t[4] ^ t[5] ^ t[7];
        let y4 = t[1] ^ t[2] ^ t[3] ^ t[4] ^ t[5] ^ t[6];
        let y5 = t[0] ^ t[1] ^ t[5] ^ t[6] ^ t[7];
        let y6 = t[1] ^ t[2] ^ t[4] ^ t[6] ^ t[7];
        let y7 = t[2] ^ t[3] ^ t[4] ^ t[5] ^ t[7];
        let y8 = t[0] ^ t[3] ^ t[4] ^ t[5] ^ t[6];
        let out_bytes = [y1, y2, y3, y4, y5, y6, y7, y8];
        if let Some(rec) = rec {
            for &b in out_bytes.iter() {
                rec.byte(OpKind::Xor, b);
            }
        }
        out_bytes.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64)
    }

    /// FL function (linear masking layer applied every six rounds).
    fn fl(x: u64, k: u64, rec: Option<&mut ExecutionTrace>) -> u64 {
        let xl = (x >> 32) as u32;
        let xr = x as u32;
        let kl = (k >> 32) as u32;
        let kr = k as u32;
        let yr = ((xl & kl).rotate_left(1)) ^ xr;
        let yl = (yr | kr) ^ xl;
        if let Some(rec) = rec {
            rec.word(OpKind::Logic, yr);
            rec.word(OpKind::Logic, yl);
        }
        ((yl as u64) << 32) | yr as u64
    }

    /// Inverse of [`Self::fl`].
    fn fl_inv(y: u64, k: u64, rec: Option<&mut ExecutionTrace>) -> u64 {
        let yl = (y >> 32) as u32;
        let yr = y as u32;
        let kl = (k >> 32) as u32;
        let kr = k as u32;
        let xl = (yr | kr) ^ yl;
        let xr = ((xl & kl).rotate_left(1)) ^ yr;
        if let Some(rec) = rec {
            rec.word(OpKind::Logic, xl);
            rec.word(OpKind::Logic, xr);
        }
        ((xl as u64) << 32) | xr as u64
    }

    /// Key schedule: derives KA from KL with four Feistel rounds keyed by the
    /// sigma constants, then produces whitening keys, 18 round keys and 4 FL
    /// keys as rotations of KL/KA (the shape of the RFC 3713 schedule).
    fn schedule(&self, key: &[u8; 16]) -> KeySchedule {
        let kl_hi = u64::from_be_bytes(key[..8].try_into().expect("8 bytes"));
        let kl_lo = u64::from_be_bytes(key[8..].try_into().expect("8 bytes"));

        // Derive KA.
        let mut d1 = kl_hi;
        let mut d2 = kl_lo;
        d2 ^= self.f(d1, SIGMA[0], None);
        d1 ^= self.f(d2, SIGMA[1], None);
        d1 ^= kl_hi;
        d2 ^= kl_lo;
        d2 ^= self.f(d1, SIGMA[2], None);
        d1 ^= self.f(d2, SIGMA[3], None);
        let ka_hi = d1;
        let ka_lo = d2;

        let rot128 = |hi: u64, lo: u64, n: u32| -> (u64, u64) {
            let n = n % 128;
            if n == 0 {
                return (hi, lo);
            }
            if n < 64 {
                ((hi << n) | (lo >> (64 - n)), (lo << n) | (hi >> (64 - n)))
            } else {
                let n = n - 64;
                if n == 0 {
                    (lo, hi)
                } else {
                    ((lo << n) | (hi >> (64 - n)), (hi << n) | (lo >> (64 - n)))
                }
            }
        };

        let mut round_keys = [0u64; ROUNDS];
        // Alternate rotations of KL and KA, stepping the rotation amount by 17
        // per round: this follows the "rotated master key" shape of the real
        // schedule while remaining easy to audit.
        for (i, rk) in round_keys.iter_mut().enumerate() {
            let rot = (15 + 17 * i as u32) % 128;
            let (hi, lo) =
                if i % 2 == 0 { rot128(ka_hi, ka_lo, rot) } else { rot128(kl_hi, kl_lo, rot) };
            *rk = if i % 4 < 2 { hi } else { lo };
        }
        let (w_hi, w_lo) = rot128(kl_hi, kl_lo, 0);
        let (w2_hi, w2_lo) = rot128(ka_hi, ka_lo, 111);
        let fl_keys = [
            rot128(ka_hi, ka_lo, 30).0,
            rot128(ka_hi, ka_lo, 30).1,
            rot128(kl_hi, kl_lo, 77).0,
            rot128(kl_hi, kl_lo, 77).1,
        ];
        KeySchedule {
            whitening_in: [w_hi, w_lo],
            whitening_out: [w2_hi, w2_lo],
            round_keys,
            fl_keys,
        }
    }
}

#[derive(Debug, Clone)]
struct KeySchedule {
    whitening_in: [u64; 2],
    whitening_out: [u64; 2],
    round_keys: [u64; ROUNDS],
    fl_keys: [u64; 4],
}

impl Default for Camellia128 {
    fn default() -> Self {
        Self::new()
    }
}

fn block_to_u64s(block: &[u8]) -> (u64, u64) {
    (
        u64::from_be_bytes(block[..8].try_into().expect("8 bytes")),
        u64::from_be_bytes(block[8..16].try_into().expect("8 bytes")),
    )
}

fn u64s_to_block(hi: u64, lo: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&hi.to_be_bytes());
    out.extend_from_slice(&lo.to_be_bytes());
    out
}

impl Camellia128 {
    fn encrypt_inner(
        &self,
        key: &[u8],
        pt: &[u8],
        mut rec: Option<&mut ExecutionTrace>,
    ) -> Vec<u8> {
        let key: [u8; 16] = key[..16].try_into().expect("16-byte key");
        let ks = self.schedule(&key);
        let (mut d1, mut d2) = block_to_u64s(pt);
        if let Some(rec) = rec.as_deref_mut() {
            for &b in pt.iter().take(16) {
                rec.byte(OpKind::Load, b);
            }
        }
        d1 ^= ks.whitening_in[0];
        d2 ^= ks.whitening_in[1];
        for round in 0..ROUNDS {
            let fout = self.f(d1, ks.round_keys[round], rec.as_deref_mut());
            d2 ^= fout;
            std::mem::swap(&mut d1, &mut d2);
            // FL / FL^-1 layers after rounds 6 and 12.
            if round == 5 {
                d1 = Self::fl(d1, ks.fl_keys[0], rec.as_deref_mut());
                d2 = Self::fl_inv(d2, ks.fl_keys[1], rec.as_deref_mut());
            } else if round == 11 {
                d1 = Self::fl(d1, ks.fl_keys[2], rec.as_deref_mut());
                d2 = Self::fl_inv(d2, ks.fl_keys[3], rec.as_deref_mut());
            }
        }
        // Final swap undone + output whitening.
        std::mem::swap(&mut d1, &mut d2);
        d1 ^= ks.whitening_out[0];
        d2 ^= ks.whitening_out[1];
        let ct = u64s_to_block(d1, d2);
        if let Some(rec) = rec {
            for &b in ct.iter() {
                rec.byte(OpKind::Store, b);
            }
        }
        ct
    }

    fn decrypt_inner(&self, key: &[u8], ct: &[u8]) -> Vec<u8> {
        let key: [u8; 16] = key[..16].try_into().expect("16-byte key");
        let ks = self.schedule(&key);
        let (mut d1, mut d2) = block_to_u64s(ct);
        d1 ^= ks.whitening_out[0];
        d2 ^= ks.whitening_out[1];
        std::mem::swap(&mut d1, &mut d2);
        for round in (0..ROUNDS).rev() {
            // Undo the FL / FL^-1 layer applied after this round during encryption.
            if round == 5 {
                d1 = Self::fl_inv(d1, ks.fl_keys[0], None);
                d2 = Self::fl(d2, ks.fl_keys[1], None);
            } else if round == 11 {
                d1 = Self::fl_inv(d1, ks.fl_keys[2], None);
                d2 = Self::fl(d2, ks.fl_keys[3], None);
            }
            std::mem::swap(&mut d1, &mut d2);
            let fout = self.f(d1, ks.round_keys[round], None);
            d2 ^= fout;
        }
        d1 ^= ks.whitening_in[0];
        d2 ^= ks.whitening_in[1];
        u64s_to_block(d1, d2)
    }
}

impl RecordingCipher for Camellia128 {
    fn id(&self) -> CipherId {
        CipherId::Camellia128
    }

    fn encrypt(&self, key: &[u8], plaintext: &[u8]) -> Vec<u8> {
        self.encrypt_inner(key, plaintext, None)
    }

    fn decrypt(&self, key: &[u8], ciphertext: &[u8]) -> Vec<u8> {
        self.decrypt_inner(key, ciphertext)
    }

    fn encrypt_recorded(
        &self,
        key: &[u8],
        plaintext: &[u8],
        trace: &mut ExecutionTrace,
    ) -> Vec<u8> {
        self.encrypt_inner(key, plaintext, Some(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_many_inputs() {
        let c = Camellia128::new();
        for i in 0..16u8 {
            let key = [i.wrapping_mul(11); 16];
            let mut pt = [0u8; 16];
            for (j, b) in pt.iter_mut().enumerate() {
                *b = i.wrapping_add(j as u8).wrapping_mul(37);
            }
            let ct = c.encrypt(&key, &pt);
            assert_eq!(c.decrypt(&key, &ct), pt.to_vec());
            assert_ne!(ct, pt.to_vec());
        }
    }

    #[test]
    fn fl_and_fl_inv_are_inverses() {
        for (x, k) in
            [(0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210u64), (0, u64::MAX), (u64::MAX, 1)]
        {
            assert_eq!(Camellia128::fl_inv(Camellia128::fl(x, k, None), k, None), x);
        }
    }

    #[test]
    fn avalanche_single_bit_flip() {
        let c = Camellia128::new();
        let key = [0xA5u8; 16];
        let pt1 = [0u8; 16];
        let mut pt2 = pt1;
        pt2[0] ^= 0x01;
        let c1 = c.encrypt(&key, &pt1);
        let c2 = c.encrypt(&key, &pt2);
        let diff_bits: u32 = c1.iter().zip(c2.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        // Expect roughly half of 128 bits to flip; accept a generous band.
        assert!(diff_bits > 30 && diff_bits < 100, "diff_bits = {diff_bits}");
    }

    #[test]
    fn key_avalanche() {
        let c = Camellia128::new();
        let pt = [0x3Cu8; 16];
        let k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        k2[15] ^= 0x80;
        let c1 = c.encrypt(&k1, &pt);
        let c2 = c.encrypt(&k2, &pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn recorded_op_profile() {
        let c = Camellia128::new();
        let mut rec = ExecutionTrace::new();
        c.encrypt_recorded(&[1u8; 16], &[2u8; 16], &mut rec);
        // 18 rounds x 8 S-box lookups.
        assert_eq!(rec.count_kind(OpKind::TableLookup), 18 * 8);
        // FL layers recorded.
        assert_eq!(rec.count_kind(OpKind::Logic), 8);
        assert_eq!(rec.count_kind(OpKind::Load), 16);
        assert_eq!(rec.count_kind(OpKind::Store), 16);
    }

    #[test]
    fn deterministic() {
        let c = Camellia128::new();
        let key = [9u8; 16];
        let pt = [4u8; 16];
        assert_eq!(c.encrypt(&key, &pt), c.encrypt(&key, &pt));
    }
}
